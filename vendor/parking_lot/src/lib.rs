//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free `lock()`
//! signature (no `Result`, poisoning is ignored by recovering the inner
//! guard). The workspace only uses `Mutex::new` + `lock`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s infallible `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a poisoned lock is not an error: the guard is
    /// recovered and returned, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(&*m.lock(), &[1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
