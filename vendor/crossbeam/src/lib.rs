//! Offline, API-compatible subset of `crossbeam`.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace (the work-order executor), and `std::sync::mpsc` provides the
//! same semantics for that usage (MPSC, `send`/`recv`/`recv_timeout`), so
//! the shim simply re-exports it.

/// Multi-producer channels backed by `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
