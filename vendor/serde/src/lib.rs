//! Offline, API-compatible subset of `serde`.
//!
//! The workspace only ever round-trips a few plain-old-data structs through
//! JSON (`ParamStore` checkpoints, experience buffers, figure reports), so
//! instead of the full serde data model this shim defines a small
//! [`Value`] tree plus [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it. The companion `serde_derive` proc-macro generates those
//! impls for `#[derive(Serialize, Deserialize)]`, and `serde_json` renders
//! [`Value`] to/from JSON text.
//!
//! Determinism note: `HashMap` fields are serialized with their keys
//! sorted, so identical data always produces byte-identical JSON.

use std::collections::{HashMap, VecDeque};

// Re-export the derive macros under the same names as the traits, exactly
// like the real crate does with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed tree standing in for serde's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also used for negative JSON numbers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (object); order is the serialization order.
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be interpreted as the requested type.
pub type DeError = String;

/// Conversion into the shim data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Value {
    /// Looks up `key` in a map value, for derived struct deserializers.
    pub fn get_field(&self, key: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            other => Err(format!("expected object with field `{key}`, got {other:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn as_i128(&self) -> Result<i128, DeError> {
        match self {
            Value::Int(i) => Ok(*i as i128),
            Value::UInt(u) => Ok(*u as i128),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i128),
            other => Err(format!("expected integer, got {other:?}")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i128()?;
                <$t>::try_from(raw).map_err(|_| {
                    format!("integer {raw} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i128()?;
                <$t>::try_from(raw).map_err(|_| {
                    format!("integer {raw} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the round-trip back through `as f32`
        // recovers the original bits (for finite values).
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(format!("expected 2-tuple, got {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys: HashMap iteration order is nondeterministic per
        // process, and checkpoints must be byte-stable.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serialization_is_sorted() {
        let mut m: HashMap<String, u32> = HashMap::new();
        m.insert("zeta".into(), 1);
        m.insert("alpha".into(), 2);
        m.insert("mid".into(), 3);
        match m.to_value() {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["alpha", "mid", "zeta"]);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn numeric_round_trips() {
        let x = 0.1f32;
        let v = x.to_value();
        assert_eq!(f32::from_value(&v).unwrap(), x);
        let n = -42i64;
        assert_eq!(i64::from_value(&n.to_value()).unwrap(), n);
        let u = u64::MAX;
        assert_eq!(u64::from_value(&u.to_value()).unwrap(), u);
    }
}
