//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace is built in environments with no access to a crates.io
//! mirror, so the handful of `rand 0.8` APIs the codebase uses are
//! re-implemented here behind the same module paths (`rand::rngs::StdRng`,
//! `rand::Rng`, `rand::SeedableRng`, `rand::seq::SliceRandom`).
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64, which
//! gives high-quality deterministic streams from a single `u64` seed. The
//! exact stream differs from upstream `rand`'s ChaCha-based `StdRng`; the
//! workspace only relies on determinism and statistical quality, never on
//! upstream-identical streams.

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// Deterministic generator (xoshiro256++) standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Exposes the raw xoshiro256++ state, so callers can checkpoint a
    /// generator mid-stream and later resume the *exact* stream with
    /// [`StdRng::from_state`]. Upstream `rand` offers this through
    /// serde on the RNG; the shim exposes the four words directly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`StdRng::state`]
    /// snapshot: the resulting stream continues bit-for-bit where the
    /// snapshotted generator would have.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] from uniform bits.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range that [`Rng::gen_range`] can sample from.
///
/// The single blanket impl per range shape ties the range's element type
/// to the output type during inference, matching upstream `rand` (float
/// literals like `0.5..2.0` resolve through the default `f64` fallback).
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly within `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related helpers (`SliceRandom::shuffle`).
pub mod seq {
    use super::Rng;

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates) using `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snap = rng.state();
        let expected: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let got: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(expected, got, "restored stream must continue bit-identically");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&u));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn unit_floats_cover_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            lo = lo.min(v);
            hi = hi.max(v);
            assert!((0.0..1.0).contains(&v));
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
