//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the patterns the workspace's property tests use: the
//! `proptest! { #![proptest_config(..)] #[test] fn name(x in strategy, ..) {..} }`
//! macro, range strategies over ints and floats, `prop::collection::vec`,
//! `any::<T>()`, tuple strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), there is no shrinking — a
//! failing case reports its case index and the assertion message — and
//! there is no persistence of failing seeds.

use rand::{Rng as _, RngCore, SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::Range;

/// Runtime configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy combinators namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::{Rng as _, StdRng};
        use std::fmt::Debug;

        /// Strategy for `Vec`s whose length is drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Builds a strategy producing vectors of `element` values with a
        /// length in `size` (a `usize`, `Range<usize>`, or inclusive range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.size.min >= self.size.max_excl {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max_excl)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_excl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { min: r.start, max_excl: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_excl: r.end().saturating_add(1) }
    }
}

/// Drives the sampled cases for one `proptest!` test body. Used by the
/// generated code; not part of the public API surface being mimicked.
pub fn run_cases<F>(cases: u32, test_name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    // Deterministic per-test seed so failures are reproducible run-to-run.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(u64::from(case)));
        if let Err(msg) = body(&mut rng) {
            panic!("proptest case {case}/{cases} for `{test_name}` failed: {msg}");
        }
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pname:pat in $pstrat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(cfg.cases, stringify!($name), |prop_rng| {
                $(let $pname = $crate::Strategy::sample(&($pstrat), prop_rng);)+
                let body_result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                body_result
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case if the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?} ({} != {})",
                    l, r, stringify!($left), stringify!($right)),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            );
        }
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges honor their bounds; vec lengths honor SizeRange.
        #[test]
        fn sampled_values_in_bounds(
            x in -5i64..7,
            f in 0.25f64..0.75,
            v in prop::collection::vec(0u8..4, 2..9),
            fixed in prop::collection::vec(-1.0f32..1.0, 3),
            pair in (0usize..10, -1.0f32..0.0),
        ) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {} out of range", v.len());
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!(pair.0 < 10 && pair.1 < 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        crate::run_cases(4, "demo", |rng| {
            let v: u64 = rand::Rng::gen(rng);
            if v != 0 {
                Err("value was nonzero".into())
            } else {
                Ok(())
            }
        });
    }
}
