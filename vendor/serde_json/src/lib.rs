//! Offline, API-compatible subset of `serde_json`.
//!
//! Renders the shim `serde::Value` tree to JSON text and parses it back
//! with a small recursive-descent parser. Floats are printed with Rust's
//! shortest round-trip formatting (`{}` on `f64`), so every finite float
//! survives a serialize → parse cycle bit-exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error type for serialization and parsing failures.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(Error)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; match serde_json by emitting null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognizable as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * depth),
            " ".repeat(w * (depth + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_keyword("null") => Ok(Value::Null),
            Some(b't') if self.consume_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by this
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().ok_or_else(|| Error("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad int `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad uint `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        let values: Vec<f32> = vec![0.1, -3.25, 1.0e-7, 123456.78, f32::MIN_POSITIVE];
        let json = to_string(&values).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(values, back);
        let dvals: Vec<f64> = vec![0.1, 1.0 / 3.0, -2.5e-300];
        let back64: Vec<f64> = from_str(&to_string(&dvals).unwrap()).unwrap();
        assert_eq!(dvals, back64);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = String::from("line\n\"quoted\"\tüñíçødé\\");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let data: Vec<(f64, f64)> = vec![(1.0, 2.5), (3.0, 4.125)];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(f64, f64)> = from_str(&pretty).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
        assert!(from_str::<bool>("maybe").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
