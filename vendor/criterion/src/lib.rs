//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the workspace benches use
//! (`benchmark_group`, `sample_size`, `measurement_time`, `warm_up_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a straightforward wall-clock harness: after a warm-up phase the
//! target closure is run for `sample_size` samples, each sized to fill
//! `measurement_time / sample_size`, and the mean/min/max ns-per-iteration
//! are printed in a criterion-like format.
//!
//! If the `CRITERION_JSON` environment variable names a file, one JSON
//! line per benchmark (`{"id": .., "mean_ns": .., ..}`) is appended to it,
//! which is how `BENCH_pr1.json` artifacts are assembled.

use std::fmt::{self, Display};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self { function: function.to_string(), parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id` with no extra input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id, &mut |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let full_id = format!("{}/{}", self.name, id.label());

        // Warm-up: repeatedly invoke the routine until the budget elapses,
        // and use the observations to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < self.warm_up_time {
            bencher.iters = warm_iters.clamp(1, 64);
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let warm_elapsed = warm_start.elapsed();
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(0.5);

        let per_sample_budget =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((per_sample_budget / est_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }

        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{full_id:<48} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            samples_ns.len(),
            iters_per_sample,
        );
        emit_json(&full_id, mean, min, max, samples_ns.len(), iters_per_sample);
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn emit_json(id: &str, mean: f64, min: f64, max: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(
            file,
            "{{\"id\": \"{id}\", \"mean_ns\": {mean:.3}, \"min_ns\": {min:.3}, \"max_ns\": {max:.3}, \"samples\": {samples}, \"iters_per_sample\": {iters}}}"
        );
    }
}

/// Times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` the harness-chosen number of times, timing the batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Conversion of strings / ids into [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: self.to_owned(), parameter: String::new() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(20));
        group.warm_up_time(Duration::from_millis(5));
        let data: Vec<u64> = (0..100).collect();
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| 1u32 + 1));
        group.finish();
    }
}
