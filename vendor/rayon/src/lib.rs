//! Offline, API-compatible subset of `rayon`.
//!
//! Provides `into_par_iter().map(..).collect()` over ranges, vectors and
//! slices, plus `ThreadPoolBuilder`/`ThreadPool::install` for bounding the
//! worker count. Execution is eager fork-join: the input is split into one
//! contiguous chunk per worker, each chunk is mapped on a scoped OS thread,
//! and the per-chunk outputs are concatenated **in input order**, so
//! `collect::<Vec<_>>()` always observes the sequential ordering — the
//! property the training loop's bit-for-bit determinism rests on (real
//! rayon's indexed collect guarantees the same).

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a fixed worker count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-sized) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means one worker per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped worker-count context. Threads are spawned per operation (the
/// shim has no persistent workers); the pool only pins how many.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count governing any parallel
    /// iterators invoked inside it on the current thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel iterator machinery.
pub mod iter {
    use super::current_num_threads;

    /// An eagerly evaluated "parallel iterator" over an owned item list.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// Conversion into a [`ParIter`], mirroring rayon's entry point.
    pub trait IntoParallelIterator {
        /// Element type produced by the iterator.
        type Item: Send;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter { items: self.collect() }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T> ParIter<T> {
        /// Lazily attaches a map stage; execution happens in `collect`.
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            F: Fn(T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator awaiting collection.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, F> ParMap<T, F> {
        /// Executes the map across the installed worker count and collects
        /// the results **in input order**.
        pub fn collect<R, C>(self) -> C
        where
            F: Fn(T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            run_ordered(self.items, &self.f).into_iter().collect()
        }
    }

    /// Maps `items` with `f` on up to `current_num_threads()` scoped
    /// threads, preserving input order in the output.
    pub(crate) fn run_ordered<T: Send, R: Send>(
        items: Vec<T>,
        f: &(impl Fn(T) -> R + Sync),
    ) -> Vec<R> {
        let threads = current_num_threads().max(1);
        if threads == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        let workers = threads.min(n);
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = items;
        // Split back-to-front so each split_off is O(chunk).
        let mut boundaries: Vec<usize> = (1..workers).map(|w| w * chunk).rev().collect();
        let mut tail = Vec::new();
        for b in boundaries.drain(..) {
            if b < items.len() {
                tail.push(items.split_off(b));
            }
        }
        chunks.push(items);
        chunks.extend(tail.into_iter().rev());

        let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("rayon shim worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let out: Vec<u64> = vec![1u64, 2, 3, 4, 5].into_par_iter().map(|v| v * v).collect();
            assert_eq!(out, vec![1, 4, 9, 16, 25]);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn nested_install_restores_previous() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn parallel_equals_sequential_for_side_effect_free_maps() {
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let pool8 = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let work = |i: usize| -> f64 { (i as f64).sqrt().sin() };
        let seq: Vec<f64> = pool1.install(|| (0..512usize).into_par_iter().map(work).collect());
        let par: Vec<f64> = pool8.install(|| (0..512usize).into_par_iter().map(work).collect());
        assert_eq!(seq, par);
    }
}
