//! Offline derive macros for the workspace `serde` shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! three shapes the workspace actually uses, without `syn`/`quote`:
//!
//! * structs with named fields  -> JSON object keyed by field name,
//! * one-field tuple structs    -> transparent newtype (inner value),
//! * enums with unit variants   -> variant name as a JSON string.
//!
//! The input token stream is walked directly with `proc_macro::TokenTree`;
//! generics and serde attributes are unsupported (and unused here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Named { name: String, fields: Vec<String> },
    /// Tuple struct with exactly one field.
    Newtype { name: String },
    /// Enum whose variants all carry no data.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Splits the top-level tokens of a brace group on commas, returning the
/// first identifier of each non-empty chunk after stripping attributes and
/// visibility modifiers. Works for both named fields and unit variants.
fn leading_idents(group: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut expect_new = true;
    // Angle brackets are plain puncts, not groups, so commas inside
    // `HashMap<String, ParamId>` would otherwise look like separators.
    let mut angle_depth = 0i32;
    let mut tokens = group.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => expect_new = true,
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute (incl. doc comments): skip the bracket group.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) if expect_new => {
                let s = id.to_string();
                if s == "pub" {
                    // Possible `pub(crate)`; the paren group is consumed on
                    // the next iteration if present.
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                    continue;
                }
                out.push(s);
                expect_new = false;
            }
            _ => {}
        }
    }
    out
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (s.as_str(), &kind, &name) {
                    ("pub", _, _) => {
                        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            tokens.next();
                        }
                    }
                    ("struct" | "enum", None, _) => kind = Some(s),
                    (_, Some(_), None) => {
                        name = Some(s);
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = name.expect("derive input must have a name");
    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("shim serde_derive does not support generic types ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let idents = leading_idents(g.stream());
            if kind == "enum" {
                Shape::UnitEnum { name, variants: idents }
            } else {
                Shape::Named { name, fields: idents }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "unexpected paren group on enum {name}");
            Shape::Newtype { name }
        }
        other => panic!("unsupported derive input for {name}: {other:?}"),
    }
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {} }}))\n\
                     }}\n\
                 }}",
                arms.join(" ")
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")?)?,")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(" ")
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(format!(\"unknown variant {{other}} for {name}\")),\n\
                             }},\n\
                             other => ::std::result::Result::Err(format!(\"expected string for {name}, got {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(" ")
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}
