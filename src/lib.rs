//! # lsched
//!
//! A from-scratch Rust reproduction of **LSched: A Workload-Aware
//! Learned Query Scheduler for Analytical Database Systems** (Sabek,
//! Ukyab, Kraska — SIGMOD 2022), together with every substrate the paper
//! depends on:
//!
//! * [`engine`] — a Quickstep-style block-based in-memory analytical
//!   engine with work-order operators, a real threaded executor and a
//!   deterministic discrete-event simulator;
//! * [`workloads`] — TPC-H, SSB and JOB plan pools, data generation and
//!   the paper's workload protocol (train/test split, batch/streaming
//!   arrivals);
//! * [`nn`] — tensors, reverse-mode autodiff, tree convolution with edge
//!   support (Eq. 2), graph attention (Eqs. 3–5), Adam;
//! * [`core`] — LSched itself: features, Query Encoder, Scheduling
//!   Predictor, REINFORCE training, transfer learning, ablations;
//! * [`decima`] — the Decima baseline (GCN, black-box features, no
//!   pipelining);
//! * [`sched`] — FIFO / fair / SJF / HPF / critical-path / Quickstep /
//!   SelfTune heuristic baselines;
//! * [`serve`] — the sharded multi-tenant serving layer: deterministic
//!   tenant routing, weighted SLO classes, hysteresis-gated query
//!   migration, cross-shard result merging, and supervised crash
//!   recovery with deterministic query failover.
//!
//! ## Quickstart
//!
//! ```
//! use lsched::prelude::*;
//!
//! // A 12-query TPC-H streaming workload on 8 worker threads.
//! let pool = lsched::workloads::tpch::plan_pool(&[0.5]);
//! let wl = gen_workload(&pool, 12, ArrivalPattern::Streaming { lambda: 40.0 }, 1);
//! let cfg = SimConfig { num_threads: 8, ..Default::default() };
//!
//! // Compare a heuristic with an (untrained) learned agent.
//! let fair = simulate(cfg.clone(), &wl, &mut FairScheduler::default());
//! let model = LSchedModel::new(LSchedConfig::default(), 0);
//! let learned = simulate(cfg, &wl, &mut LSchedScheduler::greedy(model));
//! assert_eq!(fair.outcomes.len(), 12);
//! assert_eq!(learned.outcomes.len(), 12);
//! ```

pub use lsched_core as core;
pub use lsched_decima as decima;
pub use lsched_engine as engine;
pub use lsched_nn as nn;
pub use lsched_sched as sched;
pub use lsched_serve as serve;
pub use lsched_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use lsched_core::{
        train, train_with_checkpoints, transfer_from, CheckpointPolicy, DecisionMode,
        ExperienceManager, LSchedConfig, LSchedModel, LSchedScheduler, LSchedVariant,
        PredictiveAdmission, PredictiveAdmissionConfig, PredictiveStats, RewardConfig,
        TrainCheckpoint, TrainConfig,
    };
    pub use lsched_decima::{train_decima, DecimaConfig, DecimaModel, DecimaScheduler};
    pub use lsched_engine::{
        simulate, try_simulate, CostModel, Executor, FaultPlan, FaultSummary, PhysicalPlan,
        PolicyHealth, QueryId, ResilienceSummary, RetryPolicy, SchedContext, SchedDecision,
        SchedEvent, Scheduler, SimConfig, SimError, SimResult, WorkloadItem,
    };
    pub use lsched_nn::{CheckpointError, CheckpointManager};
    pub use lsched_sched::{
        Admission, AdmissionConfig, AdmissionGate, AdmissionStack, AdmissionStats,
        CriticalPathScheduler, FairScheduler, FifoScheduler, GateGuardStats, GateState,
        GuardedScheduler, HpfScheduler, QuickstepScheduler, SelfTuneScheduler, ShedPolicy,
        SjfScheduler,
    };
    pub use lsched_serve::{
        serve_supervised, serve_workload, tenantize, FailoverSummary, RouterConfig, ServeConfig,
        ServeResult, ShardFault, ShardFaultPlan, ShardHealth, SloClass, SupervisorConfig,
        TenantQuery,
    };
    pub use lsched_workloads::{gen_workload, split_train_test, ArrivalPattern, EpisodeSampler};
}
