//! Quickstart: build a TPC-H workload, train LSched for a handful of
//! episodes, and compare it against the heuristic baselines on the
//! simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsched::core::{
    train_with_validation, ExperienceManager, LSchedConfig, LSchedModel, LSchedScheduler,
    TrainConfig,
};
use lsched::prelude::*;
use lsched::workloads::tpch;

fn main() {
    // 1. A plan pool: the 22 TPC-H queries at two scale factors, split
    //    50/50 into train and test (Section 7.1 of the paper).
    let pool = tpch::plan_pool(&[1.0, 2.0]);
    let (train_pool, test_pool) = split_train_test(&pool, 7);
    println!("plan pool: {} train / {} test plans", train_pool.len(), test_pool.len());

    // 2. The execution environment: a 16-thread worker pool simulated
    //    with the calibrated cost model.
    let sim_cfg = SimConfig { num_threads: 16, ..Default::default() };

    // 3. Train LSched with REINFORCE on sampled episodes.
    let mut cfg = LSchedConfig::default();
    cfg.encoder.hidden = 16;
    cfg.encoder.pqe_dim = 8;
    cfg.encoder.aqe_dim = 8;
    let model = LSchedModel::new(cfg, 7);
    println!("model parameters: {}", model.store.num_scalars());

    let sampler = EpisodeSampler {
        pool: train_pool,
        size_range: (6, 14),
        rate_range: (10.0, 200.0),
        batch_fraction: 0.3,
    };
    let tcfg = TrainConfig { episodes: 40, sim: sim_cfg.clone(), seed: 7, ..Default::default() };
    let mut experience = ExperienceManager::new(64);
    println!("training for {} episodes (validation-selected checkpoints) ...", tcfg.episodes);
    // A validation workload from the TRAINING pool selects the best
    // checkpoint — REINFORCE's last iterate is rarely its best.
    let val_wl = gen_workload(
        &sampler.pool,
        10,
        ArrivalPattern::Streaming { lambda: 60.0 },
        123,
    );
    let (model, stats, best_val) =
        train_with_validation(model, &sampler, &tcfg, 10, &val_wl, &sim_cfg, &mut experience);
    println!("best validation avg duration: {best_val:.3}s");
    println!(
        "training done: first-5 avg duration {:.3}s -> last-5 {:.3}s (reward {:.1} -> {:.1})",
        stats.episodes.iter().take(5).map(|e| e.avg_duration).sum::<f64>() / 5.0,
        stats.recent_avg_duration(5),
        stats.episodes.iter().take(5).map(|e| e.total_reward).sum::<f64>() / 5.0,
        stats.recent_reward(5),
    );

    // 4. Evaluate on an unseen streaming test workload.
    let wl = gen_workload(&test_pool, 20, ArrivalPattern::Streaming { lambda: 60.0 }, 99);
    let mut report: Vec<(String, f64, f64)> = Vec::new();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LSchedScheduler::greedy(model)),
        Box::new(QuickstepScheduler),
        Box::new(FairScheduler::default()),
        Box::new(FifoScheduler),
    ];
    for s in schedulers.iter_mut() {
        let res = simulate(sim_cfg.clone(), &wl, s.as_mut());
        report.push((s.name(), res.avg_duration(), res.quantile_duration(0.9)));
    }
    println!("\n{:<12} {:>12} {:>12}", "scheduler", "avg (s)", "p90 (s)");
    for (name, avg, p90) in report {
        println!("{name:<12} {avg:>12.3} {p90:>12.3}");
    }
}
