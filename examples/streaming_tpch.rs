//! Streaming scenario: a TPC-H query stream arriving at increasing
//! rates, comparing how each scheduler's average and tail latency react
//! as the system moves from under- to over-load (the dynamic the paper's
//! Figure 11b studies).
//!
//! ```text
//! cargo run --release --example streaming_tpch
//! ```

use lsched::prelude::*;
use lsched::workloads::tpch;

fn main() {
    let pool = tpch::plan_pool(&[1.0, 5.0]);
    let (_, test_pool) = split_train_test(&pool, 3);
    let sim_cfg = SimConfig { num_threads: 16, ..Default::default() };

    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "lambda", "fair avg(s)", "fair p90(s)", "sjf avg(s)", "sjf p90(s)"
    );
    for lambda in [5.0, 20.0, 80.0, 320.0] {
        let wl = gen_workload(
            &test_pool,
            24,
            ArrivalPattern::Streaming { lambda },
            42,
        );
        let fair = simulate(sim_cfg.clone(), &wl, &mut FairScheduler::default());
        let sjf = simulate(sim_cfg.clone(), &wl, &mut SjfScheduler);
        println!(
            "{lambda:>8.0} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            fair.avg_duration(),
            fair.quantile_duration(0.9),
            sjf.avg_duration(),
            sjf.quantile_duration(0.9)
        );
    }

    // The same stream under every heuristic at the heaviest rate.
    let wl = gen_workload(&test_pool, 24, ArrivalPattern::Streaming { lambda: 320.0 }, 42);
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(QuickstepScheduler),
        Box::new(SelfTuneScheduler::default()),
        Box::new(CriticalPathScheduler),
        Box::new(HpfScheduler),
        Box::new(FairScheduler::default()),
        Box::new(FifoScheduler),
    ];
    println!("\nheaviest rate (λ=320), all heuristics:");
    println!("{:<16} {:>12} {:>12} {:>12}", "scheduler", "avg (s)", "p90 (s)", "makespan");
    for s in schedulers.iter_mut() {
        let res = simulate(sim_cfg.clone(), &wl, s.as_mut());
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>12.3}",
            s.name(),
            res.avg_duration(),
            res.quantile_duration(0.9),
            res.makespan
        );
    }
}
