//! Online self-correction (Section 3 of the paper): a pre-trained LSched
//! keeps learning in production from its own executed decisions,
//! applying a small REINFORCE correction at checkpoints.
//!
//! ```text
//! cargo run --release --example online_adaptation
//! ```

use lsched::core::{
    train_with_validation, ExperienceManager, LSchedConfig, LSchedModel, LSchedScheduler,
    OnlineConfig, OnlineLSched, TrainConfig,
};
use lsched::prelude::*;
use lsched::workloads::{ssb, tpch};

fn small_config() -> LSchedConfig {
    let mut cfg = LSchedConfig::default();
    cfg.encoder.hidden = 16;
    cfg.encoder.pqe_dim = 8;
    cfg.encoder.aqe_dim = 8;
    cfg
}

fn main() {
    let sim_cfg = SimConfig { num_threads: 16, ..Default::default() };

    // 1. Pre-train offline on TPC-H (the "workload logs" of Figure 2).
    let tpch_pool = tpch::plan_pool(&[1.0]);
    let (train_pool, _) = split_train_test(&tpch_pool, 7);
    let sampler = EpisodeSampler {
        pool: train_pool,
        size_range: (6, 12),
        rate_range: (20.0, 200.0),
        batch_fraction: 0.3,
    };
    let val = gen_workload(&sampler.pool, 10, ArrivalPattern::Streaming { lambda: 60.0 }, 5);
    let tcfg = TrainConfig { episodes: 30, sim: sim_cfg.clone(), seed: 7, ..Default::default() };
    let mut exp = ExperienceManager::new(64);
    println!("offline pre-training on TPC-H (30 episodes) ...");
    let (model, _, best) = train_with_validation(
        LSchedModel::new(small_config(), 7),
        &sampler,
        &tcfg,
        10,
        &val,
        &sim_cfg,
        &mut exp,
    );
    println!("  validation best: {best:.3}s");

    // 2. Production shifts to SSB — a workload the model never saw.
    //    Run it frozen vs. with online checkpointed self-correction.
    let ssb_pool = ssb::plan_pool(&[1.0]);
    let production: Vec<_> = (0..4)
        .map(|i| gen_workload(&ssb_pool, 20, ArrivalPattern::Streaming { lambda: 50.0 }, 100 + i))
        .collect();

    // Frozen inference.
    let frozen_json = model.params_json();
    let mut frozen_total = 0.0;
    for wl in &production {
        let mut m = LSchedModel::new(small_config(), 7);
        m.load_params_json(&frozen_json).expect("roundtrip");
        frozen_total +=
            simulate(sim_cfg.clone(), wl, &mut LSchedScheduler::stochastic(m, 9)).avg_duration();
    }

    // Online-adaptive: the same starting point, corrections every 8
    // completed queries, carried across production workloads.
    let mut online = OnlineLSched::new(model, OnlineConfig::default(), 9);
    let mut adaptive_per_wl = Vec::new();
    for wl in &production {
        let res = simulate(sim_cfg.clone(), wl, &mut online);
        adaptive_per_wl.push(res.avg_duration());
    }
    println!(
        "\nproduction SSB stream (4 x 20 queries):\n  frozen model:   avg {:.3}s/workload\n  online-adapted: avg {:.3}s/workload ({} corrections applied)",
        frozen_total / production.len() as f64,
        adaptive_per_wl.iter().sum::<f64>() / adaptive_per_wl.len() as f64,
        online.corrections(),
    );
    println!(
        "  per-workload trajectory under adaptation: {:?}",
        adaptive_per_wl.iter().map(|d| (d * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );
    println!(
        "  online experiences recorded: {}",
        online.experience().len()
    );
}
