//! Batch scenario on the Join Order Benchmark: train LSched and Decima
//! on JOB's deep join plans (some exceed 10 joins) and compare them on a
//! batch workload — the setting where the paper reports learned
//! scheduling has the largest impact (Section 7.2), plus a transfer-
//! learning warm start from a TPC-H model (Section 6).
//!
//! ```text
//! cargo run --release --example batch_job_training
//! ```

use lsched::core::{
    train, transfer_from, ExperienceManager, LSchedConfig, LSchedModel, LSchedScheduler,
    TrainConfig,
};
use lsched::decima::{train_decima, DecimaConfig, DecimaModel, DecimaScheduler, DecimaTrainConfig};
use lsched::prelude::*;
use lsched::workloads::{job, tpch};

fn small_config() -> LSchedConfig {
    let mut cfg = LSchedConfig::default();
    cfg.encoder.hidden = 16;
    cfg.encoder.pqe_dim = 8;
    cfg.encoder.aqe_dim = 8;
    cfg
}

fn main() {
    let pool = job::plan_pool();
    let deep = pool
        .iter()
        .filter(|p| p.ops.iter().filter(|o| o.kind.name().contains("join") || o.kind.name().contains("probe")).count() > 10)
        .count();
    println!("JOB pool: {} queries ({deep} with >10 join operators)", pool.len());
    let (train_pool, test_pool) = split_train_test(&pool, 11);
    let sim_cfg = SimConfig { num_threads: 16, ..Default::default() };
    let sampler = EpisodeSampler {
        pool: train_pool,
        size_range: (6, 12),
        rate_range: (10.0, 400.0),
        batch_fraction: 0.6, // mostly batch episodes for this scenario
    };

    // LSched, warm-started from a briefly TPC-H-pretrained model.
    println!("pretraining a TPC-H source model for transfer ...");
    let tpch_sampler = EpisodeSampler {
        pool: tpch::plan_pool(&[1.0]),
        size_range: (5, 10),
        rate_range: (10.0, 200.0),
        batch_fraction: 0.5,
    };
    let tcfg = TrainConfig { episodes: 20, sim: sim_cfg.clone(), seed: 11, ..Default::default() };
    let mut exp = ExperienceManager::new(64);
    let (tpch_model, _) = train(LSchedModel::new(small_config(), 11), &tpch_sampler, &tcfg, &mut exp);

    println!("training LSched on JOB (transfer-warm-started) ...");
    let mut lsched_model = LSchedModel::new(small_config(), 12);
    let report = transfer_from(&mut lsched_model, &tpch_model.store);
    println!("  transfer: {} params copied, {} frozen", report.copied, report.frozen);
    let jcfg = TrainConfig { episodes: 30, sim: sim_cfg.clone(), seed: 12, ..Default::default() };
    let mut jexp = ExperienceManager::new(64);
    let (lsched_model, lstats) = train(lsched_model, &sampler, &jcfg, &mut jexp);
    println!(
        "  reward: first-5 {:.1} -> last-5 {:.1}",
        lstats.episodes.iter().take(5).map(|e| e.total_reward).sum::<f64>() / 5.0,
        lstats.recent_reward(5)
    );

    // Decima on the same episodes.
    println!("training Decima on JOB ...");
    let dmodel = DecimaModel::new(
        DecimaConfig { hidden: 16, layers: 2, max_threads: 32, ..Default::default() },
        12,
    );
    let dcfg = DecimaTrainConfig { episodes: 30, sim: sim_cfg.clone(), seed: 12, ..Default::default() };
    let (dmodel, _) = train_decima(dmodel, &sampler, &dcfg);

    // Evaluate everyone on an unseen batch.
    let wl = gen_workload(&test_pool, 24, ArrivalPattern::Batch, 77);
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(LSchedScheduler::greedy(lsched_model)),
        Box::new(DecimaScheduler::greedy(dmodel)),
        Box::new(QuickstepScheduler),
        Box::new(FairScheduler::default()),
    ];
    println!("\nJOB batch of 24 unseen queries:");
    println!("{:<12} {:>12} {:>12} {:>12}", "scheduler", "avg (s)", "p90 (s)", "makespan");
    for s in schedulers.iter_mut() {
        let res = simulate(sim_cfg.clone(), &wl, s.as_mut());
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            s.name(),
            res.avg_duration(),
            res.quantile_duration(0.9),
            res.makespan
        );
    }
}
