//! Run a real TPC-H-shaped workload on the *real threaded engine* (not
//! the simulator): generate data, build executable plans for Q1/Q3/Q6,
//! and execute them end-to-end under different schedulers, verifying
//! that every policy produces the same query answers.
//!
//! ```text
//! cargo run --release --example compare_schedulers
//! ```

use std::sync::Arc;

use lsched::engine::cost::CostModel;
use lsched::engine::executor::Executor;
use lsched::prelude::*;
use lsched::workloads::tpch;

fn main() {
    // A miniature TPC-H instance (≈ SF 0.005): the real engine exists to
    // validate operators and calibrate the simulator's cost model, not
    // to run SF 100.
    let cat = Arc::new(tpch::gen_catalog(0.005, 42));
    for name in ["customer", "orders", "lineitem"] {
        let t = cat.table_by_name(name).expect("generated table");
        println!("{name:<10} {:>9} rows in {:>3} blocks", t.num_rows(), t.num_blocks());
    }

    let cost = CostModel::default_model();
    let plans = vec![
        tpch::q1_executable(&cat, &cost),
        tpch::q6_executable(&cat, &cost),
        tpch::q3_executable(&cat, &cost),
    ];

    // Single-query answers (also shows how to read results).
    let exec = Executor::new(Arc::clone(&cat), 4);
    for plan in &plans {
        let (res, rows) = exec.run_single(Arc::clone(plan));
        println!(
            "\n{} finished in {:.3}s over {} work orders; {} result rows:",
            plan.name,
            res.makespan,
            res.total_work_orders,
            rows.len()
        );
        for row in rows.iter().take(4) {
            let rendered: Vec<String> = row.iter().map(ToString::to_string).collect();
            println!("  [{}]", rendered.join(", "));
        }
    }

    // The same three queries as one batch under different schedulers;
    // latencies differ, answers must not.
    let wl: Vec<WorkloadItem> = plans
        .iter()
        .map(|p| WorkloadItem::new(0.0, Arc::clone(p)))
        .collect();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FairScheduler::default()),
        Box::new(SjfScheduler),
        Box::new(FifoScheduler),
    ];
    println!("\nbatch of q1+q6+q3 on the real engine (4 worker threads):");
    println!("{:<8} {:>12} {:>12} {:>8}", "policy", "avg (s)", "makespan", "WOs");
    for s in schedulers.iter_mut() {
        let res = exec.run(&wl, s.as_mut());
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>8}",
            s.name(),
            res.avg_duration(),
            res.makespan,
            res.total_work_orders
        );
        assert_eq!(res.outcomes.len(), 3, "all queries must complete");
    }
}
