//! Property-based integration tests: simulator invariants must hold for
//! randomized workloads, pool sizes, thread counts and scheduling
//! policies.

use lsched::prelude::*;
use lsched::workloads::tpch;
use proptest::prelude::*;

fn policy(which: u8) -> Box<dyn Scheduler> {
    match which % 5 {
        0 => Box::new(FifoScheduler),
        1 => Box::new(FairScheduler::default()),
        2 => Box::new(SjfScheduler),
        3 => Box::new(CriticalPathScheduler),
        _ => Box::new(QuickstepScheduler),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every query completes exactly once, with non-negative latency,
    /// finish after arrival, and makespan == max finish.
    #[test]
    fn simulation_conserves_queries(
        n_queries in 1usize..12,
        threads in 1usize..16,
        lambda in 1.0f64..200.0,
        seed in 0u64..1000,
        which in 0u8..5,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda }, seed);
        let mut s = policy(which);
        let res = simulate(
            SimConfig { num_threads: threads, seed, ..Default::default() },
            &wl,
            s.as_mut(),
        );
        prop_assert_eq!(res.outcomes.len(), n_queries);
        let mut qids: Vec<u64> = res.outcomes.iter().map(|o| o.qid.0).collect();
        qids.sort_unstable();
        qids.dedup();
        prop_assert_eq!(qids.len(), n_queries, "duplicate completions");
        for o in &res.outcomes {
            prop_assert!(o.duration > 0.0);
            prop_assert!(o.finish >= o.arrival);
        }
        let max_finish = res.outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
        prop_assert!((res.makespan - max_finish).abs() < 1e-9);
    }

    /// Work conservation: the total executed work orders equal the sum
    /// of planned work orders over all queries, for every policy.
    #[test]
    fn simulation_conserves_work_orders(
        n_queries in 1usize..10,
        threads in 1usize..12,
        seed in 0u64..1000,
        which in 0u8..5,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let planned: u64 = wl
            .iter()
            .map(|w| w.plan.ops.iter().map(|o| u64::from(o.num_work_orders)).sum::<u64>())
            .sum();
        let mut s = policy(which);
        let res = simulate(
            SimConfig { num_threads: threads, seed, ..Default::default() },
            &wl,
            s.as_mut(),
        );
        prop_assert_eq!(res.total_work_orders, planned);
    }

    /// Determinism: identical (workload, seed, policy) runs give
    /// identical results.
    #[test]
    fn simulation_is_deterministic(
        n_queries in 1usize..8,
        seed in 0u64..500,
        which in 0u8..5,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let cfg = SimConfig { num_threads: 6, seed, ..Default::default() };
        let r1 = simulate(cfg.clone(), &wl, policy(which).as_mut());
        let r2 = simulate(cfg, &wl, policy(which).as_mut());
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.avg_duration(), r2.avg_duration());
        prop_assert_eq!(r1.sched_decisions, r2.sched_decisions);
    }

    /// The makespan can never beat the theoretical lower bound of total
    /// serial work divided by thread count (in a noise-free simulator).
    #[test]
    fn makespan_respects_work_lower_bound(
        n_queries in 1usize..8,
        threads in 1usize..10,
        seed in 0u64..500,
        which in 0u8..5,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let mut cfg = SimConfig { num_threads: threads, seed, ..Default::default() };
        cfg.cost.noise_sigma = 0.0;
        // Minimum possible per-WO time: every discount applied.
        let min_serial: f64 = wl
            .iter()
            .map(|w| {
                w.plan
                    .ops
                    .iter()
                    .map(|o| {
                        o.num_work_orders as f64
                            * o.est_wo_duration
                            * cfg.cost.pipeline_speedup
                            * cfg.cost.thread_locality_speedup
                    })
                    .sum::<f64>()
            })
            .sum();
        let bound = min_serial / threads as f64;
        let res = simulate(cfg, &wl, policy(which).as_mut());
        prop_assert!(
            res.makespan >= bound * 0.999,
            "makespan {} below work bound {}",
            res.makespan,
            bound
        );
    }

    /// CDFs are monotone and end at 1.
    #[test]
    fn cdf_is_well_formed(
        n_queries in 2usize..10,
        seed in 0u64..500,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let res = simulate(
            SimConfig { num_threads: 6, seed, ..Default::default() },
            &wl,
            &mut FairScheduler::default(),
        );
        let cdf = res.cdf();
        prop_assert_eq!(cdf.len(), n_queries);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}

/// Degenerate-input behavior of the O(n+m) sorted merge behind
/// cross-shard latency pooling: empty⊕empty, empty⊕nonempty,
/// single-sample, and all-identical inputs must stay NaN-free and be
/// bitwise equal to the pooled-samples oracle.
#[test]
fn latency_merge_degenerate_cases_match_pooled_oracle() {
    use lsched::engine::sim::LatencyStats;

    let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
        (vec![], vec![]),
        (vec![], vec![0.25]),
        (vec![0.25], vec![]),
        (vec![0.5], vec![0.5]),
        (vec![1.0; 7], vec![1.0; 3]),
        (vec![0.125], vec![0.5, 0.25, 0.75]),
        (vec![3.0, 1.0, 2.0], vec![2.5]),
        (vec![0.0, 0.0], vec![0.0]),
    ];
    for (a, b) in cases {
        let mut merged = LatencyStats::from_samples(a.clone());
        merged.merge(&LatencyStats::from_samples(b.clone()));
        let pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let oracle = LatencyStats::from_samples(pooled);
        assert_eq!(merged.len(), a.len() + b.len(), "merge must not drop samples");
        assert_eq!(merged.len(), oracle.len());
        for (m, o) in merged.samples().iter().zip(oracle.samples()) {
            assert_eq!(m.to_bits(), o.to_bits(), "merged sample diverged from pooled oracle");
        }
        assert!(!merged.mean().is_nan(), "mean must be NaN-free on {:?}+{:?}", a, b);
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let q = merged.quantile(p);
            assert!(!q.is_nan(), "quantile({p}) must be NaN-free");
            assert_eq!(q.to_bits(), oracle.quantile(p).to_bits());
        }
        // Empty statistics define mean/quantiles as 0 rather than NaN.
        if merged.is_empty() {
            assert_eq!(merged.mean(), 0.0);
            assert_eq!(merged.quantile(0.99), 0.0);
        }
    }
}

/// Merging is associative in effect: folding three shards' samples in
/// either grouping yields the same sorted basis, even when whole shards
/// are empty or duplicate each other.
#[test]
fn latency_merge_grouping_is_immaterial() {
    use lsched::engine::sim::LatencyStats;

    let shards = [vec![0.3, 0.1], vec![], vec![0.2, 0.2, 0.05]];
    let mut left = LatencyStats::from_samples(shards[0].clone());
    left.merge(&LatencyStats::from_samples(shards[1].clone()));
    left.merge(&LatencyStats::from_samples(shards[2].clone()));

    let mut tail = LatencyStats::from_samples(shards[1].clone());
    tail.merge(&LatencyStats::from_samples(shards[2].clone()));
    let mut right = LatencyStats::from_samples(shards[0].clone());
    right.merge(&tail);

    assert_eq!(left.len(), right.len());
    for (l, r) in left.samples().iter().zip(right.samples()) {
        assert_eq!(l.to_bits(), r.to_bits());
    }
}
