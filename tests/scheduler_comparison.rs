//! Integration: every scheduler completes every benchmark's workloads on
//! the simulator, and the qualitative orderings the paper relies on hold
//! for the heuristics.

use lsched::core::{LSchedConfig, LSchedModel, LSchedScheduler};
use lsched::decima::{DecimaConfig, DecimaModel, DecimaScheduler};
use lsched::prelude::*;
use lsched::workloads::{job, ssb, tpch};

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    let mut lcfg = LSchedConfig::default();
    lcfg.encoder.hidden = 12;
    lcfg.encoder.pqe_dim = 6;
    lcfg.encoder.aqe_dim = 6;
    vec![
        Box::new(FifoScheduler),
        Box::new(FairScheduler::default()),
        Box::new(SjfScheduler),
        Box::new(HpfScheduler),
        Box::new(CriticalPathScheduler),
        Box::new(QuickstepScheduler),
        Box::new(SelfTuneScheduler::default()),
        Box::new(LSchedScheduler::greedy(LSchedModel::new(lcfg, 1))),
        Box::new(DecimaScheduler::greedy(DecimaModel::new(
            DecimaConfig { hidden: 12, layers: 2, max_threads: 32, ..Default::default() },
            1,
        ))),
    ]
}

#[test]
fn every_scheduler_completes_every_benchmark() {
    let pools = [
        ("tpch", tpch::plan_pool(&[0.5])),
        ("ssb", ssb::plan_pool(&[0.5])),
        ("job", job::plan_pool().into_iter().take(30).collect::<Vec<_>>()),
    ];
    for (bench, pool) in pools {
        let wl = gen_workload(&pool, 8, ArrivalPattern::Streaming { lambda: 30.0 }, 3);
        for s in all_schedulers().iter_mut() {
            let res = simulate(SimConfig { num_threads: 8, ..Default::default() }, &wl, s.as_mut());
            assert_eq!(
                res.outcomes.len(),
                8,
                "{} lost queries on {bench}",
                s.name()
            );
        }
    }
}

#[test]
fn fifo_worst_under_streaming_load() {
    // Figure 8's headline: FIFO has by far the worst average duration
    // because head-of-line blocking stalls short queries behind long
    // ones. The effect shows under streaming load with heterogeneous
    // query sizes (on equal-size batches, serial completion can even
    // help the average — which is why the paper's batching FIFO gap is
    // smaller than the streaming one).
    let pool = tpch::plan_pool(&[1.0, 10.0]);
    let mut fifo_avg = 0.0;
    let mut fair_avg = 0.0;
    for seed in 0..3 {
        // λ high enough that queries overlap heavily on 12 threads.
        let wl = gen_workload(&pool, 30, ArrivalPattern::Streaming { lambda: 40.0 }, seed);
        let cfg = SimConfig { num_threads: 12, seed, ..Default::default() };
        fifo_avg += simulate(cfg.clone(), &wl, &mut FifoScheduler).avg_duration();
        fair_avg += simulate(cfg, &wl, &mut FairScheduler::default()).avg_duration();
    }
    assert!(
        fifo_avg > fair_avg * 1.1,
        "fifo ({fifo_avg}) should clearly exceed fair ({fair_avg})"
    );
}

#[test]
fn tuned_selftune_at_least_matches_default() {
    use lsched::sched::{tune, TuneConfig};
    let pool = tpch::plan_pool(&[0.5, 1.0]);
    let samples: Vec<Vec<WorkloadItem>> = (0..2)
        .map(|s| gen_workload(&pool, 10, ArrivalPattern::Streaming { lambda: 50.0 }, s))
        .collect();
    let sim = SimConfig { num_threads: 10, ..Default::default() };
    let (tuned, tuned_score) =
        tune(&samples, &TuneConfig { iterations: 10, samples: 2, sim: sim.clone(), seed: 4 });

    let mut default_total = 0.0;
    let mut tuned_total = 0.0;
    for wl in &samples {
        default_total +=
            simulate(sim.clone(), wl, &mut SelfTuneScheduler::default()).avg_duration();
        tuned_total +=
            simulate(sim.clone(), wl, &mut SelfTuneScheduler::new(tuned)).avg_duration();
    }
    assert!(tuned_total <= default_total + 1e-9);
    assert!(tuned_score > 0.0);
}

#[test]
fn schedulers_report_overhead_metrics() {
    let pool = tpch::plan_pool(&[0.5]);
    let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 1);
    let cfg = SimConfig { num_threads: 6, ..Default::default() };

    let fair = simulate(cfg.clone(), &wl, &mut FairScheduler::default());
    let mut lcfg = LSchedConfig::default();
    lcfg.encoder.hidden = 12;
    lcfg.encoder.pqe_dim = 6;
    lcfg.encoder.aqe_dim = 6;
    let learned =
        simulate(cfg, &wl, &mut LSchedScheduler::greedy(LSchedModel::new(lcfg, 2)));

    // Figure 13a's shape: learned scheduling latency is orders of
    // magnitude above heuristic latency.
    assert!(fair.sched_wall_time >= 0.0);
    assert!(
        learned.sched_latency_per_query() > fair.sched_latency_per_query() * 10.0,
        "learned {} vs heuristic {}",
        learned.sched_latency_per_query(),
        fair.sched_latency_per_query()
    );
    assert!(learned.sched_invocations > 0);
    assert!(learned.sched_decisions > 0);
}

#[test]
fn streaming_lighter_than_batch_for_same_queries() {
    // With spread-out arrivals the system is less pressured, so average
    // duration should not exceed the batched case (Figure 8 vs 12
    // dynamics).
    let pool = tpch::plan_pool(&[1.0]);
    let cfg = SimConfig { num_threads: 8, ..Default::default() };
    let batch = {
        let wl = gen_workload(&pool, 16, ArrivalPattern::Batch, 9);
        simulate(cfg.clone(), &wl, &mut FairScheduler::default()).avg_duration()
    };
    let stream = {
        let wl = gen_workload(&pool, 16, ArrivalPattern::Streaming { lambda: 0.5 }, 9);
        simulate(cfg, &wl, &mut FairScheduler::default()).avg_duration()
    };
    assert!(
        stream < batch,
        "slow stream ({stream}) should beat batch ({batch})"
    );
}
