//! Integration: the discrete-event simulator and the real threaded
//! engine agree on the *relative* behaviour of queries — the property
//! that justifies training and benchmarking on the simulator (DESIGN.md
//! §1's substitution argument).

use std::sync::Arc;

use lsched::engine::cost::CostModel;
use lsched::engine::executor::Executor;
use lsched::prelude::*;
use lsched::workloads::tpch;

/// Runs the three executable TPC-H queries one at a time on both
/// substrates and checks that the heavier-than ordering of their
/// makespans matches.
#[test]
fn single_query_cost_ordering_matches() {
    let cat = Arc::new(tpch::gen_catalog(0.003, 13));
    let cost = CostModel::default_model();
    let plans = [
        tpch::q6_executable(&cat, &cost),
        tpch::q1_executable(&cat, &cost),
        tpch::q3_executable(&cat, &cost),
    ];

    // Real engine (average of 2 runs to smooth thread jitter).
    let exec = Executor::new(Arc::clone(&cat), 2);
    let mut real: Vec<f64> = Vec::new();
    for p in &plans {
        let mut total = 0.0;
        for _ in 0..2 {
            let (res, _) = exec.run_single(Arc::clone(p));
            total += res.makespan;
        }
        real.push(total / 2.0);
    }

    // Simulator with the same plans and a noise-free cost model.
    let mut sim_cfg = SimConfig { num_threads: 2, ..Default::default() };
    sim_cfg.cost.noise_sigma = 0.0;
    let sim: Vec<f64> = plans
        .iter()
        .map(|p| {
            let wl = vec![WorkloadItem::new(0.0, Arc::clone(p))];
            simulate(sim_cfg.clone(), &wl, &mut FifoScheduler).makespan
        })
        .collect();

    // What the substitution must preserve: the filtered Q6 is the
    // lightest of the three on both substrates (Q1 touches all of
    // lineitem; Q3 runs a three-way join), and no query's cost is off by
    // more than two orders of magnitude between the substrates. The
    // exact Q1-vs-Q3 ordering legitimately differs: the real engine's
    // row-wise grouped aggregation is slower per tuple than the
    // production-grade engine the cost model encodes.
    let min_of = |xs: &[f64]| {
        xs.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    assert_eq!(
        min_of(&real),
        min_of(&sim),
        "substrates disagree on the lightest query: real {real:?} vs sim {sim:?}"
    );
    for (r, s) in real.iter().zip(&sim) {
        let ratio = r / s;
        assert!(
            (0.01..100.0).contains(&ratio),
            "cost magnitudes diverged: real {real:?} vs sim {sim:?}"
        );
    }
}

/// Both substrates must agree that a multi-query batch under FIFO takes
/// longer on average than under fair sharing.
#[test]
fn policy_ordering_matches_across_substrates() {
    let cat = Arc::new(tpch::gen_catalog(0.002, 17));
    let cost = CostModel::default_model();
    let plans = [
        tpch::q1_executable(&cat, &cost),
        tpch::q1_executable(&cat, &cost),
        tpch::q6_executable(&cat, &cost),
        tpch::q3_executable(&cat, &cost),
    ];
    let wl: Vec<WorkloadItem> = plans
        .iter()
        .map(|p| WorkloadItem::new(0.0, Arc::clone(p)))
        .collect();

    // Real engine, 2 threads: both policies must complete the batch and
    // report sane latencies. (Wall-clock *ratios* on the real engine are
    // not asserted: they depend on concurrent machine load, which made a
    // strict fifo/fair ratio comparison flaky in CI-like environments.)
    let exec = Executor::new(Arc::clone(&cat), 2);
    let real_fifo = exec.run(&wl, &mut FifoScheduler);
    let real_fair = exec.run(&wl, &mut FairScheduler::default());
    assert_eq!(real_fifo.outcomes.len(), 4);
    assert_eq!(real_fair.outcomes.len(), 4);
    assert!(real_fifo.avg_duration() > 0.0 && real_fair.avg_duration() > 0.0);

    // The deterministic simulator's comparison is assertable: FIFO's
    // serial execution of an equal-ish batch must not beat fair sharing
    // by more than a whisker.
    let mut sim_cfg = SimConfig { num_threads: 2, ..Default::default() };
    sim_cfg.cost.noise_sigma = 0.0;
    let sim_fifo = simulate(sim_cfg.clone(), &wl, &mut FifoScheduler).avg_duration();
    let sim_fair = simulate(sim_cfg, &wl, &mut FairScheduler::default()).avg_duration();
    assert!(
        sim_fifo / sim_fair >= 0.9,
        "sim fifo ({sim_fifo}) unexpectedly far below fair ({sim_fair})"
    );
}

/// The simulator's per-work-order durations must be in the same
/// magnitude range as real measured work orders (the calibration the
/// cost model encodes).
#[test]
fn work_order_durations_same_magnitude()
{
    let cat = Arc::new(tpch::gen_catalog(0.005, 19));
    let cost = CostModel::default_model();
    let plan = tpch::q1_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 1);
    let (res, _) = exec.run_single(Arc::clone(&plan));
    let real_per_wo = res.makespan / res.total_work_orders as f64;
    // Simulator estimate of the same plan's scan work order.
    let est = plan.op(lsched::engine::OpId(0)).est_wo_duration;
    let ratio = real_per_wo / est;
    assert!(
        (0.01..100.0).contains(&ratio),
        "calibration off by more than 100x: real/wo {real_per_wo:.2e}, est {est:.2e}"
    );
}
