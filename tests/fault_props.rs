//! Property-based robustness tests: fault injection must conserve
//! queries, stay bit-identical across same-seed runs, and the guarded
//! scheduler must absorb a NaN-poisoned learned policy end-to-end.

use lsched::prelude::*;
use lsched::sched::GuardedScheduler as Guard;
use lsched::workloads::tpch;
use proptest::prelude::*;

fn policy(which: u8) -> Box<dyn Scheduler> {
    match which % 5 {
        0 => Box::new(FifoScheduler),
        1 => Box::new(FairScheduler::default()),
        2 => Box::new(SjfScheduler),
        3 => Box::new(CriticalPathScheduler),
        _ => Box::new(QuickstepScheduler),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Conservation under randomized fault plans: every planned query is
    /// accounted for exactly once, as completed or aborted, and the
    /// fault counters agree with the abort list.
    #[test]
    fn faults_conserve_queries(
        n_queries in 1usize..12,
        threads in 2usize..12,
        seed in 0u64..500,
        which in 0u8..5,
        losses in 0usize..4,
        rejoins in 0usize..4,
        fail_prob in 0.0f64..0.15,
        straggler_prob in 0.0f64..0.1,
        n_cancel in 0usize..3,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 80.0 }, seed);
        let faults = FaultPlan {
            seed,
            worker_loss: (0..losses).map(|i| (0.01 + 0.02 * i as f64, 1)).collect(),
            worker_rejoin: (0..rejoins).map(|i| (0.05 + 0.03 * i as f64, 1)).collect(),
            wo_failure_prob: fail_prob,
            straggler_prob,
            cancellations: (0..n_cancel).map(|i| (0.02 + 0.05 * i as f64, i as u64)).collect(),
            ..FaultPlan::default()
        };
        let cfg = SimConfig {
            num_threads: threads,
            seed,
            faults: Some(faults),
            ..Default::default()
        };
        let mut s = policy(which);
        let res = try_simulate(cfg, &wl, s.as_mut()).expect("fault run must not error");
        prop_assert_eq!(
            res.outcomes.len() + res.aborted.len(),
            n_queries,
            "completed + aborted must equal planned"
        );
        let mut ids: Vec<u64> = res
            .outcomes
            .iter()
            .chain(res.aborted.iter())
            .map(|o| o.qid.0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n_queries, "each query accounted exactly once");
        prop_assert_eq!(
            res.fault_summary.queries_cancelled + res.fault_summary.queries_failed,
            res.aborted.len() as u64
        );
        for o in res.outcomes.iter().chain(res.aborted.iter()) {
            prop_assert!(o.finish >= o.arrival);
        }
    }

    /// A worker rejoin scheduled at the same tick as a worker loss must
    /// never double-count pool capacity: the drained pool size is exactly
    /// `initial - lost + joined`, whatever order the two events pop in.
    #[test]
    fn same_tick_loss_and_rejoin_conserves_pool_capacity(
        n_queries in 1usize..10,
        threads in 3usize..10,
        seed in 0u64..300,
        which in 0u8..5,
        k in 1usize..3,
        tick in 0.01f64..0.2,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let faults = FaultPlan {
            seed,
            worker_loss: vec![(tick, k)],
            worker_rejoin: vec![(tick, k)],
            ..FaultPlan::default()
        };
        let cfg = SimConfig {
            num_threads: threads,
            seed,
            faults: Some(faults),
            ..Default::default()
        };
        let mut s = policy(which);
        let res = try_simulate(cfg, &wl, s.as_mut()).expect("fault run must not error");
        prop_assert_eq!(res.outcomes.len(), n_queries, "loss+rejoin must not abort queries");
        let expected = threads as u64 - res.fault_summary.workers_lost
            + res.fault_summary.workers_joined;
        prop_assert_eq!(
            res.final_pool_size as u64,
            expected,
            "pool capacity must balance: {:?}",
            res.fault_summary
        );
    }

    /// Same seed, same plan: fault-injected runs are bit-identical.
    #[test]
    fn faulted_runs_are_bit_identical(
        n_queries in 1usize..10,
        threads in 2usize..10,
        seed in 0u64..500,
        which in 0u8..5,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
        let faults = FaultPlan {
            seed,
            worker_loss: vec![(0.02, 1)],
            worker_rejoin: vec![(0.1, 1)],
            wo_failure_prob: 0.08,
            straggler_prob: 0.05,
            cancellations: vec![(0.05, 0)],
            ..FaultPlan::default()
        };
        let cfg = SimConfig {
            num_threads: threads,
            seed,
            faults: Some(faults),
            ..Default::default()
        };
        let r1 = try_simulate(cfg.clone(), &wl, policy(which).as_mut()).unwrap();
        let r2 = try_simulate(cfg, &wl, policy(which).as_mut()).unwrap();
        prop_assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits());
        prop_assert_eq!(r1.avg_duration().to_bits(), r2.avg_duration().to_bits());
        prop_assert_eq!(r1.sched_decisions, r2.sched_decisions);
        prop_assert_eq!(r1.fault_summary, r2.fault_summary);
        prop_assert_eq!(r1.outcomes.len(), r2.outcomes.len());
        prop_assert_eq!(r1.aborted.len(), r2.aborted.len());
        for (a, b) in r1.outcomes.iter().zip(r2.outcomes.iter()) {
            prop_assert_eq!(a.qid, b.qid);
            prop_assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        }
    }
}

/// A NaN-poisoned learned policy behind the circuit breaker must not
/// take down the run: the breaker trips, the fallback heuristic finishes
/// every query.
#[test]
fn guarded_scheduler_absorbs_poisoned_model() {
    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, 10, ArrivalPattern::Streaming { lambda: 60.0 }, 11);
    let mut model = LSchedModel::new(LSchedConfig::default(), 0);
    let ids: Vec<_> = model.store.iter_ids().map(|(id, _)| id).collect();
    for id in ids {
        model
            .store
            .value_mut(id)
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = f32::NAN);
    }
    let mut guard = Guard::new(LSchedScheduler::greedy(model));
    let res = simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut guard);
    assert_eq!(res.outcomes.len(), 10, "fallback must finish every query");
    assert!(guard.stats().trips >= 1, "NaN policy must trip the breaker");
    assert!(guard.stats().fallback_events > 0);
    assert_eq!(guard.health(), PolicyHealth::Degraded, "guard off primary reports degraded");
}

/// Regression for the stale-clamp bug: a query cancelled while the
/// breaker is in `Fallback(cooldown)` used to leave a live-context clamp
/// failure behind — the first post-recovery decision naming it tripped
/// the breaker again. The guard must instead drop such decisions
/// silently and count them as `stale_decisions`.
#[test]
fn cancellation_during_cooldown_does_not_retrip_on_stale_decisions() {
    use lsched::engine::OpId;

    /// Panics once to open the breaker, then keeps re-issuing a decision
    /// for every query it saw cancelled — modelling a stateful policy
    /// whose cache missed a teardown during cooldown.
    struct CachesCancelled {
        seen: u32,
        dead: Vec<QueryId>,
        delegate: QuickstepScheduler,
    }
    impl Scheduler for CachesCancelled {
        fn name(&self) -> String {
            "caches_cancelled".into()
        }
        fn on_event(&mut self, ctx: &SchedContext<'_>, ev: &SchedEvent) -> Vec<SchedDecision> {
            self.seen += 1;
            if self.seen == 3 {
                panic!("one-shot inference failure");
            }
            let mut ds = self.delegate.on_event(ctx, ev);
            if let Some(&qid) = self.dead.last() {
                if ctx.queries.iter().all(|q| q.qid != qid) {
                    ds.push(SchedDecision {
                        query: qid,
                        root: OpId(0),
                        pipeline_degree: 1,
                        threads: 1,
                    });
                }
            }
            ds
        }
        fn on_query_cancelled(&mut self, _time: f64, query: QueryId) {
            self.dead.push(query);
        }
    }

    let pool = tpch::plan_pool(&[0.3]);
    let mut wl = gen_workload(&pool, 10, ArrivalPattern::Batch, 13);
    // The last query misses its SLO instantly: its deadline event fires
    // at arrival, during the breaker's cooldown (opened by the panic at
    // event 3, which is also an arrival in a batch workload).
    wl[9] = wl[9].clone().with_deadline(0.0);
    let inner = CachesCancelled { seen: 0, dead: Vec::new(), delegate: QuickstepScheduler };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut guard = lsched::sched::GuardedScheduler::with_fallback(
        inner,
        QuickstepScheduler,
        lsched::sched::GuardConfig { cooldown_events: 2, ..Default::default() },
    );
    let res = simulate(SimConfig { num_threads: 2, seed: 13, ..Default::default() }, &wl, &mut guard);
    std::panic::set_hook(prev);
    assert_eq!(res.outcomes.len() + res.aborted.len(), 10);
    assert_eq!(res.resilience.deadline_timeouts, 1);
    let stats = guard.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.trips, 1, "only the panic may trip; stale decisions must not: {stats:?}");
    assert!(stats.stale_decisions >= 1, "stale decisions must be counted: {stats:?}");
    assert_eq!(stats.invalid_decisions, 0, "stale is not invalid: {stats:?}");
    assert!(stats.recoveries >= 1, "the probe must succeed despite stale decisions");
}

/// Admission control and deadline enforcement layered on top of the
/// standard fault matrix keep chaos runs bit-identical: neither path
/// consumes fault-injection RNG.
#[test]
fn admission_and_deadlines_bit_identical_under_fault_matrix() {
    use lsched::engine::RetryPolicy;
    use lsched::sched::{Admission, AdmissionConfig};

    let run = || {
        let pool = tpch::plan_pool(&[0.3]);
        let mut wl = gen_workload(&pool, 20, ArrivalPattern::Streaming { lambda: 60.0 }, 7);
        for (i, w) in wl.iter_mut().enumerate() {
            *w = w.clone().with_priority((i % 3) as i32).with_deadline(0.05 + 0.01 * i as f64);
        }
        let faults = FaultPlan::standard_matrix(7, 8, 20, 0.5);
        let cfg = SimConfig {
            num_threads: 8,
            seed: 7,
            faults: Some(faults),
            retry: RetryPolicy { max_retries: 1, ..Default::default() },
            ..Default::default()
        };
        let gate = Admission::new(AdmissionConfig { max_queued: 4, resume_queued: 2, ..Default::default() });
        let mut guard = lsched::sched::GuardedScheduler::new(QuickstepScheduler).with_admission(gate);
        let res = try_simulate(cfg, &wl, &mut guard).unwrap();
        let stats = guard.admission_stats().unwrap();
        (res, stats)
    };
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits());
    assert_eq!(r1.fault_summary, r2.fault_summary);
    assert_eq!(r1.resilience, r2.resilience);
    assert_eq!(s1, s2, "gate counters must be deterministic");
    assert_eq!(r1.outcomes.len(), r2.outcomes.len());
    assert_eq!(r1.aborted.len(), r2.aborted.len());
    assert_eq!(
        r1.outcomes.len() + r1.aborted.len(),
        20,
        "every planned query has exactly one final fate"
    );
    for (a, b) in r1.outcomes.iter().zip(r2.outcomes.iter()) {
        assert_eq!(a.qid, b.qid);
        assert_eq!(a.finish.to_bits(), b.finish.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Enabling the predictive admission gate must not perturb RNG
    /// consumption: a *permissive* predictive gate (zero weights, so
    /// every arrival scores below threshold and is admitted, exactly
    /// like having no gate) leaves standard-fault-matrix runs
    /// bit-identical to gateless runs. Decisions may differ when the
    /// gate actually sheds; the random streams may never.
    #[test]
    fn predictive_gate_is_rng_neutral_under_fault_matrix(
        n_queries in 4usize..16,
        threads in 2usize..8,
        seed in 0u64..200,
        which in 0u8..5,
    ) {
        use lsched::core::features::ADMIT_DIM;
        use lsched::core::{PredictiveAdmission, PredictiveAdmissionConfig};
        use lsched::sched::AdmissionStack;

        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 60.0 }, seed);
        let faults = FaultPlan::standard_matrix(seed, threads, n_queries, 0.5);
        let cfg = SimConfig {
            num_threads: threads,
            seed,
            faults: Some(faults),
            ..Default::default()
        };

        let mut bare = Guard::with_fallback(
            policy(which),
            QuickstepScheduler,
            lsched::sched::GuardConfig::default(),
        );
        let r_bare = try_simulate(cfg.clone(), &wl, &mut bare).unwrap();

        let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig::default());
        // Permissive warm start: score = tanh(-1.0) for every arrival,
        // always under the admit threshold.
        gate.head_mut().warm_start_linear(&[0.0; ADMIT_DIM], -1.0);
        let stack = AdmissionStack::with_primary(
            Box::new(gate),
            Admission::new(AdmissionConfig::default()),
            32,
        );
        let mut gated = Guard::with_fallback(
            policy(which),
            QuickstepScheduler,
            lsched::sched::GuardConfig::default(),
        )
        .with_admission_stack(stack);
        let r_gated = try_simulate(cfg, &wl, &mut gated).unwrap();

        prop_assert_eq!(r_bare.makespan.to_bits(), r_gated.makespan.to_bits());
        prop_assert_eq!(r_bare.fault_summary, r_gated.fault_summary);
        prop_assert_eq!(r_bare.sched_decisions, r_gated.sched_decisions);
        prop_assert_eq!(r_bare.outcomes.len(), r_gated.outcomes.len());
        for (a, b) in r_bare.outcomes.iter().zip(r_gated.outcomes.iter()) {
            prop_assert_eq!(a.qid, b.qid);
            prop_assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        }
        let gs = gated.gate_stats().unwrap();
        prop_assert_eq!(gs.trips, 0, "a permissive sane gate must never trip: {:?}", gs);
    }

    /// An *actively shedding* predictive gate stays bit-identical across
    /// same-seed faulted runs: its decisions change the schedule but
    /// consume no randomness.
    #[test]
    fn active_predictive_shedding_is_deterministic_under_fault_matrix(
        n_queries in 8usize..20,
        threads in 2usize..6,
        seed in 0u64..200,
    ) {
        use lsched::core::{PredictiveAdmission, PredictiveAdmissionConfig};
        use lsched::sched::AdmissionStack;

        let run = || {
            let pool = tpch::plan_pool(&[0.3]);
            let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, seed);
            let faults = FaultPlan::standard_matrix(seed, threads, n_queries, 0.5);
            let cfg = SimConfig {
                num_threads: threads,
                seed,
                faults: Some(faults),
                ..Default::default()
            };
            // A low threshold on a batch burst: the gate sheds for real.
            let gate = PredictiveAdmission::new(PredictiveAdmissionConfig {
                admit_threshold: -0.5,
                ..Default::default()
            });
            let stack = AdmissionStack::with_primary(
                Box::new(gate),
                Admission::new(AdmissionConfig::default()),
                32,
            );
            let mut guard = Guard::new(QuickstepScheduler).with_admission_stack(stack);
            let res = try_simulate(cfg, &wl, &mut guard).unwrap();
            let gs = guard.gate_stats().unwrap();
            (res, gs)
        };
        let (r1, g1) = run();
        let (r2, g2) = run();
        prop_assert_eq!(r1.makespan.to_bits(), r2.makespan.to_bits());
        prop_assert_eq!(r1.fault_summary, r2.fault_summary);
        prop_assert_eq!(&r1.resilience, &r2.resilience);
        prop_assert_eq!(g1, g2, "gate breaker counters must be deterministic");
        prop_assert_eq!(r1.outcomes.len() + r1.aborted.len(), n_queries);
        for (a, b) in r1.outcomes.iter().zip(r2.outcomes.iter()) {
            prop_assert_eq!(a.qid, b.qid);
            prop_assert_eq!(a.finish.to_bits(), b.finish.to_bits());
        }
    }
}

/// End-to-end starvation bound: under a deferring predictive gate no
/// query is deferred more than `max_defer_bound()` times, and the sim's
/// observed `max_defer_attempts` metric proves it.
#[test]
fn predictive_starvation_bound_holds_under_overload() {
    use lsched::core::{PredictiveAdmission, PredictiveAdmissionConfig};
    use lsched::sched::AdmissionStack;

    let cfg_gate = PredictiveAdmissionConfig {
        admit_threshold: -0.2, // aggressive: defers readily
        starve_penalty: 0.08,
        ..Default::default()
    };
    let bound = PredictiveAdmission::new(cfg_gate.clone()).max_defer_bound();
    assert!((1..=31).contains(&bound), "bound {bound} must be within the engine cap");

    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, 30, ArrivalPattern::Batch, 21);
    let gate = PredictiveAdmission::new(cfg_gate);
    let stack = AdmissionStack::with_primary(
        Box::new(gate),
        Admission::new(AdmissionConfig::default()),
        32,
    );
    let mut guard = lsched::sched::GuardedScheduler::new(QuickstepScheduler)
        .with_admission_stack(stack);
    let res = simulate(SimConfig { num_threads: 2, seed: 21, ..Default::default() }, &wl, &mut guard);
    assert_eq!(res.outcomes.len() + res.aborted.len(), 30);
    assert!(
        res.resilience.deferred >= 1,
        "a 30-query burst on 2 threads must trigger deferrals: {:?}",
        res.resilience
    );
    assert!(
        res.resilience.max_defer_attempts <= bound,
        "observed defers {} exceed the proven bound {bound}",
        res.resilience.max_defer_attempts
    );
    assert_eq!(guard.gate_stats().unwrap().trips, 0, "the warm-start head is sane");
}

/// The breaker stays transparent when faults hammer a healthy heuristic:
/// guarded and bare runs of the standard fault matrix are bit-identical.
#[test]
fn guard_is_transparent_under_fault_matrix() {
    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, 20, ArrivalPattern::Streaming { lambda: 60.0 }, 5);
    let faults = FaultPlan::standard_matrix(5, 8, 20, 0.5);
    let cfg = SimConfig {
        num_threads: 8,
        seed: 5,
        faults: Some(faults),
        ..Default::default()
    };
    let bare = try_simulate(cfg.clone(), &wl, &mut QuickstepScheduler).unwrap();
    let mut guard = Guard::new(QuickstepScheduler);
    let guarded = try_simulate(cfg, &wl, &mut guard).unwrap();
    assert_eq!(bare.makespan.to_bits(), guarded.makespan.to_bits());
    assert_eq!(bare.fault_summary, guarded.fault_summary);
    assert_eq!(guard.stats().trips, 0, "healthy policy never trips");
}
