//! Crash-safe training: killing a run at any episode boundary and
//! resuming from disk must reproduce the uninterrupted run bit for bit,
//! and corrupt checkpoint generations must fall back to older ones.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use lsched::core::{
    train, train_with_checkpoints, CheckpointPolicy, ExperienceManager, LSchedConfig, LSchedModel,
    TrainConfig,
};
use lsched::nn::CheckpointManager;
use lsched::prelude::*;
use lsched::workloads::tpch;
use proptest::prelude::*;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("lsched-train-ckpt-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_model(seed: u64) -> LSchedModel {
    let mut cfg = LSchedConfig::default();
    cfg.encoder.hidden = 10;
    cfg.encoder.edge_hidden = 4;
    cfg.encoder.pqe_dim = 6;
    cfg.encoder.aqe_dim = 6;
    cfg.encoder.conv_layers = 2;
    cfg.predictor.max_degree = 4;
    cfg.predictor.max_threads = 16;
    LSchedModel::new(cfg, seed)
}

fn tiny_sampler() -> EpisodeSampler {
    EpisodeSampler {
        pool: tpch::plan_pool(&[0.3]),
        size_range: (4, 6),
        rate_range: (20.0, 60.0),
        batch_fraction: 0.5,
    }
}

fn train_cfg(episodes: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        episodes,
        sim: SimConfig { num_threads: 6, ..Default::default() },
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Kill-at-random-episode: run checkpointed training to `kill_ep`
    /// episodes (the crash), then resume from disk to the full episode
    /// count. Final parameters must be bit-identical to an uninterrupted
    /// run — the checkpoint carries the complete training state
    /// (parameters, Adam moments, RNG stream).
    #[test]
    fn killed_training_resumes_bit_identically(
        kill_ep in 1usize..4,
        seed in 0u64..50,
    ) {
        const EPISODES: usize = 4;
        let uninterrupted = {
            let mut exp = ExperienceManager::new(64);
            let (m, _) = train(tiny_model(seed), &tiny_sampler(), &train_cfg(EPISODES, seed), &mut exp);
            m.params_json()
        };

        let dir = scratch_dir();
        let policy = CheckpointPolicy { manager: CheckpointManager::new(&dir, 2), every: 1 };
        // Phase 1: the run that dies after `kill_ep` episodes.
        let mut exp = ExperienceManager::new(64);
        let (_, stats, resumed) = train_with_checkpoints(
            tiny_model(seed), &tiny_sampler(), &train_cfg(kill_ep, seed), &mut exp, &policy,
        ).expect("checkpointed run");
        prop_assert_eq!(resumed, 0, "fresh directory starts at episode 0");
        prop_assert_eq!(stats.episodes.len(), kill_ep);
        // Phase 2: a new process resumes from disk and finishes.
        let (m, stats, resumed) = train_with_checkpoints(
            tiny_model(seed), &tiny_sampler(), &train_cfg(EPISODES, seed), &mut exp, &policy,
        ).expect("resumed run");
        prop_assert_eq!(resumed, kill_ep, "resume picks up at the kill point");
        prop_assert_eq!(stats.episodes.len(), EPISODES - kill_ep);
        prop_assert_eq!(m.params_json(), uninterrupted,
            "resumed parameters must match the uninterrupted run bit for bit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn write (truncated newest generation) must fall back to the
/// previous generation — and because every generation is a complete
/// state, re-running the lost episode still converges to the exact
/// uninterrupted parameters.
#[test]
fn corrupt_latest_generation_falls_back_and_still_matches() {
    const EPISODES: usize = 3;
    let seed = 9;
    let uninterrupted = {
        let mut exp = ExperienceManager::new(64);
        let (m, _) = train(tiny_model(seed), &tiny_sampler(), &train_cfg(EPISODES, seed), &mut exp);
        m.params_json()
    };

    let dir = scratch_dir();
    let manager = CheckpointManager::new(&dir, 3);
    let policy = CheckpointPolicy { manager: manager.clone(), every: 1 };
    let mut exp = ExperienceManager::new(64);
    let (_, _, _) = train_with_checkpoints(
        tiny_model(seed), &tiny_sampler(), &train_cfg(2, seed), &mut exp, &policy,
    )
    .expect("checkpointed run");

    // Tear the newest generation mid-payload, as a crash during the
    // write would (the atomic rename normally prevents this; simulate
    // media damage instead).
    let gens = manager.generations().unwrap();
    assert_eq!(gens, vec![1, 2]);
    let newest = dir.join(format!("ckpt-{:012}.bin", 2));
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let (m, stats, resumed) = train_with_checkpoints(
        tiny_model(seed), &tiny_sampler(), &train_cfg(EPISODES, seed), &mut exp, &policy,
    )
    .expect("resume past the corrupt generation");
    assert_eq!(resumed, 1, "generation 2 is damaged, generation 1 loads");
    assert_eq!(stats.episodes.len(), EPISODES - 1, "episode 1 is re-run");
    assert_eq!(
        m.params_json(),
        uninterrupted,
        "fallback resume must still match the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
