//! Property-based tests for the sharded serving layer: a 1-shard routed
//! run is bit-identical to the unsharded simulator, N-shard runs are
//! bit-identical across repeats under the standard fault matrix (the
//! router and migration consume zero RNG), routing preserves per-tenant
//! FIFO and partitions the workload exactly, and cross-shard latency
//! merging equals the pooled-samples oracle.

use lsched::prelude::*;
use lsched::serve::{route_workload, RouterConfig, ServeConfig};
use lsched::workloads::tpch;
use proptest::prelude::*;
use std::collections::HashMap;

fn policy(which: u8) -> Box<dyn Scheduler> {
    match which % 5 {
        0 => Box::new(FifoScheduler),
        1 => Box::new(FairScheduler::default()),
        2 => Box::new(SjfScheduler),
        3 => Box::new(CriticalPathScheduler),
        _ => Box::new(QuickstepScheduler),
    }
}

fn classes() -> Vec<SloClass> {
    vec![SloClass::best_effort(), SloClass::silver(), SloClass::gold()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A 1-shard served run must be bit-identical to feeding the same
    /// (class-decorated) workload straight into the unsharded simulator:
    /// the router, tenant bookkeeping and merge layer add zero noise.
    #[test]
    fn one_shard_serve_is_bit_identical_to_unsharded(
        n_queries in 2usize..24,
        threads in 2usize..8,
        seed in 0u64..300,
        which in 0u8..5,
        tenants in 1u64..8,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 60.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());
        let sim = SimConfig { num_threads: threads, seed, ..Default::default() };

        let served = serve_workload(&ServeConfig::new(1, sim.clone()), &queries, |_| policy(which))
            .expect("1-shard serve cannot error");
        let direct_wl: Vec<WorkloadItem> =
            queries.iter().map(|q| q.class.apply(q.item.clone())).collect();
        let direct = try_simulate(sim, &direct_wl, policy(which).as_mut())
            .expect("unsharded run cannot error");

        prop_assert!(served.shards[0].result.bit_eq(&direct),
            "1-shard routed result diverged from the unsharded simulator");
        prop_assert_eq!(served.events_processed, direct.events_processed);
        prop_assert_eq!(served.makespan.to_bits(), direct.makespan.to_bits());
        prop_assert_eq!(served.router.migrations, 0, "one shard has nowhere to migrate");
    }

    /// N-shard served runs are bit-identical across repeats with the
    /// standard fault matrix enabled: routing, migration and the
    /// worker-per-shard execution collect zero RNG and impose a total
    /// deterministic order.
    #[test]
    fn n_shard_serve_is_bit_identical_across_repeats_under_faults(
        n_queries in 4usize..32,
        threads in 2usize..6,
        seed in 0u64..300,
        which in 0u8..5,
        shards in 2usize..5,
        tenants in 2u64..12,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 80.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());
        let faults = FaultPlan::standard_matrix(seed, threads, n_queries, 0.5);
        let sim = SimConfig {
            num_threads: threads,
            seed,
            faults: Some(faults),
            ..Default::default()
        };
        let cfg = ServeConfig::new(shards, sim);

        let a = serve_workload(&cfg, &queries, |_| policy(which)).expect("repeat A cannot error");
        let b = serve_workload(&cfg, &queries, |_| policy(which)).expect("repeat B cannot error");

        prop_assert_eq!(&a.router, &b.router, "router counters must repeat exactly");
        prop_assert_eq!(a.shards.len(), b.shards.len());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            prop_assert_eq!(&x.assigned, &y.assigned, "shard {} routing diverged", x.shard);
            prop_assert!(x.result.bit_eq(&y.result), "shard {} result diverged", x.shard);
        }
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        prop_assert_eq!(a.events_processed, b.events_processed);
        prop_assert_eq!(&a.resilience, &b.resilience);
        prop_assert_eq!(&a.faults, &b.faults);
        // Every query is simulated on exactly one shard.
        let mut seen: Vec<usize> = a.shards.iter().flat_map(|s| s.assigned.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_queries).collect::<Vec<_>>());
        prop_assert_eq!(a.completed + a.aborted, n_queries as u64);
    }

    /// Routing preserves per-tenant FIFO: within every shard each
    /// tenant's queries appear in global arrival order, and the merged
    /// latency statistics equal the pooled-samples oracle.
    #[test]
    fn routing_preserves_tenant_fifo_and_merge_oracle(
        n_queries in 4usize..40,
        threads in 2usize..6,
        seed in 0u64..300,
        shards in 1usize..5,
        tenants in 1u64..10,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 100.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());

        let (_, assigned, _) = route_workload(&RouterConfig::new(shards, threads), &queries);
        for shard in &assigned {
            let mut last: HashMap<u64, usize> = HashMap::new();
            for &gi in shard {
                let t = queries[gi].tenant;
                if let Some(&prev) = last.get(&t) {
                    prop_assert!(gi > prev, "tenant {} reordered: {} then {}", t, prev, gi);
                }
                last.insert(t, gi);
            }
        }

        let sim = SimConfig { num_threads: threads, seed, ..Default::default() };
        let served = serve_workload(&ServeConfig::new(shards, sim), &queries, |_| FifoScheduler)
            .expect("serve cannot error");
        let mut pooled: Vec<f64> = Vec::new();
        for s in &served.shards {
            pooled.extend(s.result.outcomes.iter().map(|o| o.duration));
        }
        let oracle = lsched::engine::sim::LatencyStats::from_samples(pooled);
        prop_assert_eq!(served.latency.samples(), oracle.samples());
        for p in [0.5, 0.9, 0.99] {
            prop_assert_eq!(
                served.latency.quantile(p).to_bits(),
                oracle.quantile(p).to_bits(),
                "merged p{} diverged from pooled oracle", p
            );
        }
    }
}

/// Guarded shards with admission gates surface per-shard and merged
/// admission counters, and the merged counters are the exact sums.
#[test]
fn sharded_admission_counters_sum_exactly() {
    use lsched::sched::{Admission, AdmissionConfig};

    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, 30, ArrivalPattern::Batch, 9);
    let queries = tenantize(&wl, 6, &classes());
    let cfg = ServeConfig::new(3, SimConfig { num_threads: 2, seed: 9, ..Default::default() });
    let served = serve_workload(&cfg, &queries, |_| {
        GuardedScheduler::new(QuickstepScheduler).with_admission(Admission::new(
            AdmissionConfig { max_queued: 4, resume_queued: 2, ..Default::default() },
        ))
    })
    .expect("guarded serve cannot error");
    let mut sum = AdmissionStats::default();
    for s in &served.shards {
        let a = s.admission.expect("guarded shard must report admission stats");
        sum.merge(&a);
    }
    assert_eq!(sum, served.admission);
    assert_eq!(served.admission.arrivals, 30);
    assert_eq!(served.completed + served.aborted, 30);
}

/// Quiets the default panic hook for a closure that exercises injected
/// shard panics (the supervisor catches them; the hook would still spam
/// stderr), restoring the previous hook afterwards.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Every query index 0..n appears exactly once across the runs'
/// finalized sets plus the abandoned list — the exactly-once contract,
/// recomputed externally from the per-run durable logs.
fn assert_exact_fates(r: &ServeResult, n: usize) -> Result<(), String> {
    let mut fates = vec![0usize; n];
    for run in &r.shards {
        for g in run.finalized() {
            fates[g] += 1;
        }
    }
    for &g in &r.abandoned {
        fates[g] += 1;
    }
    for (g, &c) in fates.iter().enumerate() {
        prop_assert_eq!(c, 1, "query {} has {} fates (must be exactly 1)", g, c);
    }
    prop_assert_eq!(r.completed + r.aborted + r.abandoned.len() as u64, n as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Supervised serving with an empty shard-fault plan degenerates to
    /// plain serving bit-for-bit: the supervisor adds zero noise when
    /// nothing crashes.
    #[test]
    fn supervised_noop_is_bit_identical_to_plain_serving(
        n_queries in 4usize..28,
        threads in 2usize..6,
        seed in 0u64..300,
        which in 0u8..5,
        shards in 1usize..5,
        tenants in 2u64..10,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 80.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());
        let cfg = ServeConfig::new(
            shards,
            SimConfig { num_threads: threads, seed, ..Default::default() },
        );
        let plain = serve_workload(&cfg, &queries, |_| policy(which)).expect("plain serve");
        let sup = serve_supervised(
            &cfg, &queries, &ShardFaultPlan::none(), &SupervisorConfig::default(),
            |_| policy(which),
        ).expect("supervised serve");
        prop_assert_eq!(sup.shards.len(), plain.shards.len());
        for (a, b) in sup.shards.iter().zip(&plain.shards) {
            prop_assert_eq!(a.epoch, 0, "noop run must not spawn failover epochs");
            prop_assert_eq!(&a.assigned, &b.assigned);
            prop_assert!(a.result.bit_eq(&b.result), "shard {} diverged under the supervisor", a.shard);
        }
        prop_assert_eq!(sup.makespan.to_bits(), plain.makespan.to_bits());
        prop_assert_eq!(sup.failover, FailoverSummary::default());
        prop_assert!(sup.abandoned.is_empty());
        prop_assert!(sup.health.iter().all(|h| *h == ShardHealth::Healthy || *h == ShardHealth::Degraded));
    }

    /// The full chaos matrix (crashes, restarts, slow shards, poison)
    /// is bit-identical across repeats, and no query is ever lost or
    /// duplicated: completions + terminal aborts + explicit abandonment
    /// exactly partition the workload, including failover replays.
    #[test]
    fn chaos_matrix_is_repeatable_and_exactly_once(
        n_queries in 8usize..36,
        threads in 2usize..5,
        seed in 0u64..300,
        which in 0u8..5,
        shards in 2usize..6,
        tenants in 2u64..10,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 80.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());
        let cfg = ServeConfig::new(
            shards,
            SimConfig { num_threads: threads, seed, ..Default::default() },
        );
        let horizon = serve_workload(&cfg, &queries, |_| policy(which))
            .expect("fault-free horizon run")
            .makespan;
        let faults = ShardFaultPlan::chaos(seed, shards, horizon.max(0.01));
        let run = || with_quiet_panics(|| {
            serve_supervised(&cfg, &queries, &faults, &SupervisorConfig::default(),
                |_| policy(which)).expect("supervised chaos run")
        });
        let a = run();
        let b = run();

        prop_assert_eq!(a.shards.len(), b.shards.len(), "replay structure diverged");
        for (x, y) in a.shards.iter().zip(&b.shards) {
            prop_assert_eq!((x.shard, x.epoch, &x.assigned), (y.shard, y.epoch, &y.assigned));
            prop_assert!(x.result.bit_eq(&y.result),
                "shard {} epoch {} diverged across repeats", x.shard, x.epoch);
        }
        prop_assert_eq!(a.failover, b.failover, "failover accounting diverged");
        prop_assert_eq!(&a.health, &b.health);
        prop_assert_eq!(&a.abandoned, &b.abandoned);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());

        assert_exact_fates(&a, n_queries)?;
        prop_assert_eq!(a.failover.recovered + a.failover.abandoned, a.failover.orphaned,
            "every orphan is either recovered or explicitly abandoned");
    }

    /// Failover re-routing preserves per-tenant FIFO: inside every
    /// replay batch a tenant's queries appear in original submission
    /// order (class weight is a pure function of the tenant, so the
    /// SLO-first failover order cannot interleave a tenant with itself).
    #[test]
    fn failover_replays_preserve_tenant_fifo(
        n_queries in 12usize..40,
        threads in 2usize..5,
        seed in 0u64..300,
        shards in 2usize..6,
        tenants in 2u64..10,
    ) {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, n_queries, ArrivalPattern::Streaming { lambda: 80.0 }, seed);
        let queries = tenantize(&wl, tenants, &classes());
        let cfg = ServeConfig::new(
            shards,
            SimConfig { num_threads: threads, seed, ..Default::default() },
        );
        let clean = serve_workload(&cfg, &queries, |_| FifoScheduler).expect("clean run");
        let crash_at = 0.25 * clean.shards[0].result.makespan.max(0.01);
        let faults = ShardFaultPlan::crash_one(0, crash_at);
        let r = serve_supervised(&cfg, &queries, &faults, &SupervisorConfig::default(),
            |_| FifoScheduler).expect("supervised run");

        for run in r.shards.iter().filter(|s| s.epoch > 0) {
            let mut last: HashMap<u64, usize> = HashMap::new();
            for &gi in &run.assigned {
                let t = queries[gi].tenant;
                if let Some(&prev) = last.get(&t) {
                    prop_assert!(gi > prev,
                        "replay batch reordered tenant {}: {} then {}", t, prev, gi);
                }
                last.insert(t, gi);
            }
        }
        assert_exact_fates(&r, n_queries)?;
    }
}
