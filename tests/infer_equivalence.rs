//! Tape vs tape-free equivalence: the same architecture evaluated on the
//! autodiff tape ([`TapeBackend`]) and on the inference arena
//! ([`InferCtx`]) must produce the same forward values. The two
//! executors share their accumulation kernels, so we hold them to *bit
//! identity* — strictly stronger than the 1e-5 tolerance the acceptance
//! criteria ask for — across random shapes, seeds and inputs, and we
//! check the full scheduler decision pass end to end.

use lsched::nn::{
    Activation, Backend, Graph, InferCtx, Mlp, PairAttention, ParamStore, TapeBackend,
    TreeConvStack, TreeSpec,
};
use lsched::prelude::*;
use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// MLP forward passes match bitwise for random widths/depths/inputs.
    #[test]
    fn mlp_matches_tape(
        in_dim in 1usize..10,
        hidden in 1usize..12,
        out_dim in 1usize..6,
        depth in 0usize..3,
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![in_dim];
        dims.extend(std::iter::repeat_n(hidden, depth));
        dims.push(out_dim);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &dims, Activation::LeakyRelu, Activation::Tanh);
        let x = rand_vec(&mut rng, in_dim);

        let tape_out = {
            let mut g = Graph::new();
            let mut b = TapeBackend::new(&mut g, &store);
            let xin = b.input(&x);
            let y = b.mlp(&mlp, xin);
            b.value(y).to_vec()
        };
        let infer_out = {
            let mut ctx = InferCtx::new();
            let mut b = ctx.session(&store);
            let xin = b.input(&x);
            let y = b.mlp(&mlp, xin);
            b.value(y).to_vec()
        };
        prop_assert_eq!(&tape_out, &infer_out, "fused inference layer diverged from tape");
        for (a, c) in tape_out.iter().zip(infer_out.iter()) {
            prop_assert!((a - c).abs() <= 1e-5);
        }
    }

    /// Batched candidate scoring (one GEMM) matches per-candidate tape
    /// scoring bitwise.
    #[test]
    fn mlp_scores_match_tape(
        in_dim in 1usize..8,
        hidden in 1usize..10,
        n_cands in 1usize..9,
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = Mlp::new(&mut store, &mut rng, "h", &[in_dim, hidden, 1],
                            Activation::LeakyRelu, Activation::None);
        let inputs: Vec<Vec<f32>> = (0..n_cands).map(|_| rand_vec(&mut rng, in_dim)).collect();

        let tape_out = {
            let mut g = Graph::new();
            let mut b = TapeBackend::new(&mut g, &store);
            let ids: Vec<_> = inputs.iter().map(|v| b.input(v)).collect();
            let s = b.mlp_scores(&head, &ids);
            b.value(s).to_vec()
        };
        let infer_out = {
            let mut ctx = InferCtx::new();
            let mut b = ctx.session(&store);
            let ids: Vec<_> = inputs.iter().map(|v| b.input(v)).collect();
            let s = b.mlp_scores(&head, &ids);
            b.value(s).to_vec()
        };
        prop_assert_eq!(&tape_out, &infer_out, "batched GEMM scoring diverged from tape");
    }

    /// Pair attention + softmax normalization match bitwise.
    #[test]
    fn gat_matches_tape(dim in 1usize..10, n_scores in 2usize..6, seed in 0u64..1000) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let att = PairAttention::new(&mut store, &mut rng, "att", dim);
        let anchor = rand_vec(&mut rng, dim);
        let others: Vec<Vec<f32>> = (0..n_scores).map(|_| rand_vec(&mut rng, dim)).collect();

        let tape_out = {
            let mut g = Graph::new();
            let mut b = TapeBackend::new(&mut g, &store);
            let a = b.input(&anchor);
            let scores: Vec<_> = others.iter().map(|o| {
                let oid = b.input(o);
                att.score_on(&mut b, a, oid)
            }).collect();
            let mut z = Vec::new();
            lsched::nn::gat::normalize_scores_on(&mut b, &scores, &mut z);
            z.iter().map(|&s| b.value(s)[0]).collect::<Vec<_>>()
        };
        let infer_out = {
            let mut ctx = InferCtx::new();
            let mut b = ctx.session(&store);
            let a = b.input(&anchor);
            let scores: Vec<_> = others.iter().map(|o| {
                let oid = b.input(o);
                att.score_on(&mut b, a, oid)
            }).collect();
            let mut z = Vec::new();
            lsched::nn::gat::normalize_scores_on(&mut b, &scores, &mut z);
            z.iter().map(|&s| b.value(s)[0]).collect::<Vec<_>>()
        };
        prop_assert_eq!(&tape_out, &infer_out, "attention scores diverged from tape");
    }

    /// Edge-aware tree convolution (with and without GAT) matches
    /// bitwise on random binary trees.
    #[test]
    fn tree_conv_matches_tape(
        n_nodes in 1usize..8,
        in_dim in 1usize..8,
        hidden in 1usize..8,
        edge_dim in 1usize..5,
        depth in 1usize..3,
        gat in 0u8..2,
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = TreeConvStack::new(&mut store, &mut rng, "tc", in_dim, hidden,
                                       edge_dim, depth, gat == 1);
        // Random binary tree: attach each node to a random earlier node
        // with a free slot.
        let mut tree = TreeSpec::with_nodes(n_nodes);
        let mut n_edges = 0usize;
        for child in 1..n_nodes {
            let with_free: Vec<usize> = (0..child)
                .filter(|&p| tree.children[p].iter().any(|s| s.is_none()))
                .collect();
            if with_free.is_empty() {
                continue;
            }
            let parent = with_free[rng.gen_range(0..with_free.len())];
            tree.attach(parent, child, n_edges);
            n_edges += 1;
        }
        let node_feats: Vec<Vec<f32>> = (0..n_nodes).map(|_| rand_vec(&mut rng, in_dim)).collect();
        let edge_feats: Vec<Vec<f32>> = (0..n_edges).map(|_| rand_vec(&mut rng, edge_dim)).collect();

        let tape_out = {
            let mut g = Graph::new();
            let mut b = TapeBackend::new(&mut g, &store);
            let nodes: Vec<_> = node_feats.iter().map(|v| b.input(v)).collect();
            let edges: Vec<_> = edge_feats.iter().map(|v| b.input(v)).collect();
            let mut out = Vec::new();
            stack.forward_on(&mut b, &tree, &nodes, &edges, &mut out);
            out.iter().map(|&id| b.value(id).to_vec()).collect::<Vec<_>>()
        };
        let infer_out = {
            let mut ctx = InferCtx::new();
            let mut b = ctx.session(&store);
            let nodes: Vec<_> = node_feats.iter().map(|v| b.input(v)).collect();
            let edges: Vec<_> = edge_feats.iter().map(|v| b.input(v)).collect();
            let mut out = Vec::new();
            stack.forward_on(&mut b, &tree, &nodes, &edges, &mut out);
            out.iter().map(|&id| b.value(id).to_vec()).collect::<Vec<_>>()
        };
        prop_assert_eq!(&tape_out, &infer_out, "tree convolution diverged from tape");
    }

    /// The full scheduler decision pass — encoder, batched root scoring,
    /// degree and thread heads, greedy AND sampled picks — is
    /// bit-identical between the tape and the tape-free path.
    #[test]
    fn full_decision_pass_matches_tape(
        n_queries in 1usize..4,
        free_threads in 1usize..8,
        model_seed in 0u64..100,
        rng_seed in 0u64..1000,
        sampled in 0u8..2,
    ) {
        use lsched::core::agent::InferScratch;
        use lsched::engine::plan::{OpKind, OpSpec, PlanBuilder};
        use lsched::engine::scheduler::QueryRuntime;
        use lsched::core::features::snapshot;
        use lsched::core::encoder::EncoderConfig;
        use lsched::core::predictor::PredictorConfig;

        let cfg = LSchedConfig {
            encoder: EncoderConfig {
                hidden: 12, edge_hidden: 4, pqe_dim: 8, aqe_dim: 8, conv_layers: 2,
                ..Default::default()
            },
            predictor: PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() },
        };
        let model = LSchedModel::new(cfg, model_seed);

        let queries: Vec<QueryRuntime> = (0..n_queries)
            .map(|i| {
                let mut b = PlanBuilder::new(format!("q{i}"));
                let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 100.0, 4, 0.01, 1e5);
                let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![1], 50.0, 4, 0.01, 1e5);
                let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 4, 0.01, 1e5);
                b.connect(scan, sel, true);
                b.connect(sel, agg, false);
                QueryRuntime::new(QueryId(i as u64), std::sync::Arc::new(b.finish(agg)), 0.0, 8)
            })
            .collect();
        let free_ids: Vec<usize> = (0..free_threads).collect();
        let hot = lsched::engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 8,
            free_threads,
            free_thread_ids: &free_ids,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let snap = snapshot(model.feature_config(), &ctx);

        let mode = if sampled == 1 { DecisionMode::Sample } else { DecisionMode::Greedy };
        let mut rng_tape = StdRng::seed_from_u64(rng_seed);
        let mut rng_infer = StdRng::seed_from_u64(rng_seed);
        let tape_rng = (mode == DecisionMode::Sample).then_some(&mut rng_tape);
        let infer_rng = (mode == DecisionMode::Sample).then_some(&mut rng_infer);

        let (g, tape_decisions, tape_picks, lp) = model.decide_snapshot(&snap, mode, tape_rng, None);
        let tape_lp = g.value(lp).data()[0];

        let mut scratch = InferScratch::new();
        let mut infer_decisions = Vec::new();
        let mut infer_picks = Vec::new();
        let infer_lp = model.decide_infer(
            &snap, mode, infer_rng, &mut scratch, &mut infer_decisions, &mut infer_picks,
        );

        prop_assert_eq!(&tape_decisions, &infer_decisions, "decisions diverged");
        prop_assert_eq!(&tape_picks, &infer_picks, "pick traces diverged");
        prop_assert_eq!(tape_lp.to_bits(), infer_lp.to_bits(), "log-prob diverged");
    }

    /// Cross-event fused scoring: packing random segment layouts into
    /// one `mlp_scores_batched` call yields per-event score vectors
    /// bit-identical to scoring each segment alone with `mlp_scores`,
    /// on both the tape and the inference backend.
    #[test]
    fn batched_segment_scores_match_sequential(
        in_dim in 1usize..8,
        hidden in 1usize..10,
        seg_lens in prop::collection::vec(1usize..7, 1..6),
        seed in 0u64..1000,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let head = Mlp::new(&mut store, &mut rng, "h", &[in_dim, hidden, 1],
                            Activation::LeakyRelu, Activation::None);
        let total: usize = seg_lens.iter().sum();
        let inputs: Vec<Vec<f32>> = (0..total).map(|_| rand_vec(&mut rng, in_dim)).collect();

        let mut ctx = InferCtx::new();
        let (batched, sequential) = {
            let mut b = ctx.session(&store);
            let ids: Vec<_> = inputs.iter().map(|v| b.input(v)).collect();
            let mut seg_scores = Vec::new();
            b.mlp_scores_batched(&head, &ids, &seg_lens, &mut seg_scores);
            let batched: Vec<Vec<f32>> =
                seg_scores.iter().map(|&s| b.value(s).to_vec()).collect();
            let mut sequential = Vec::new();
            let mut start = 0;
            for &len in &seg_lens {
                let s = b.mlp_scores(&head, &ids[start..start + len]);
                sequential.push(b.value(s).to_vec());
                start += len;
            }
            (batched, sequential)
        };
        prop_assert_eq!(&batched, &sequential, "fused per-event scores diverged");

        let tape: Vec<Vec<f32>> = {
            let mut g = Graph::new();
            let mut b = TapeBackend::new(&mut g, &store);
            let ids: Vec<_> = inputs.iter().map(|v| b.input(v)).collect();
            let mut seg_scores = Vec::new();
            b.mlp_scores_batched(&head, &ids, &seg_lens, &mut seg_scores);
            seg_scores.iter().map(|&s| b.value(s).to_vec()).collect()
        };
        prop_assert_eq!(&batched, &tape, "batched scores diverged from tape");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The cross-event batched decision pass (`decide_infer_batch`) over
    /// random event counts × per-event candidate counts is bit-identical
    /// to running the sequential per-event path (`decide_infer`) on each
    /// snapshot in event order with the same rng stream: same decisions,
    /// same greedy/sampled picks, same per-event log-prob bits.
    #[test]
    fn cross_event_batch_matches_sequential(
        event_sizes in prop::collection::vec(0usize..4, 1..5),
        free_threads in 1usize..8,
        model_seed in 0u64..100,
        rng_seed in 0u64..1000,
        sampled in 0u8..2,
    ) {
        use lsched::core::agent::{BatchInferScratch, InferScratch};
        use lsched::engine::plan::{OpKind, OpSpec, PlanBuilder};
        use lsched::engine::scheduler::QueryRuntime;
        use lsched::core::features::{snapshot, SystemSnapshot};
        use lsched::core::encoder::EncoderConfig;
        use lsched::core::predictor::PredictorConfig;

        let cfg = LSchedConfig {
            encoder: EncoderConfig {
                hidden: 12, edge_hidden: 4, pqe_dim: 8, aqe_dim: 8, conv_layers: 2,
                ..Default::default()
            },
            predictor: PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() },
        };
        let model = LSchedModel::new(cfg, model_seed);
        let budget = model.cfg.predictor.max_picks_per_event;

        // One independent system state per event; event `e`'s query count
        // is `event_sizes[e]` (zero-query events exercise the
        // empty-segment path).
        let snaps: Vec<SystemSnapshot> = event_sizes
            .iter()
            .enumerate()
            .map(|(e, &nq)| {
                let queries: Vec<QueryRuntime> = (0..nq)
                    .map(|i| {
                        let mut b = PlanBuilder::new(format!("e{e}q{i}"));
                        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 100.0 + e as f64, 4, 0.01, 1e5);
                        let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![1], 50.0, 4, 0.01, 1e5);
                        let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 4, 0.01, 1e5);
                        b.connect(scan, sel, true);
                        b.connect(sel, agg, false);
                        QueryRuntime::new(QueryId((e * 10 + i) as u64), std::sync::Arc::new(b.finish(agg)), 0.0, 8)
                    })
                    .collect();
                let free_ids: Vec<usize> = (0..free_threads).collect();
                let hot = lsched::engine::scheduler::QueryHot::from_queries(&queries);
                let ctx = SchedContext {
                    time: e as f64 * 0.1,
                    total_threads: 8,
                    free_threads,
                    free_thread_ids: &free_ids,
                    queries: &queries,
                    hot: &hot,
                    in_flight_mem: 0.0,
                    mem_budget: f64::INFINITY,
                };
                snapshot(model.feature_config(), &ctx)
            })
            .collect();
        let snap_refs: Vec<&SystemSnapshot> = snaps.iter().collect();

        let mode = if sampled == 1 { DecisionMode::Sample } else { DecisionMode::Greedy };

        // Sequential reference: per-event decide_infer, one rng stream
        // consumed in event order.
        let mut rng_seq = StdRng::seed_from_u64(rng_seed);
        let mut seq_scratch = InferScratch::new();
        let mut seq_decisions = Vec::new();
        let mut seq_picks = Vec::new();
        let mut seq_per_event = Vec::new();
        for snap in &snaps {
            let rng = (mode == DecisionMode::Sample).then_some(&mut rng_seq);
            let mut d = Vec::new();
            let mut p = Vec::new();
            let lp = model.decide_infer(snap, mode, rng, &mut seq_scratch, &mut d, &mut p);
            seq_per_event.push((d.len(), lp));
            seq_decisions.extend(d);
            seq_picks.extend(p);
        }

        // Batched path: one fused call over all events.
        let mut rng_batch = StdRng::seed_from_u64(rng_seed);
        let rng = (mode == DecisionMode::Sample).then_some(&mut rng_batch);
        let mut batch_scratch = BatchInferScratch::new();
        let mut batch_decisions = Vec::new();
        let mut batch_picks = Vec::new();
        let mut batch_per_event = Vec::new();
        model.decide_infer_batch(
            &snap_refs, mode, rng, budget, &mut batch_scratch,
            &mut batch_decisions, &mut batch_picks, &mut batch_per_event,
        );

        prop_assert_eq!(&seq_decisions, &batch_decisions, "decisions diverged");
        prop_assert_eq!(&seq_picks, &batch_picks, "pick traces diverged");
        prop_assert_eq!(seq_per_event.len(), batch_per_event.len());
        for (e, (s, b)) in seq_per_event.iter().zip(&batch_per_event).enumerate() {
            prop_assert_eq!(s.0, b.0, "decision count diverged at event {}", e);
            prop_assert_eq!(
                s.1.to_bits(), b.1.to_bits(),
                "log-prob bits diverged at event {}", e
            );
        }

        // Steady state: a second identical batch must not grow the arena
        // (zero allocations once warm).
        let cap_before = batch_scratch.arena_capacity();
        let mut rng_batch2 = StdRng::seed_from_u64(rng_seed);
        let rng2 = (mode == DecisionMode::Sample).then_some(&mut rng_batch2);
        model.decide_infer_batch(
            &snap_refs, mode, rng2, budget, &mut batch_scratch,
            &mut batch_decisions, &mut batch_picks, &mut batch_per_event,
        );
        prop_assert_eq!(cap_before, batch_scratch.arena_capacity(), "arena grew on warm call");
    }
}
