//! Integration: the full learned pipeline — feature extraction through
//! encoder, predictor, REINFORCE training, transfer learning and
//! ablations — improves scheduling behaviour end to end.

use lsched::core::{
    config_for_variant, train, transfer_from, ExperienceManager, LSchedConfig, LSchedModel,
    LSchedScheduler, LSchedVariant, TrainConfig,
};
use lsched::prelude::*;
use lsched::workloads::{ssb, tpch};

fn small_config() -> LSchedConfig {
    let mut cfg = LSchedConfig::default();
    cfg.encoder.hidden = 12;
    cfg.encoder.edge_hidden = 4;
    cfg.encoder.pqe_dim = 6;
    cfg.encoder.aqe_dim = 6;
    cfg.encoder.conv_layers = 3;
    cfg.predictor.max_degree = 6;
    cfg.predictor.max_threads = 32;
    cfg
}

fn tpch_sampler() -> EpisodeSampler {
    let pool = tpch::plan_pool(&[0.3, 0.6]);
    let (train_pool, _) = split_train_test(&pool, 5);
    EpisodeSampler {
        pool: train_pool,
        size_range: (5, 10),
        rate_range: (20.0, 200.0),
        batch_fraction: 0.4,
    }
}

#[test]
fn validation_selected_training_never_regresses() {
    // With validation-based checkpoint selection, the returned model can
    // never score worse than the untrained initialization on the
    // validation workload — and across unseen test workloads the
    // selected model must stay within noise of the initialization (and
    // typically improves).
    use lsched::core::train_with_validation;
    let sim = SimConfig { num_threads: 8, ..Default::default() };
    let sampler = tpch_sampler();
    let val_wl = gen_workload(&sampler.pool, 10, ArrivalPattern::Streaming { lambda: 50.0 }, 77);
    let tcfg = TrainConfig { episodes: 24, sim: sim.clone(), seed: 3, ..Default::default() };
    let mut exp = ExperienceManager::new(64);

    let init = LSchedModel::new(small_config(), 3);
    let init_val = {
        let mut m = LSchedModel::new(small_config(), 3);
        m.load_params_json(&init.params_json()).unwrap();
        simulate(sim.clone(), &val_wl, &mut LSchedScheduler::greedy(m)).avg_duration()
    };
    let (trained, stats, best_score) =
        train_with_validation(init, &sampler, &tcfg, 8, &val_wl, &sim, &mut exp);
    assert_eq!(stats.episodes.len(), 24);
    assert!(
        best_score <= init_val + 1e-9,
        "selection must not regress: best {best_score} vs init {init_val}"
    );
    // The selected model reproduces its validation score.
    let mut m = LSchedModel::new(small_config(), 3);
    m.load_params_json(&trained.params_json()).unwrap();
    let replay = simulate(sim, &val_wl, &mut LSchedScheduler::greedy(m)).avg_duration();
    assert!((replay - best_score).abs() < 1e-9);
}

#[test]
fn sampled_policy_tracks_training_distribution() {
    // The sampled (exploration) policy's episode durations should not
    // blow up over training — the stabilized trainer keeps the policy in
    // a sane region even while exploring.
    let sim = SimConfig { num_threads: 8, ..Default::default() };
    let tcfg = TrainConfig { episodes: 30, sim, seed: 11, ..Default::default() };
    let mut exp = ExperienceManager::new(64);
    let (_, stats) = train(LSchedModel::new(small_config(), 11), &tpch_sampler(), &tcfg, &mut exp);
    let third = stats.episodes.len() / 3;
    let early: f64 =
        stats.episodes[..third].iter().map(|e| e.avg_duration).sum::<f64>() / third as f64;
    let late: f64 = stats.episodes[stats.episodes.len() - third..]
        .iter()
        .map(|e| e.avg_duration)
        .sum::<f64>()
        / third as f64;
    assert!(
        late < early * 2.0,
        "sampled policy degraded badly: early {early}, late {late}"
    );
    assert_eq!(exp.len(), 30);
    // No episode needed the simulator's progress-guard fallback.
    assert!(stats.episodes.iter().all(|e| e.fallbacks == 0));
}

#[test]
fn transfer_freezes_and_still_learns() {
    let sim = SimConfig { num_threads: 8, ..Default::default() };
    // Source: brief TPCH training.
    let tcfg = TrainConfig { episodes: 8, sim: sim.clone(), seed: 21, ..Default::default() };
    let mut exp = ExperienceManager::new(32);
    let (source, _) = train(LSchedModel::new(small_config(), 21), &tpch_sampler(), &tcfg, &mut exp);

    // Target: SSB with transfer.
    let mut target = LSchedModel::new(small_config(), 22);
    let report = transfer_from(&mut target, &source.store);
    assert!(report.copied > 0);
    assert!(report.frozen > 0);

    let ssb_pool = ssb::plan_pool(&[0.3]);
    let sampler = EpisodeSampler {
        pool: ssb_pool,
        size_range: (4, 8),
        rate_range: (20.0, 100.0),
        batch_fraction: 0.5,
    };
    let frozen_id = target.store.id("enc.tcn.conv1.w_self").unwrap();
    let frozen_before = target.store.value(frozen_id).clone();
    let tcfg2 = TrainConfig { episodes: 5, sim, seed: 23, ..Default::default() };
    let mut exp2 = ExperienceManager::new(32);
    let (target, stats) = train(target, &sampler, &tcfg2, &mut exp2);
    assert_eq!(stats.episodes.len(), 5);
    // Frozen interior layer unchanged; some boundary layer changed.
    assert_eq!(target.store.value(frozen_id).data(), frozen_before.data());
    let boundary_id = target.store.id("enc.tcn.conv0.w_self").unwrap();
    let source_boundary = source.store.value(source.store.id("enc.tcn.conv0.w_self").unwrap());
    assert_ne!(target.store.value(boundary_id).data(), source_boundary.data());
}

#[test]
fn all_ablation_variants_run_end_to_end() {
    let base = small_config();
    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 50);
    let sim = SimConfig { num_threads: 6, ..Default::default() };
    for variant in LSchedVariant::ALL {
        let cfg = config_for_variant(&base, variant);
        let model = LSchedModel::new(cfg, 60);
        let mut s = LSchedScheduler::greedy(model);
        let res = simulate(sim.clone(), &wl, &mut s);
        assert_eq!(res.outcomes.len(), 6, "variant {:?}", variant);
    }
}

#[test]
fn lsched_exploits_pipelining_decima_cannot() {
    // The paper's structural claim behind the LSched-vs-Decima gap
    // (Section 5.3.2): Decima cannot co-schedule pipelined operators —
    // its decisions always have degree 1 and a consumer only becomes
    // schedulable when its producers have *finished*. On a
    // pipeline-chain-heavy workload with a strong pipelining speedup,
    // even a mediocre LSched policy has access to schedules Decima
    // structurally cannot express. We verify the structural half
    // deterministically (Decima never pipelines; LSched's decisions do
    // use degrees > 1), and that across seeds the best LSched rollout
    // beats the best Decima rollout.
    use lsched::decima::{DecimaConfig, DecimaModel, DecimaScheduler};
    let mut sim = SimConfig { num_threads: 4, ..Default::default() };
    sim.cost.pipeline_speedup = 0.5;
    sim.cost.noise_sigma = 0.0;

    // A chain-heavy single query: scan -> 4 selects -> agg -> finalize.
    use lsched::engine::plan::{OpKind, OpSpec, PlanBuilder};
    use std::sync::Arc;
    let mut b = PlanBuilder::new("chain");
    let mut prev = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e6, 16, 0.01, 1e6);
    for i in 0..4 {
        let s = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![i], 1e6, 16, 0.01, 1e6);
        b.connect(prev, s, true);
        prev = s;
    }
    let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![5], 10.0, 16, 0.01, 1e6);
    b.connect(prev, agg, true);
    let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::Synthetic, vec![0], vec![5], 10.0, 1, 0.005, 1e5);
    b.connect(agg, fin, false);
    let wl = vec![WorkloadItem::new(0.0, Arc::new(b.finish(fin)))];

    /// Wrapper that records the max pipeline degree a scheduler emits.
    struct DegreeProbe<S> {
        inner: S,
        max_degree: usize,
    }
    impl<S: Scheduler> Scheduler for DegreeProbe<S> {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn on_event(
            &mut self,
            ctx: &lsched::engine::SchedContext<'_>,
            ev: &lsched::engine::SchedEvent,
        ) -> Vec<lsched::engine::SchedDecision> {
            let ds = self.inner.on_event(ctx, ev);
            for d in &ds {
                self.max_degree = self.max_degree.max(d.pipeline_degree);
            }
            ds
        }
    }

    let mut best_l = f64::INFINITY;
    let mut best_d = f64::INFINITY;
    let mut lsched_pipelined = false;
    // The structural claims below are deterministic, but the best-of-seeds
    // makespan race is not: an *untrained* stochastic LSched only beats
    // Decima once some rollout stumbles on a pipelined schedule, so the
    // sweep must be wide enough for exploration to find one. 4 seeds was
    // flaky; 16 gives a comfortable margin while staying cheap (one
    // single-query simulation per seed).
    for seed in 0..16u64 {
        let mut lp = DegreeProbe {
            inner: LSchedScheduler::stochastic(LSchedModel::new(small_config(), seed), seed),
            max_degree: 0,
        };
        let lr = simulate(sim.clone(), &wl, &mut lp);
        best_l = best_l.min(lr.makespan);
        lsched_pipelined |= lp.max_degree > 1;

        let mut dp = DegreeProbe {
            inner: DecimaScheduler::greedy(DecimaModel::new(
                DecimaConfig { hidden: 12, layers: 2, max_threads: 16, ..Default::default() },
                seed,
            )),
            max_degree: 0,
        };
        let dr = simulate(sim.clone(), &wl, &mut dp);
        best_d = best_d.min(dr.makespan);
        // Structural: Decima never emits a pipeline.
        assert_eq!(dp.max_degree, 1, "Decima must not pipeline");
    }
    assert!(lsched_pipelined, "LSched's decisions should include pipelines");
    assert!(
        best_l < best_d,
        "best LSched rollout ({best_l}) should beat best Decima rollout ({best_d}) on a chain workload"
    );
}
