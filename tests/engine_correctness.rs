//! Integration: the real threaded engine computes correct relational
//! answers for executable TPC-H queries, independent of scheduling
//! policy and thread count.

use std::sync::Arc;

use lsched::engine::block::Column;
use lsched::engine::cost::CostModel;
use lsched::engine::executor::Executor;
use lsched::engine::Value;
use lsched::prelude::*;
use lsched::workloads::tpch;

/// Brute-force reference for Q6: sum(extendedprice * discount) over the
/// filtered lineitem rows.
fn q6_reference(cat: &lsched::engine::Catalog) -> f64 {
    let li = cat.table_by_name("lineitem").unwrap();
    let mut total = 0.0;
    for b in &li.blocks {
        let (q, ep, d, sd) = match (&b.columns[1], &b.columns[2], &b.columns[3], &b.columns[4]) {
            (Column::F64(q), Column::F64(ep), Column::F64(d), Column::I64(sd)) => (q, ep, d, sd),
            _ => panic!("unexpected lineitem schema"),
        };
        for i in 0..b.num_rows() {
            if sd[i] >= 365 && sd[i] < 730 && d[i] >= 0.05 && d[i] <= 0.07 && q[i] < 24.0 {
                total += ep[i] * d[i];
            }
        }
    }
    total
}

/// Brute-force reference for Q1's group count: filtered rows per
/// (returnflag, linestatus) group.
fn q1_reference_counts(cat: &lsched::engine::Catalog) -> std::collections::HashMap<(i64, i64), i64> {
    let li = cat.table_by_name("lineitem").unwrap();
    let mut out = std::collections::HashMap::new();
    for b in &li.blocks {
        let (sd, rf, ls) = match (&b.columns[4], &b.columns[5], &b.columns[6]) {
            (Column::I64(sd), Column::I64(rf), Column::I64(ls)) => (sd, rf, ls),
            _ => panic!("unexpected lineitem schema"),
        };
        for i in 0..b.num_rows() {
            if sd[i] <= 2400 {
                *out.entry((rf[i], ls[i])).or_insert(0) += 1;
            }
        }
    }
    out
}

#[test]
fn q6_matches_brute_force() {
    let cat = Arc::new(tpch::gen_catalog(0.002, 5));
    let cost = CostModel::default_model();
    let plan = tpch::q6_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 3);
    let (_, rows) = exec.run_single(plan);
    assert_eq!(rows.len(), 1);
    let got = rows[0][0].as_f64().unwrap();
    let want = q6_reference(&cat);
    assert!(
        (got - want).abs() < 1e-6 * want.abs().max(1.0),
        "q6: got {got}, want {want}"
    );
}

#[test]
fn q1_group_counts_match_brute_force() {
    let cat = Arc::new(tpch::gen_catalog(0.002, 6));
    let cost = CostModel::default_model();
    let plan = tpch::q1_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 4);
    let (_, rows) = exec.run_single(plan);
    let want = q1_reference_counts(&cat);
    assert_eq!(rows.len(), want.len(), "group count mismatch");
    for row in rows {
        let rf = row[0].as_i64().unwrap();
        let ls = row[1].as_i64().unwrap();
        let count = row[5].as_i64().unwrap();
        assert_eq!(count, want[&(rf, ls)], "count for group ({rf},{ls})");
    }
}

#[test]
fn q3_top10_is_sorted_and_bounded() {
    let cat = Arc::new(tpch::gen_catalog(0.002, 7));
    let cost = CostModel::default_model();
    let plan = tpch::q3_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 4);
    let (_, rows) = exec.run_single(plan);
    assert!(rows.len() <= 10);
    assert!(!rows.is_empty());
    // Sorted descending by revenue (column 3).
    for w in rows.windows(2) {
        let a = w[0][3].as_f64().unwrap();
        let b = w[1][3].as_f64().unwrap();
        assert!(a >= b, "top-k must be sorted: {a} then {b}");
    }
}

#[test]
fn answers_invariant_to_scheduler_and_threads() {
    let cat = Arc::new(tpch::gen_catalog(0.002, 8));
    let cost = CostModel::default_model();

    let reference = {
        let exec = Executor::new(Arc::clone(&cat), 1);
        let (_, rows) = exec.run_single(tpch::q6_executable(&cat, &cost));
        rows[0][0].as_f64().unwrap()
    };

    for threads in [2usize, 4, 6] {
        let exec = Executor::new(Arc::clone(&cat), threads);
        let (_, rows) = exec.run_single(tpch::q6_executable(&cat, &cost));
        let got = rows[0][0].as_f64().unwrap();
        assert!(
            (got - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "threads={threads}: {got} vs {reference}"
        );
    }
}

#[test]
fn real_engine_batch_under_multiple_policies() {
    let cat = Arc::new(tpch::gen_catalog(0.001, 9));
    let cost = CostModel::default_model();
    let plans = [
        tpch::q1_executable(&cat, &cost),
        tpch::q6_executable(&cat, &cost),
        tpch::q3_executable(&cat, &cost),
    ];
    let wl: Vec<WorkloadItem> = plans
        .iter()
        .map(|p| WorkloadItem::new(0.0, Arc::clone(p)))
        .collect();
    let exec = Executor::new(Arc::clone(&cat), 4);
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FairScheduler::default()),
        Box::new(FifoScheduler),
        Box::new(SjfScheduler),
        Box::new(CriticalPathScheduler),
    ];
    for s in schedulers.iter_mut() {
        let res = exec.run(&wl, s.as_mut());
        assert_eq!(res.outcomes.len(), 3, "{} lost queries", s.name());
        assert!(res.total_work_orders > 0);
    }
}

#[test]
fn join_row_count_matches_key_distribution() {
    // Every lineitem row joins exactly one order which joins exactly one
    // customer — the probe cascade in q3 (without filters) would yield
    // |lineitem| rows. With filters the count must be <= |lineitem|.
    let cat = Arc::new(tpch::gen_catalog(0.001, 10));
    let cost = CostModel::default_model();
    let plan = tpch::q3_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 2);
    let (res, rows) = exec.run_single(plan);
    assert!(res.aborted.is_empty(), "fault-free run must not abort queries");
    assert!(rows.len() <= 10);
    let _ = rows
        .iter()
        .map(|r| {
            assert_eq!(r.len(), 4);
            r[3].as_f64().unwrap()
        })
        .collect::<Vec<_>>();
    // Revenue values must be positive (joined rows with real prices).
    assert!(rows.iter().all(|r| r[3].as_f64().unwrap() > 0.0));
    let _ = Value::Int64(0);
}

#[test]
fn q12_grouped_counts_match_brute_force() {
    use lsched::engine::block::Column as Col;
    let cat = Arc::new(tpch::gen_catalog(0.002, 21));
    let cost = CostModel::default_model();
    let plan = tpch::q12_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 4);
    let (_, rows) = exec.run_single(plan);

    // Reference: count filtered lineitem rows per o_shippriority.
    let orders = cat.table_by_name("orders").unwrap();
    let mut prio_of = std::collections::HashMap::new();
    for b in &orders.blocks {
        if let (Col::I64(keys), Col::I64(prio)) = (&b.columns[0], &b.columns[3]) {
            for (k, p) in keys.iter().zip(prio) {
                prio_of.insert(*k, *p);
            }
        }
    }
    let li = cat.table_by_name("lineitem").unwrap();
    let mut want: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    for b in &li.blocks {
        if let (Col::I64(ok), Col::I64(sd)) = (&b.columns[0], &b.columns[4]) {
            for (k, d) in ok.iter().zip(sd) {
                if *d >= 365 && *d < 876 {
                    *want.entry(prio_of[k]).or_insert(0) += 1;
                }
            }
        }
    }
    assert_eq!(rows.len(), want.len());
    for row in rows {
        let class = row[0].as_i64().unwrap();
        let count = row[1].as_i64().unwrap();
        assert_eq!(count, want[&class], "class {class}");
    }
}
