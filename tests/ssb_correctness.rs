//! Integration: the real engine executes SSB Q1.1 — including the
//! zone-map IndexScan on the date dimension — and matches a brute-force
//! reference.

use std::sync::Arc;

use lsched::engine::block::Column;
use lsched::engine::cost::CostModel;
use lsched::engine::executor::Executor;
use lsched::prelude::*;
use lsched::workloads::ssb;

fn q1_1_reference(cat: &lsched::engine::Catalog) -> f64 {
    let lo = cat.table_by_name("lineorder").unwrap();
    let mut total = 0.0;
    for b in &lo.blocks {
        let (od, q, ep, d) = match (&b.columns[0], &b.columns[1], &b.columns[2], &b.columns[3]) {
            (Column::I64(od), Column::F64(q), Column::F64(ep), Column::F64(d)) => (od, q, ep, d),
            _ => panic!("unexpected lineorder schema"),
        };
        for i in 0..b.num_rows() {
            // d_year = 1993 <=> datekey in [365, 729].
            if (365..=729).contains(&od[i])
                && d[i] >= 0.01
                && d[i] <= 0.03
                && q[i] < 25.0
            {
                total += ep[i] * d[i];
            }
        }
    }
    total
}

#[test]
fn ssb_q1_1_matches_brute_force() {
    let cat = Arc::new(ssb::gen_catalog(0.003, 23));
    let cost = CostModel::default_model();
    let plan = ssb::q1_1_executable(&cat, &cost);
    let exec = Executor::new(Arc::clone(&cat), 3);
    let (res, rows) = exec.run_single(plan);
    assert!(res.aborted.is_empty(), "fault-free run must not abort queries");
    assert_eq!(rows.len(), 1, "scalar aggregate expected");
    let got = rows[0][0].as_f64().unwrap();
    let want = q1_1_reference(&cat);
    assert!(
        (got - want).abs() < 1e-6 * want.abs().max(1.0),
        "ssb q1.1: got {got}, want {want}"
    );
}

#[test]
fn ssb_q1_1_invariant_to_threads_and_policy() {
    let cat = Arc::new(ssb::gen_catalog(0.002, 29));
    let cost = CostModel::default_model();
    let reference = {
        let exec = Executor::new(Arc::clone(&cat), 1);
        let (_, rows) = exec.run_single(ssb::q1_1_executable(&cat, &cost));
        rows[0][0].as_f64().unwrap()
    };
    for threads in [2usize, 4] {
        let exec = Executor::new(Arc::clone(&cat), threads);
        let wl = vec![WorkloadItem::new(0.0, ssb::q1_1_executable(&cat, &cost))];
        for s in [
            Box::new(FairScheduler::default()) as Box<dyn Scheduler>,
            Box::new(CriticalPathScheduler),
        ]
        .iter_mut()
        {
            let res = exec.run(&wl, s.as_mut());
            assert_eq!(res.outcomes.len(), 1);
        }
        let (_, rows) = exec.run_single(ssb::q1_1_executable(&cat, &cost));
        let got = rows[0][0].as_f64().unwrap();
        assert!(
            (got - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "threads={threads}: {got} vs {reference}"
        );
    }
}
