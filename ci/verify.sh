#!/usr/bin/env bash
# CI verify job: the hard gates every change must pass before merge.
#
#   ./ci/verify.sh          # lint + perf/identity/allocation gates
#   ./ci/verify.sh --full   # additionally: full test suite + chaos/overload
#
# Each gated binary prints PASS/FAIL, writes its JSON report, and exits
# non-zero on any failed criterion; this script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gate 1/7: clippy -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== gate 2/7: build (release, count-allocs) =="
cargo build --release -p lsched-bench --features count-allocs \
    --bin sim_throughput --bin infer_latency --bin shard_scale \
    --bin train_throughput --bin chaos_serve

echo "== gate 3/7: sim_throughput --mpl 1024 =="
# Tick-batched event loop vs full-rescan reference at mpl 1024:
# >=2x aggregate events/sec, bit-identical results (fault-free and
# faulted), bursty-arrival decision-latency histogram within bounds,
# zero steady-state allocations per event.
target/release/sim_throughput --mpl 1024 --out BENCH_pr6.json

echo "== gate 4/7: shard_scale smoke (1,2 shards) =="
# Serving-layer smoke: 1-shard routed run bit-identical to the unsharded
# simulator, repeat bit-identity under the standard fault matrix, and
# the scaling-shape gate for the host class (monotone + >=0.7x/shard at
# 8 shards on multicore; flat-no-overhead on 1-CPU hosts). The full
# 1->16 sweep runs under --full.
target/release/shard_scale --shards 1,2 --mpl 128 --out BENCH_pr8.json

echo "== gate 5/7: infer_latency (incl. batched section) =="
# Reference-tape vs tape-free identity + >=3x per-decision speedup,
# plus the cross-event batched path: bit-identity (greedy + sampled)
# against the sequential loop and zero steady-state allocations per
# batched pass. The arena-tape ratio is reported informationally.
target/release/infer_latency --reps 100

echo "== gate 6/7: train_throughput smoke =="
# Fused arena-tape gradient phase vs the per-decision tape baseline:
# >=3x episodes/sec at the default TrainConfig, gradients / params /
# Adam state bit-identical to the reference-tape oracle, and zero
# steady-state allocations per gradient step. The longer sweep runs
# under --full.
target/release/train_throughput --reps 12 --out BENCH_pr9.json

echo "== gate 7/7: chaos_serve smoke (supervised shard failover) =="
# Supervised serving smoke: 2 shards with one forced crash — every query
# gets exactly one fate (none lost, none duplicated), the crashed run
# repeats bit-identically, a poisoned shard's panic stays inside the
# supervisor, and the 8-shard/1-crash failover makespan stays <=2x the
# fault-free run. The full crash/restart/slow sweep runs under --full.
target/release/chaos_serve --mpl 32 --out BENCH_pr10.json

if [[ "${1:-}" == "--full" ]]; then
    echo "== full: test suite =="
    cargo test -q --workspace
    echo "== full: chaos + overload regression gates =="
    # Overload (PR7 gates included): predictive admission must match or
    # beat the hysteresis gate on P99 at the calibrated 2x overload
    # point, hold its starvation bound across the chaos seed matrix,
    # stay bit-identical under the standard fault matrix, and degrade
    # to hysteresis (never unguarded) when the predictor head is
    # poisoned. Writes BENCH_pr7.json.
    cargo build --release -p lsched-bench --bin chaos --bin overload
    target/release/chaos
    target/release/overload --out BENCH_pr7.json
    echo "== full: shard_scale 1->16 sweep =="
    # Weak-scaling sweep at mpl 1024/shard across 1,2,4,8,16 shards with
    # both bit-identity gates; overwrites the smoke BENCH_pr8.json with
    # the full sweep.
    target/release/shard_scale --out BENCH_pr8.json
    echo "== full: train_throughput sweep =="
    # Larger episode/rep sweep of the gated gradient-phase benchmark;
    # overwrites the smoke BENCH_pr9.json.
    target/release/train_throughput --full --out BENCH_pr9.json
    echo "== full: chaos_serve crash/restart/slow sweep =="
    # Seeded shard-fault matrices (crash, crash+restart, slow, poison)
    # across 4/8/16 shards x 5 seeds, each run twice: repeat
    # bit-identity and the exactly-once partition on every run;
    # overwrites the smoke BENCH_pr10.json with the full sweep.
    target/release/chaos_serve --full --out BENCH_pr10.json
fi

echo "verify: all gates passed"
