//! Deterministic tenant → shard routing with weighted SLO classes and
//! hysteresis-gated query migration.
//!
//! The router is the serving layer's control plane: every arriving query
//! belongs to a tenant, every tenant has a home shard (a stable hash of
//! the tenant id), and queries flow to the home shard in arrival order —
//! a per-tenant FIFO. When a shard's estimated backlog or queue depth
//! crosses a hysteresis threshold the router migrates arriving work at
//! admission time: the tenant is re-homed to the least-loaded shard and
//! its *subsequent* queries follow it there (in-flight queries never
//! move, so shard-local execution state stays untouched).
//!
//! Everything here is a pure function of the arrival sequence: the load
//! model is built from optimizer estimates ([`plan_est_cost`]), the hash
//! is FNV-1a, ties break on the lowest shard id, and no RNG is ever
//! consumed — so a routed run is bit-reproducible and the simulator's
//! chaos/bit-identity property tests keep holding through the router.

use lsched_core::{plan_est_cost, route_features, ROUTE_DIM};
use lsched_engine::plan::PhysicalPlan;
use lsched_engine::sim::WorkloadItem;
use std::collections::{HashMap, VecDeque};

/// Tenant identity. Multi-tenant callers map API keys / org ids onto
/// this; single-tenant callers can use a constant.
pub type TenantId = u64;

/// A weighted SLO class, layered onto the engine's existing
/// priority/deadline machinery: the class floor-lifts the item's
/// shedding priority and tightens (never loosens) its latency budget.
/// `weight` is the serving-layer share: tenants at or above the router's
/// sticky weight keep shard affinity under pressure instead of being
/// migrated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloClass {
    /// Serving share weight (higher = more protected).
    pub weight: u32,
    /// Shedding-priority floor applied to every query of the class.
    pub priority: i32,
    /// Latency budget (seconds); `None` leaves the item's own deadline.
    pub deadline: Option<f64>,
}

impl SloClass {
    /// The neutral class: weight 1, priority floor 0, no deadline.
    /// Applying it to a default item is the identity — the precondition
    /// for the 1-shard bit-identity property.
    pub fn best_effort() -> Self {
        Self { weight: 1, priority: 0, deadline: None }
    }

    /// Standard paid tier: moderate weight, positive priority floor.
    pub fn silver() -> Self {
        Self { weight: 4, priority: 1, deadline: None }
    }

    /// Premium tier: high weight (sticky under default router config),
    /// high priority floor and a latency budget.
    pub fn gold() -> Self {
        Self { weight: 16, priority: 3, deadline: Some(30.0) }
    }

    /// Layers this class onto a workload item: priority becomes the max
    /// of the item's own and the class floor; the deadline becomes the
    /// tighter of the two budgets.
    pub fn apply(&self, mut item: WorkloadItem) -> WorkloadItem {
        item.priority = item.priority.max(self.priority);
        item.deadline = match (item.deadline, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        item
    }
}

/// One query of a tenant, as the serving layer sees it.
#[derive(Debug, Clone)]
pub struct TenantQuery {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The tenant's SLO class.
    pub class: SloClass,
    /// The underlying workload item.
    pub item: WorkloadItem,
}

/// Assigns tenants and classes to a plain workload: query `i` belongs to
/// tenant `i % tenants`, and tenant `t` gets `classes[t % classes.len()]`
/// (best-effort when `classes` is empty). Deterministic by construction.
pub fn tenantize(
    workload: &[WorkloadItem],
    tenants: u64,
    classes: &[SloClass],
) -> Vec<TenantQuery> {
    let tenants = tenants.max(1);
    workload
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let tenant = i as u64 % tenants;
            let class = if classes.is_empty() {
                SloClass::best_effort()
            } else {
                classes[(tenant % classes.len() as u64) as usize]
            };
            TenantQuery { tenant, class, item: item.clone() }
        })
        .collect()
}

/// Router tuning knobs. The pressure test is hysteretic: a shard becomes
/// pressured when its backlog exceeds `steal_ratio ×` the cross-shard
/// mean (plus `backlog_slack` seconds of absolute slack, so near-idle
/// fleets never flap) or its queue depth exceeds `max_queue_depth`, and
/// it stays pressured until the backlog falls back under `resume_ratio ×`
/// the mean — the same enter-high / exit-low shape as the admission gate.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Worker threads per shard — converts estimated work (thread-
    /// seconds) into backlog wall-seconds.
    pub threads_per_shard: usize,
    /// Pressure onset: backlog > `steal_ratio × mean + backlog_slack`.
    pub steal_ratio: f64,
    /// Pressure release: backlog ≤ `resume_ratio × mean + backlog_slack`.
    pub resume_ratio: f64,
    /// Absolute slack (seconds) under which imbalance is ignored.
    pub backlog_slack: f64,
    /// Absolute queue-depth pressure trigger.
    pub max_queue_depth: usize,
    /// Tenants whose class weight is at or above this never migrate
    /// (shard affinity for premium tenants).
    pub sticky_weight: u32,
    /// Per-shard memory budget (bytes) for the pressure feature; an
    /// infinite budget reads as zero memory pressure.
    pub mem_budget: f64,
}

impl RouterConfig {
    /// Sensible defaults for `shards` shards of `threads` workers each.
    pub fn new(shards: usize, threads: usize) -> Self {
        Self {
            shards: shards.max(1),
            threads_per_shard: threads.max(1),
            steal_ratio: 1.5,
            resume_ratio: 1.1,
            backlog_slack: 0.05,
            max_queue_depth: 4096,
            sticky_weight: 16,
            mem_budget: f64::INFINITY,
        }
    }
}

/// Counters the router reports about one routed workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterStats {
    /// Queries routed.
    pub routed: u64,
    /// Tenant re-homings triggered by shard pressure.
    pub migrations: u64,
    /// Shard transitions into the pressured state.
    pub pressured_onsets: u64,
    /// Migrations suppressed because the tenant's weight made it sticky.
    pub sticky_holds: u64,
    /// Queries placed per shard.
    pub per_shard: Vec<u64>,
}

/// FNV-1a over the tenant id's little-endian bytes: a stable, platform-
/// independent home-shard hash.
fn fnv1a(tenant: TenantId) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic routing control plane. See the module docs.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    /// Current home shard per tenant (first touch: FNV hash).
    home: HashMap<TenantId, usize>,
    /// Virtual clock per shard: the estimated time its backlog drains.
    busy_until: Vec<f64>,
    /// In-flight items per shard as `(est_finish, est_memory)`, popped
    /// as the arrival clock passes their estimated finish.
    inflight: Vec<VecDeque<(f64, f64)>>,
    /// Estimated in-flight memory per shard (sum over `inflight`).
    mem_in_flight: Vec<f64>,
    /// Hysteresis state per shard.
    pressured: Vec<bool>,
    /// Arrival clock high-water mark (arrivals must be non-decreasing).
    clock: f64,
    stats: RouterStats,
}

impl Router {
    /// Creates a router for `cfg.shards` empty shards.
    pub fn new(cfg: RouterConfig) -> Self {
        let n = cfg.shards.max(1);
        Self {
            cfg,
            home: HashMap::new(),
            busy_until: vec![0.0; n],
            inflight: (0..n).map(|_| VecDeque::new()).collect(),
            mem_in_flight: vec![0.0; n],
            pressured: vec![false; n],
            clock: 0.0,
            stats: RouterStats { per_shard: vec![0; n], ..Default::default() },
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.busy_until.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The shard-local routing feature block for shard `s` at time `t`,
    /// as seen by an arriving item of estimated cost `est_cost`
    /// (thread-seconds). Built on [`lsched_core::route_features`] so the
    /// serving layer and any future learned routing policy read the same
    /// signals.
    pub fn shard_features(&self, s: usize, t: f64, est_cost: f64) -> [f32; ROUTE_DIM] {
        route_features(
            (self.busy_until[s] - t).max(0.0),
            self.inflight[s].len() as u64,
            est_cost / self.cfg.threads_per_shard as f64,
            self.mem_in_flight[s],
            self.cfg.mem_budget,
        )
    }

    /// Estimated backlog wall-seconds of shard `s` at time `t`.
    fn backlog(&self, s: usize, t: f64) -> f64 {
        (self.busy_until[s] - t).max(0.0)
    }

    /// Advances the virtual clock to `t`: retires in-flight estimates
    /// whose projected finish has passed.
    fn advance(&mut self, t: f64) {
        self.clock = self.clock.max(t);
        for s in 0..self.shards() {
            while let Some(&(finish, mem)) = self.inflight[s].front() {
                if finish <= self.clock {
                    self.inflight[s].pop_front();
                    self.mem_in_flight[s] = (self.mem_in_flight[s] - mem).max(0.0);
                } else {
                    break;
                }
            }
        }
    }

    /// Re-evaluates the hysteresis pressure state of every shard.
    fn refresh_pressure(&mut self, t: f64) {
        let n = self.shards();
        if n < 2 {
            return; // a single shard has nowhere to shed to
        }
        let mean = (0..n).map(|s| self.backlog(s, t)).sum::<f64>() / n as f64;
        for s in 0..n {
            let b = self.backlog(s, t);
            let deep = self.inflight[s].len() > self.cfg.max_queue_depth;
            if !self.pressured[s] {
                if deep || b > self.cfg.steal_ratio * mean + self.cfg.backlog_slack {
                    self.pressured[s] = true;
                    self.stats.pressured_onsets += 1;
                }
            } else if !deep && b <= self.cfg.resume_ratio * mean + self.cfg.backlog_slack {
                self.pressured[s] = false;
            }
        }
    }

    /// Routes one query: returns the shard it should execute on and
    /// charges the shard's load model. Arrivals must come in
    /// non-decreasing `t` order (the workload's arrival order).
    pub fn route(&mut self, t: f64, tenant: TenantId, class: &SloClass, plan: &PhysicalPlan) -> usize {
        let n = self.shards();
        self.advance(t);
        let t = self.clock;
        self.refresh_pressure(t);

        let mut shard = *self
            .home
            .entry(tenant)
            .or_insert_with(|| (fnv1a(tenant) % n as u64) as usize);

        let est_cost = plan_est_cost(plan);
        if n > 1 && self.pressured[shard] {
            if class.weight >= self.cfg.sticky_weight {
                self.stats.sticky_holds += 1;
            } else {
                // Migrate the tenant to the shard with the smallest
                // projected backlog after placing this item there
                // (feature 4 of the routing block); ties break on the
                // lowest shard id, so the choice is total-order
                // deterministic.
                let mut best = shard;
                let mut best_key = self.shard_features(shard, t, est_cost)[4];
                for s in 0..n {
                    let key = self.shard_features(s, t, est_cost)[4];
                    if key < best_key {
                        best = s;
                        best_key = key;
                    }
                }
                if best != shard {
                    shard = best;
                    self.home.insert(tenant, shard);
                    self.stats.migrations += 1;
                }
            }
        }

        let wall = est_cost / self.cfg.threads_per_shard as f64;
        let mem: f64 =
            plan.ops.iter().map(|o| f64::from(o.num_work_orders) * o.est_wo_memory).sum();
        self.busy_until[shard] = self.busy_until[shard].max(t) + wall;
        self.inflight[shard].push_back((self.busy_until[shard], mem));
        self.mem_in_flight[shard] += mem;
        self.stats.routed += 1;
        self.stats.per_shard[shard] += 1;
        shard
    }
}

/// One orphaned query awaiting failover placement: the routing-visible
/// facts of a query whose shard died before finishing it.
#[derive(Debug, Clone)]
pub struct FailoverQuery {
    /// Original (global) workload index.
    pub global: usize,
    /// Owning tenant — failover keeps per-tenant FIFO within the order.
    pub tenant: TenantId,
    /// SLO-class weight (gold fails over first).
    pub class_weight: u32,
    /// Original arrival time.
    pub arrival: f64,
    /// Optimizer cost estimate ([`plan_est_cost`], thread-seconds).
    pub est_cost: f64,
    /// Virtual time the owning shard crashed.
    pub crash_time: f64,
}

/// Sorts orphans into the deterministic failover order: heaviest SLO
/// class first (gold before silver before best-effort), then original
/// arrival, then global index. Same-tenant queries share a class, so the
/// order is a per-tenant FIFO — re-routing never reorders a tenant.
pub fn failover_order(orphans: &mut [FailoverQuery]) {
    orphans.sort_by(|a, b| {
        b.class_weight
            .cmp(&a.class_weight)
            .then(a.arrival.total_cmp(&b.arrival))
            .then(a.global.cmp(&b.global))
    });
}

/// Assigns each orphan (already in [`failover_order`]) to the eligible
/// shard minimizing the projected backlog after placement — feature 4 of
/// the routing block, the same zero-RNG argmin rule pressure migration
/// uses; ties break on the lowest shard id. `eligible` lists surviving
/// shard ids in ascending order and `busy_until` (parallel to it) their
/// absolute virtual availability; each placement charges the chosen
/// shard's clock so one hot survivor does not absorb every orphan.
/// Returns the chosen shard id per orphan.
pub fn assign_failover(
    cfg: &RouterConfig,
    eligible: &[usize],
    busy_until: &mut [f64],
    orphans: &[FailoverQuery],
) -> Vec<usize> {
    debug_assert_eq!(eligible.len(), busy_until.len());
    if eligible.is_empty() {
        // No survivors: nothing to assign. The caller must treat the
        // orphans as abandoned (they still count in the partition).
        return Vec::new();
    }
    let mut out = Vec::with_capacity(orphans.len());
    for o in orphans {
        let base = busy_until.iter().copied().fold(f64::INFINITY, f64::min).min(o.crash_time);
        let wall = o.est_cost / cfg.threads_per_shard as f64;
        let mut best = 0usize;
        let mut best_key = f32::INFINITY;
        for (i, &busy) in busy_until.iter().enumerate() {
            let key = route_features((busy - base).max(0.0), 0, wall, 0.0, cfg.mem_budget)[4];
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        // Mirror `Router::route`: the replay cannot start before the
        // orphan exists (its arrival) or before its shard slot is free.
        busy_until[best] = busy_until[best].max(o.arrival).max(o.crash_time) + wall;
        out.push(eligible[best]);
    }
    out
}

/// Routes a whole tenant workload: returns the per-shard sub-workloads
/// (class-decorated, original arrival order preserved within each
/// shard), the original workload index of each sub-workload item
/// (aligned, so shard-local query ids map back to the global workload),
/// and the router counters.
pub fn route_workload(
    cfg: &RouterConfig,
    queries: &[TenantQuery],
) -> (Vec<Vec<WorkloadItem>>, Vec<Vec<usize>>, RouterStats) {
    let mut router = Router::new(cfg.clone());
    let n = router.shards();
    let mut shards: Vec<Vec<WorkloadItem>> = vec![Vec::new(); n];
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, q) in queries.iter().enumerate() {
        let s = router.route(q.item.arrival_time, q.tenant, &q.class, &q.item.plan);
        shards[s].push(q.class.apply(q.item.clone()));
        assigned[s].push(i);
    }
    (shards, assigned, router.stats.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use std::sync::Arc;

    fn plan(wos: u32) -> Arc<PhysicalPlan> {
        let mut b = PlanBuilder::new("r");
        let scan =
            b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e4, wos, 0.01, 1e4);
        let agg =
            b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 5e3, 1, 0.01, 1e4);
        b.connect(scan, agg, false);
        Arc::new(b.finish(agg))
    }

    #[test]
    fn single_shard_routes_everything_to_zero_in_order() {
        let wl: Vec<WorkloadItem> =
            (0..10).map(|i| WorkloadItem::new(i as f64 * 0.1, plan(4))).collect();
        let qs = tenantize(&wl, 3, &[]);
        let (shards, assigned, stats) = route_workload(&RouterConfig::new(1, 4), &qs);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 10);
        assert_eq!(assigned[0], (0..10).collect::<Vec<_>>());
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.per_shard, vec![10]);
        // Neutral classes leave the items untouched.
        for (orig, routed) in wl.iter().zip(&shards[0]) {
            assert_eq!(orig.priority, routed.priority);
            assert_eq!(orig.deadline, routed.deadline);
            assert_eq!(orig.arrival_time.to_bits(), routed.arrival_time.to_bits());
        }
    }

    #[test]
    fn routing_is_deterministic_across_repeats() {
        let wl: Vec<WorkloadItem> =
            (0..64).map(|i| WorkloadItem::new(i as f64 * 0.01, plan(1 + (i % 7) as u32))).collect();
        let qs = tenantize(&wl, 9, &[SloClass::best_effort(), SloClass::silver()]);
        let cfg = RouterConfig::new(4, 4);
        let a = route_workload(&cfg, &qs);
        let b = route_workload(&cfg, &qs);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn per_tenant_fifo_holds_within_each_shard() {
        let wl: Vec<WorkloadItem> =
            (0..100).map(|i| WorkloadItem::new(i as f64 * 0.005, plan(1 + (i % 5) as u32))).collect();
        let qs = tenantize(&wl, 7, &[]);
        let (_, assigned, _) = route_workload(&RouterConfig::new(4, 4), &qs);
        // Within every shard, each tenant's global indices appear in
        // strictly increasing (arrival) order.
        for shard in &assigned {
            let mut last: HashMap<TenantId, usize> = HashMap::new();
            for &gi in shard {
                let tenant = qs[gi].tenant;
                if let Some(&prev) = last.get(&tenant) {
                    assert!(gi > prev, "tenant {tenant} reordered: {prev} then {gi}");
                }
                last.insert(tenant, gi);
            }
        }
    }

    #[test]
    fn pressure_triggers_migration_but_sticky_tenants_hold() {
        // One heavy tenant hammers its home shard with expensive plans;
        // a light tenant homed to the same shard should migrate away,
        // while a gold tenant (weight ≥ sticky) stays.
        let heavy = plan(400);
        let light = plan(1);
        let mut cfg = RouterConfig::new(2, 2);
        cfg.backlog_slack = 0.0;
        let mut router = Router::new(cfg.clone());
        // Find two tenants homed to the same shard.
        let t0 = 0u64;
        let home0 = (fnv1a(t0) % 2) as usize;
        let t1 = (1..100).find(|&t| (fnv1a(t) % 2) as usize == home0).unwrap();
        // The heavy tenant is gold (sticky), so its backlog stays pinned
        // to the home shard instead of being rebalanced away.
        let neutral = SloClass::best_effort();
        let gold = SloClass::gold();
        for k in 0..50 {
            router.route(k as f64 * 1e-3, t0, &gold, &heavy);
        }
        let before = router.stats().migrations;
        let s_light = router.route(0.06, t1, &neutral, &light);
        assert_ne!(s_light, home0, "light tenant should flee the pressured shard");
        assert_eq!(router.stats().migrations, before + 1);

        // Same setup, gold arrival: held sticky.
        let mut router2 = Router::new(cfg);
        for k in 0..50 {
            router2.route(k as f64 * 1e-3, t0, &gold, &heavy);
        }
        let holds_before = router2.stats().sticky_holds;
        let s_gold = router2.route(0.06, t1, &SloClass::gold(), &light);
        assert_eq!(s_gold, home0, "gold tenant keeps shard affinity");
        assert_eq!(router2.stats().sticky_holds, holds_before + 1);
        assert_eq!(router2.stats().migrations, 0);
        assert!(router2.stats().pressured_onsets >= 1);
    }

    #[test]
    fn slo_class_layers_priority_and_deadline() {
        let item = WorkloadItem::new(0.0, plan(2)).with_priority(2).with_deadline(10.0);
        let out = SloClass::gold().apply(item);
        assert_eq!(out.priority, 3); // floor lifts 2 → 3
        assert_eq!(out.deadline, Some(10.0)); // tighter own budget kept
        let out2 = SloClass::gold().apply(WorkloadItem::new(0.0, plan(2)).with_priority(5));
        assert_eq!(out2.priority, 5); // higher own priority kept
        assert_eq!(out2.deadline, Some(30.0)); // class budget applied
    }
}
