//! The N-shard serving data plane: route a tenant workload across
//! independent simulator shards, run every shard on its own worker
//! thread, and merge the per-shard results into one [`ServeResult`]
//! with statistically honest aggregates (latency percentiles from the
//! pooled raw samples, counter sums, starvation maxima).
//!
//! Determinism: the router consumes no RNG ([`crate::router`]), each
//! shard's simulator seed is a pure function of the base seed and the
//! shard index, and the rayon shim collects shard results in input
//! order — so a served run is bit-reproducible end to end, and a
//! 1-shard served run is bit-identical to the unsharded simulator
//! (shard 0 keeps the base seed and the untouched workload).

use crate::router::{route_workload, RouterConfig, RouterStats, TenantQuery};
use crate::supervisor::{FailoverSummary, ShardHealth};
use lsched_engine::fault::FaultSummary;
use lsched_engine::sim::{
    try_simulate, LatencyStats, ResilienceSummary, SimConfig, SimError, SimResult,
};
use lsched_engine::Scheduler;
use lsched_sched::{AdmissionStats, GuardState, GuardStats, GuardedScheduler};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Per-shard seed stride: shard `i` simulates with seed
/// `base + i × SHARD_SEED_STRIDE` (wrapping). Shard 0 keeps the base
/// seed, which is what makes the 1-shard serve bit-identical to the
/// unsharded path; the large odd stride decorrelates sibling shards'
/// duration-noise streams.
pub const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Serving-layer configuration: the routing control plane plus the
/// per-shard simulator template. `sim.seed` is the base seed;
/// `sim.num_threads` is the per-shard pool size (it should match
/// `router.threads_per_shard`, which [`ServeConfig::new`] guarantees).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Router tuning (shard count, hysteresis thresholds, stickiness).
    pub router: RouterConfig,
    /// Per-shard simulator template. A configured fault plan is re-seeded
    /// per shard with the same stride as the duration stream.
    pub sim: SimConfig,
}

impl ServeConfig {
    /// A serving config for `shards` shards built around a simulator
    /// template, with the router's thread estimate kept in sync.
    pub fn new(shards: usize, sim: SimConfig) -> Self {
        Self { router: RouterConfig::new(shards, sim.num_threads), sim }
    }
}

/// One shard's slice of a served run.
#[derive(Debug)]
pub struct ShardRun {
    /// Shard index.
    pub shard: usize,
    /// Failover epoch this run belongs to: 0 is the initial routed run,
    /// `k ≥ 1` the `k`-th replay round of orphaned queries. Plain
    /// (unsupervised) serving only ever produces epoch 0.
    pub epoch: u32,
    /// Original workload index of each shard-local query (aligned with
    /// the shard's arrival order, so local `qid` → global index).
    pub assigned: Vec<usize>,
    /// The shard's simulation result. A crash-truncated run has
    /// `result.crashed_at` set and its orphans in `result.unfinished`.
    pub result: SimResult,
    /// Admission counters harvested from the shard's scheduler, when it
    /// exposes them (see [`AdmissionReport`]).
    pub admission: Option<AdmissionStats>,
    /// Circuit-breaker counters harvested from the shard's scheduler,
    /// when it exposes them (see [`HealthReport`]).
    pub guard: Option<GuardStats>,
}

impl ShardRun {
    /// Global workload indices this run gave a final fate (completed or
    /// terminally aborted): its assignment minus the crash orphans.
    pub fn finalized(&self) -> Vec<usize> {
        if self.result.unfinished.is_empty() {
            return self.assigned.clone();
        }
        let mut orphaned = vec![false; self.assigned.len()];
        for &li in &self.result.unfinished {
            if li < orphaned.len() {
                orphaned[li] = true;
            }
        }
        self.assigned
            .iter()
            .enumerate()
            .filter(|&(li, _)| !orphaned[li])
            .map(|(_, &g)| g)
            .collect()
    }
}

/// Aggregate of a served run: per-shard slices plus cross-shard merges.
#[derive(Debug)]
pub struct ServeResult {
    /// Per-shard runs, indexed by shard.
    pub shards: Vec<ShardRun>,
    /// Router counters.
    pub router: RouterStats,
    /// Serving makespan: the slowest shard's makespan (shards run
    /// concurrently on independent pools).
    pub makespan: f64,
    /// Total simulator events across shards — the numerator of the
    /// aggregate events/sec scaling metric.
    pub events_processed: u64,
    /// Completed queries across shards.
    pub completed: u64,
    /// Aborted queries across shards.
    pub aborted: u64,
    /// Latency statistics over the pooled per-shard samples (merged via
    /// [`LatencyStats::merge`], never averaged percentiles).
    pub latency: LatencyStats,
    /// Summed/maxed overload counters.
    pub resilience: ResilienceSummary,
    /// Summed fault counters.
    pub faults: FaultSummary,
    /// Summed admission counters (zero when no shard exposes a gate).
    pub admission: AdmissionStats,
    /// Summed circuit-breaker counters (zero when no shard exposes a
    /// guard — see [`HealthReport`]).
    pub guard: GuardStats,
    /// Crash/restart/failover accounting (all zero for unsupervised or
    /// fault-free runs).
    pub failover: FailoverSummary,
    /// Final supervisor verdict per shard (all `Healthy` for
    /// unsupervised runs).
    pub health: Vec<ShardHealth>,
    /// Global indices of queries orphaned with no eligible survivor
    /// left (or past the epoch cap) — still part of the exact
    /// partition, explicitly accounted instead of silently dropped.
    /// Sorted ascending; always empty for unsupervised runs.
    pub abandoned: Vec<usize>,
}

/// Why a served run could not produce a result.
#[derive(Debug)]
pub enum ServeError {
    /// A shard's simulator failed structurally (event cap, deadlock,
    /// invariant violation).
    Shard {
        /// The failing shard.
        shard: usize,
        /// The underlying simulator error.
        error: SimError,
    },
    /// `router.threads_per_shard` disagrees with `sim.num_threads`: the
    /// router's backlog model would silently diverge from the pools it
    /// models. [`ServeConfig::new`] keeps them in sync; hand-built
    /// configs are validated instead of trusted.
    ConfigMismatch {
        /// The router's per-shard thread estimate.
        router_threads: usize,
        /// The simulator template's pool size.
        sim_threads: usize,
    },
    /// The worker-per-shard pool could not be built.
    PoolBuild {
        /// The pool builder's error description.
        reason: String,
    },
    /// Exactly-once accounting failed: a query's fate count across
    /// survivor outcomes, replays and abandonment is not exactly one.
    /// This is a supervisor invariant violation, surfaced as an error
    /// instead of a silently wrong merge.
    PartitionViolation {
        /// The global workload index at fault.
        query: usize,
        /// How many final fates it received.
        count: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shard { shard, error } => write!(f, "shard {shard} failed: {error}"),
            ServeError::ConfigMismatch { router_threads, sim_threads } => write!(
                f,
                "router models {router_threads} threads/shard but the simulator template runs \
                 {sim_threads}: backlog estimates would silently diverge"
            ),
            ServeError::PoolBuild { reason } => {
                write!(f, "shard worker pool could not be built: {reason}")
            }
            ServeError::PartitionViolation { query, count } => write!(
                f,
                "query {query} received {count} final fates across shards (exactly 1 required)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// Harvesting hook for cross-shard admission aggregation: schedulers
/// that track admission counters expose them here; everything else
/// reports `None` (the default).
pub trait AdmissionReport {
    /// Admission counters accumulated so far, if any.
    fn admission_report(&self) -> Option<AdmissionStats> {
        None
    }
}

impl<S: Scheduler, F: Scheduler> AdmissionReport for GuardedScheduler<S, F> {
    fn admission_report(&self) -> Option<AdmissionStats> {
        self.admission_stats()
    }
}

impl AdmissionReport for Box<dyn Scheduler> {}
impl AdmissionReport for lsched_sched::FifoScheduler {}
impl AdmissionReport for lsched_sched::FairScheduler {}
impl AdmissionReport for lsched_sched::SjfScheduler {}
impl AdmissionReport for lsched_sched::HpfScheduler {}
impl AdmissionReport for lsched_sched::CriticalPathScheduler {}
impl AdmissionReport for lsched_sched::QuickstepScheduler {}
impl AdmissionReport for lsched_sched::SelfTuneScheduler {}

/// Health hook for the shard supervisor's heartbeat: guarded schedulers
/// expose their breaker counters and whether they ended the run off the
/// primary policy; everything else reports healthy (the defaults).
pub trait HealthReport {
    /// Circuit-breaker counters accumulated so far, if any.
    fn guard_report(&self) -> Option<GuardStats> {
        None
    }

    /// True when the scheduler finished the run with its breaker open
    /// (serving from the fallback) — the supervisor marks the shard
    /// Degraded even though the run itself completed.
    fn ended_degraded(&self) -> bool {
        false
    }
}

impl<S: Scheduler, F: Scheduler> HealthReport for GuardedScheduler<S, F> {
    fn guard_report(&self) -> Option<GuardStats> {
        Some(self.stats())
    }

    fn ended_degraded(&self) -> bool {
        !matches!(self.state(), GuardState::Primary)
    }
}

impl HealthReport for Box<dyn Scheduler> {}
impl HealthReport for lsched_sched::FifoScheduler {}
impl HealthReport for lsched_sched::FairScheduler {}
impl HealthReport for lsched_sched::SjfScheduler {}
impl HealthReport for lsched_sched::HpfScheduler {}
impl HealthReport for lsched_sched::CriticalPathScheduler {}
impl HealthReport for lsched_sched::QuickstepScheduler {}
impl HealthReport for lsched_sched::SelfTuneScheduler {}

/// The per-shard simulator config: base template with the seed (and the
/// fault plan's seed, when present) shifted by the shard stride. Shard 0
/// is the untouched template.
pub fn shard_sim_config(template: &SimConfig, shard: usize) -> SimConfig {
    let mut cfg = template.clone();
    let delta = SHARD_SEED_STRIDE.wrapping_mul(shard as u64);
    cfg.seed = cfg.seed.wrapping_add(delta);
    if let Some(plan) = cfg.faults.as_mut() {
        plan.seed = plan.seed.wrapping_add(delta);
    }
    cfg
}

/// Routes `queries` across the configured shards and simulates every
/// shard on its own worker thread (`make_sched(shard)` builds each
/// shard's scheduler). Returns the merged [`ServeResult`] or the first
/// (lowest-shard) failure.
pub fn serve_workload<S, F>(
    cfg: &ServeConfig,
    queries: &[TenantQuery],
    make_sched: F,
) -> Result<ServeResult, ServeError>
where
    S: Scheduler + AdmissionReport + HealthReport,
    F: Fn(usize) -> S + Sync,
{
    validate_config(cfg)?;
    let (sub_workloads, assigned, router_stats) = route_workload(&cfg.router, queries);
    let n = sub_workloads.len();

    // Worker-per-shard: the pool caps parallel-iterator fan-out at the
    // shard count; the shim's ordered collect returns shard results in
    // shard order regardless of completion order.
    let pool = build_shard_pool(n)?;
    type Harvest = (SimResult, Option<AdmissionStats>, Option<GuardStats>);
    let runs: Vec<Result<Harvest, ServeError>> =
        pool.install(|| {
            sub_workloads
                .into_iter()
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(shard, wl)| {
                    let mut sched = make_sched(shard);
                    let res = try_simulate(shard_sim_config(&cfg.sim, shard), &wl, &mut sched)
                        .map_err(|error| ServeError::Shard { shard, error })?;
                    Ok((res, sched.admission_report(), sched.guard_report()))
                })
                .collect()
        });

    let mut shards = Vec::with_capacity(n);
    for (shard, (run, assigned)) in runs.into_iter().zip(assigned).enumerate() {
        let (result, admission, guard) = run?;
        shards.push(ShardRun { shard, epoch: 0, assigned, result, admission, guard });
    }
    Ok(merge_shards(shards, router_stats))
}

/// Rejects a config whose router thread model disagrees with the
/// simulator template (the silent-divergence hazard of hand-built
/// [`ServeConfig`]s).
pub(crate) fn validate_config(cfg: &ServeConfig) -> Result<(), ServeError> {
    if cfg.router.threads_per_shard != cfg.sim.num_threads {
        return Err(ServeError::ConfigMismatch {
            router_threads: cfg.router.threads_per_shard,
            sim_threads: cfg.sim.num_threads,
        });
    }
    Ok(())
}

/// Builds the worker-per-shard pool, routing builder failure through
/// [`ServeError::PoolBuild`] instead of panicking in library code.
pub(crate) fn build_shard_pool(n: usize) -> Result<rayon::ThreadPool, ServeError> {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .map_err(|e| ServeError::PoolBuild { reason: e.to_string() })
}

/// Merges per-shard runs into the cross-shard aggregate. Percentile
/// bases merge sample-wise; counters sum; starvation metrics take the
/// max; the serving makespan is the slowest shard.
pub fn merge_shards(shards: Vec<ShardRun>, router: RouterStats) -> ServeResult {
    let mut latency = LatencyStats::from_samples(Vec::new());
    let mut resilience = ResilienceSummary::default();
    let mut faults = FaultSummary::default();
    let mut admission = AdmissionStats::default();
    let mut guard = GuardStats::default();
    let mut makespan = 0.0f64;
    let mut events = 0u64;
    let mut completed = 0u64;
    let mut aborted = 0u64;
    for run in &shards {
        latency.merge(&run.result.latency_stats());
        resilience.merge(&run.result.resilience);
        faults.merge(&run.result.fault_summary);
        if let Some(a) = &run.admission {
            admission.merge(a);
        }
        if let Some(g) = &run.guard {
            guard.merge(g);
        }
        makespan = makespan.max(run.result.makespan);
        events += run.result.events_processed;
        completed += run.result.outcomes.len() as u64;
        aborted += run.result.aborted.len() as u64;
    }
    let health = vec![ShardHealth::Healthy; router.per_shard.len()];
    ServeResult {
        shards,
        router,
        makespan,
        events_processed: events,
        completed,
        aborted,
        latency,
        resilience,
        faults,
        admission,
        guard,
        failover: FailoverSummary::default(),
        health,
        abandoned: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{tenantize, SloClass};
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::sim::WorkloadItem;
    use lsched_sched::FifoScheduler;
    use std::sync::Arc;

    fn plan(wos: u32) -> Arc<lsched_engine::plan::PhysicalPlan> {
        let mut b = PlanBuilder::new("s");
        let scan =
            b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e4, wos, 0.01, 1e4);
        let agg =
            b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 5e3, 1, 0.01, 1e4);
        b.connect(scan, agg, false);
        Arc::new(b.finish(agg))
    }

    fn workload(n: usize) -> Vec<WorkloadItem> {
        (0..n).map(|i| WorkloadItem::new(i as f64 * 0.02, plan(2 + (i % 4) as u32))).collect()
    }

    #[test]
    fn one_shard_serve_is_bit_identical_to_unsharded() {
        let wl = workload(24);
        let qs = tenantize(&wl, 5, &[]);
        let sim = SimConfig { num_threads: 4, seed: 42, ..Default::default() };
        let cfg = ServeConfig::new(1, sim.clone());
        let served = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let direct = try_simulate(sim, &wl, &mut FifoScheduler::default()).unwrap();
        assert!(served.shards[0].result.bit_eq(&direct));
        assert_eq!(served.events_processed, direct.events_processed);
        assert_eq!(served.makespan.to_bits(), direct.makespan.to_bits());
    }

    #[test]
    fn multi_shard_serve_is_repeatable_and_covers_all_queries() {
        let wl = workload(60);
        let qs = tenantize(&wl, 11, &[SloClass::best_effort(), SloClass::silver()]);
        let sim = SimConfig { num_threads: 3, seed: 7, ..Default::default() };
        let cfg = ServeConfig::new(4, sim);
        let a = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let b = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        assert_eq!(a.completed + a.aborted, 60);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert!(x.result.bit_eq(&y.result));
            assert_eq!(x.assigned, y.assigned);
        }
        // Every query landed on exactly one shard.
        let mut seen: Vec<usize> = a.shards.iter().flat_map(|s| s.assigned.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn merged_latency_equals_pooled_shard_samples() {
        let wl = workload(40);
        let qs = tenantize(&wl, 8, &[]);
        let cfg = ServeConfig::new(3, SimConfig { num_threads: 2, seed: 3, ..Default::default() });
        let served = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let mut pooled: Vec<f64> = Vec::new();
        for s in &served.shards {
            pooled.extend(s.result.outcomes.iter().map(|o| o.duration));
        }
        let oracle = LatencyStats::from_samples(pooled);
        assert_eq!(served.latency.samples(), oracle.samples());
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(served.latency.quantile(p).to_bits(), oracle.quantile(p).to_bits());
        }
    }

    #[test]
    fn guarded_shards_surface_admission_stats() {
        use lsched_sched::{Admission, AdmissionConfig};
        let wl = workload(30);
        let qs = tenantize(&wl, 6, &[]);
        let cfg = ServeConfig::new(2, SimConfig { num_threads: 2, seed: 9, ..Default::default() });
        let served = serve_workload(&cfg, &qs, |_| {
            GuardedScheduler::new(FifoScheduler::default())
                .with_admission(Admission::new(AdmissionConfig::default()))
        })
        .unwrap();
        assert!(served.shards.iter().all(|s| s.admission.is_some()));
        assert_eq!(
            served.admission.arrivals,
            served.shards.iter().map(|s| s.admission.unwrap().arrivals).sum::<u64>()
        );
        assert!(served.admission.arrivals >= 30);
    }
}
