//! # lsched-serve
//!
//! The sharded multi-tenant serving layer: N independent simulator
//! shards (each its own worker pool, frontier cache and guarded
//! admission stack) behind a deterministic router.
//!
//! * [`router`] — tenant → shard hashing, weighted SLO classes layered
//!   on the engine's priority/deadline machinery, and hysteresis-gated
//!   query migration at admission time. Zero RNG: routing is a pure
//!   function of the arrival sequence.
//! * [`serve`] — the data plane: per-shard simulation on a
//!   worker-per-shard pool and statistically honest cross-shard merging
//!   (pooled latency samples, counter sums, starvation maxima).
//! * [`fault`] — the deterministic shard-level fault model: crashes at
//!   a virtual time, crash-then-restart, slow shards, poisoned shards.
//! * [`supervisor`] — crash containment and recovery: every shard runs
//!   under `catch_unwind` plus a health poll; crashed shards restart or
//!   quarantine, and their unfinished queries fail over to survivors by
//!   the same zero-RNG placement rule the router uses.
//!
//! The determinism contract, pinned by `tests/serve_props.rs` at the
//! workspace root: a 1-shard served run is bit-identical to the
//! unsharded simulator, and an N-shard run is bit-identical across
//! repeats — with fault injection on, and with shard crashes and
//! failover on.

#![warn(missing_docs)]

pub mod fault;
pub mod router;
pub mod serve;
pub mod supervisor;

pub use fault::{ShardFault, ShardFaultPlan};
pub use router::{
    assign_failover, failover_order, route_workload, tenantize, FailoverQuery, Router,
    RouterConfig, RouterStats, SloClass, TenantId, TenantQuery,
};
pub use serve::{
    merge_shards, serve_workload, shard_sim_config, AdmissionReport, HealthReport, ServeConfig,
    ServeError, ServeResult, ShardRun, SHARD_SEED_STRIDE,
};
pub use supervisor::{
    serve_supervised, FailoverSummary, ShardHealth, SupervisorConfig, EPOCH_SEED_STRIDE,
};
