//! The shard supervisor: crash containment, restart, and deterministic
//! failover for the sharded serving layer.
//!
//! [`serve_supervised`] runs each shard of a served workload under
//! [`std::panic::catch_unwind`] plus a post-run health poll, mirroring
//! the [`GuardedScheduler`](lsched_sched::GuardedScheduler) breaker one
//! layer up: a shard is `Healthy` while its runs drain clean, `Degraded`
//! when its heartbeat lags the fleet (slow shard, or its scheduler ended
//! on the fallback policy), `Restarting` after a crash with a restart
//! budget, `Recovered` once it drains a run again, and `Quarantined`
//! after it exhausts [`SupervisorConfig::max_restarts`] (a shard that
//! crashes twice is never trusted again).
//!
//! Failover is deterministic and exactly-once:
//!
//! * A crash at virtual time `t` ([`crate::fault::ShardFault`]) truncates
//!   the shard's run; whatever completed before `t` is the durable log
//!   and is kept. The *unfinished* queries — reported by the engine in
//!   [`SimResult::unfinished`] — are the orphans.
//! * Orphans are ordered by [`crate::router::failover_order`] (gold
//!   classes first, then original arrival — a per-tenant FIFO) and
//!   placed by [`crate::router::assign_failover`], the same zero-RNG
//!   argmin-projected-backlog rule pressure migration uses.
//! * Replays keep charging latency and deferred deadlines from the
//!   original submission ([`WorkloadItem::submitted_at`]): a crash never
//!   extends an SLO and never hides pre-crash queueing.
//! * Every query gets exactly one final fate across survivor outcomes,
//!   replays, and explicit abandonment; the supervisor verifies this
//!   partition and returns [`ServeError::PartitionViolation`] rather
//!   than merging a dishonest aggregate.
//!
//! A raw panic (an injected [`crate::fault::ShardFault::Poison`] or a
//! buggy policy) leaves no durable log, so the shard's whole slice fails
//! over. Callers that expect panics (chaos tests, the `chaos_serve`
//! bench) typically install a quiet panic hook; the supervisor itself
//! never touches global state.

use crate::fault::ShardFaultPlan;
use crate::router::{
    assign_failover, failover_order, route_workload, FailoverQuery, TenantQuery,
};
use crate::serve::{
    build_shard_pool, merge_shards, shard_sim_config, validate_config, AdmissionReport,
    HealthReport, ServeConfig, ServeError, ServeResult, ShardRun,
};
use lsched_core::plan_est_cost;
use lsched_engine::sim::{try_simulate, SimResult, WorkloadItem};
use lsched_engine::Scheduler;
use lsched_sched::{AdmissionStats, GuardStats};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-epoch seed stride: failover epoch `k` simulates shard `s` with
/// seed `base + s × SHARD_SEED_STRIDE + k × EPOCH_SEED_STRIDE`
/// (wrapping). Epoch 0 keeps the plain per-shard seed, which is what
/// makes a supervised run with no shard faults bit-identical to
/// [`crate::serve::serve_workload`]; replay epochs draw decorrelated
/// duration-noise streams.
pub const EPOCH_SEED_STRIDE: u64 = 0xD1B5_4A32_D192_ED03;

/// Supervisor verdict for one shard at the end of a supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Every run drained clean and on pace.
    Healthy,
    /// Alive but suspect: the heartbeat flagged it slow against the
    /// fleet median, or its scheduler finished with the breaker open.
    /// Degraded shards keep serving (the cooldown mirror of the
    /// breaker's Fallback state).
    Degraded,
    /// Crashed with restart budget left; back up after its restart
    /// delay. Finalized to [`ShardHealth::Recovered`] when the run ends
    /// (an idle restarted shard is still a recovered shard).
    Restarting,
    /// Crashed, restarted from a clean simulator state, and drained a
    /// replay batch.
    Recovered,
    /// Out of the fleet: crashed past the restart budget, panicked with
    /// no restart scheduled, or failed structurally. Never receives
    /// failover work.
    Quarantined,
}

/// Tuning for [`serve_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Crashes a shard may absorb before quarantine. The default 1
    /// quarantines a shard that crashes twice.
    pub max_restarts: u32,
    /// Detection latency (virtual seconds) between a crash and the
    /// earliest replay of its orphans on a survivor.
    pub failover_grace: f64,
    /// Heartbeat threshold: a shard whose epoch-0 makespan exceeds
    /// `slow_factor ×` the fleet median is marked Degraded.
    pub slow_factor: f64,
    /// Failover rounds allowed before remaining orphans are abandoned
    /// (explicitly accounted, never silently dropped).
    pub max_epochs: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self { max_restarts: 1, failover_grace: 0.0, slow_factor: 4.0, max_epochs: 8 }
    }
}

/// Crash/restart/failover accounting for one supervised run. All
/// counters are exact; `PartialEq` (not `Eq`) because the recovery
/// latency is an f64 — the determinism proptests compare summaries
/// across repeats.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FailoverSummary {
    /// Shard crashes observed (virtual-time crashes and raw panics).
    pub crashes: u64,
    /// Raw panics absorbed by `catch_unwind` (no durable log survived).
    pub panics_caught: u64,
    /// Structural simulator errors absorbed (treated as a crash with no
    /// durable log).
    pub engine_errors: u64,
    /// Crashed shards brought back from a clean simulator state.
    pub restarts: u64,
    /// Shards removed from the fleet.
    pub quarantined: u64,
    /// Distinct queries orphaned by at least one crash.
    pub orphaned: u64,
    /// Failover placements (one query re-routed twice counts twice).
    pub rerouted: u64,
    /// Orphaned queries that completed on a survivor or restarted shard.
    pub recovered: u64,
    /// Orphaned queries abandoned with no eligible shard left (or past
    /// the epoch cap); disjoint from `recovered`.
    pub abandoned: u64,
    /// Shards flagged Degraded by the slow-shard heartbeat.
    pub slow_shards: u64,
    /// Shards whose scheduler ended the run with its breaker open.
    pub degraded_schedulers: u64,
    /// Failover rounds executed (0 for a crash-free run).
    pub failover_epochs: u32,
    /// Worst orphan recovery latency: the latest replay completion minus
    /// the crash that orphaned its batch (virtual seconds).
    pub recovery_latency_max: f64,
}

/// One shard dispatch: a slice of queries (original or replayed) bound
/// for `shard` in failover epoch `epoch`.
struct ShardTask {
    shard: usize,
    epoch: u32,
    items: Vec<WorkloadItem>,
    globals: Vec<usize>,
    /// Earliest crash time among the orphans of a replay batch
    /// (infinity for epoch 0) — the anchor of the recovery latency.
    min_crash: f64,
}

/// A shard dispatch that returned from the simulator — possibly
/// crash-truncated (`result.crashed_at`), in which case the result is
/// the durable log of the dead shard.
struct FinishedRun {
    result: SimResult,
    admission: Option<AdmissionStats>,
    guard: Option<GuardStats>,
    degraded: bool,
}

/// What one supervised shard dispatch produced.
enum RunOutcome {
    /// The simulator returned (boxed: a `SimResult` dwarfs the other
    /// variants).
    Finished(Box<FinishedRun>),
    /// The simulator failed structurally; nothing usable survived.
    EngineError,
    /// The shard panicked; nothing usable survived.
    Panicked,
}

/// Runs one shard task under `catch_unwind`, applying the shard's
/// injected faults (crash-at, slow, poison) to its simulator config.
fn run_shard_task<S, F>(
    cfg: &ServeConfig,
    shard_faults: &ShardFaultPlan,
    task: &ShardTask,
    next_crash: Option<(f64, Option<f64>)>,
    make_sched: &F,
) -> RunOutcome
where
    S: Scheduler + AdmissionReport + HealthReport,
    F: Fn(usize) -> S + Sync,
{
    let mut sim = shard_sim_config(&cfg.sim, task.shard);
    if task.epoch > 0 {
        let delta = EPOCH_SEED_STRIDE.wrapping_mul(u64::from(task.epoch));
        sim.seed = sim.seed.wrapping_add(delta);
        if let Some(plan) = sim.faults.as_mut() {
            plan.seed = plan.seed.wrapping_add(delta);
        }
    }
    // Materialize the shard-level faults onto the engine's plan. When
    // nothing targets this shard the template is left untouched, which
    // keeps a fault-free supervised epoch 0 bit-identical to
    // `serve_workload`.
    let crash_at = next_crash.map(|(at, _)| at);
    let slow = shard_faults.slow_factor_for(task.shard);
    if crash_at.is_some() || slow.is_some() {
        let mut plan = sim.faults.take().unwrap_or_default();
        plan.crash_at = crash_at;
        if let Some(f) = slow {
            plan.straggler_prob = 1.0;
            plan.straggler_factor = plan.straggler_factor.max(f);
        }
        sim.faults = Some(plan);
    }
    let poisoned = task.epoch == 0 && shard_faults.poisoned(task.shard);

    let caught = catch_unwind(AssertUnwindSafe(|| {
        if poisoned {
            panic!("injected shard fault: shard {} is poisoned", task.shard);
        }
        let mut sched = make_sched(task.shard);
        try_simulate(sim, &task.items, &mut sched).map(|result| {
            let admission = sched.admission_report();
            let guard = sched.guard_report();
            let degraded = sched.ended_degraded();
            (result, admission, guard, degraded)
        })
    }));
    match caught {
        Ok(Ok((result, admission, guard, degraded))) => {
            RunOutcome::Finished(Box::new(FinishedRun { result, admission, guard, degraded }))
        }
        Ok(Err(_)) => RunOutcome::EngineError,
        Err(_) => RunOutcome::Panicked,
    }
}

/// Routes `queries` across the configured shards and simulates them
/// under shard-level fault injection with supervised crash recovery:
/// crashed shards are restarted or quarantined per `sup`, their
/// unfinished queries deterministically re-routed to survivors, and the
/// merged [`ServeResult`] carries the full [`FailoverSummary`] plus the
/// final per-shard [`ShardHealth`] verdicts.
///
/// With a no-op fault plan and panic-free schedulers this degenerates to
/// [`crate::serve::serve_workload`] bit-for-bit.
pub fn serve_supervised<S, F>(
    cfg: &ServeConfig,
    queries: &[TenantQuery],
    shard_faults: &ShardFaultPlan,
    sup: &SupervisorConfig,
    make_sched: F,
) -> Result<ServeResult, ServeError>
where
    S: Scheduler + AdmissionReport + HealthReport,
    F: Fn(usize) -> S + Sync,
{
    validate_config(cfg)?;
    let (sub_workloads, assigned, router_stats) = route_workload(&cfg.router, queries);
    let n = sub_workloads.len();
    let pool = build_shard_pool(n)?;

    let mut health = vec![ShardHealth::Healthy; n];
    let mut crash_count = vec![0u32; n];
    let crash_sched: Vec<Vec<(f64, Option<f64>)>> =
        (0..n).map(|s| shard_faults.crashes_for(s)).collect();
    let mut fired = vec![0usize; n];
    // Virtual availability per shard: the time its slot frees up (its
    // last run's makespan, or crash + restart delay).
    let mut avail = vec![0.0f64; n];
    let mut summary = FailoverSummary::default();
    let mut runs: Vec<ShardRun> = Vec::new();
    let mut abandoned: Vec<usize> = Vec::new();
    let mut orphan_seen = vec![false; queries.len()];

    let mut tasks: Vec<ShardTask> = sub_workloads
        .into_iter()
        .zip(assigned)
        .enumerate()
        .map(|(shard, (items, globals))| ShardTask {
            shard,
            epoch: 0,
            items,
            globals,
            min_crash: f64::INFINITY,
        })
        .collect();

    let mut epoch = 0u32;
    loop {
        let outcomes: Vec<RunOutcome> = pool.install(|| {
            (0..tasks.len())
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|ti| {
                    let task = &tasks[ti];
                    run_shard_task(cfg, shard_faults, task, crash_sched[task.shard]
                        .get(fired[task.shard])
                        .copied(), &make_sched)
                })
                .collect()
        });

        let mut orphans: Vec<FailoverQuery> = Vec::new();
        let mut orphan_items: HashMap<usize, WorkloadItem> = HashMap::new();
        let mut epoch_makespans: Vec<(usize, f64)> = Vec::new();

        for (task, out) in std::mem::take(&mut tasks).into_iter().zip(outcomes) {
            let s = task.shard;
            match out {
                RunOutcome::Finished(run) => {
                    let FinishedRun { result, admission, guard, degraded } = *run;
                    avail[s] = avail[s].max(result.makespan);
                    if let Some(at) = result.crashed_at {
                        summary.crashes += 1;
                        crash_count[s] += 1;
                        let spec = crash_sched[s].get(fired[s]).copied();
                        fired[s] += 1;
                        for &li in &result.unfinished {
                            let g = task.globals[li];
                            if !orphan_seen[g] {
                                orphan_seen[g] = true;
                                summary.orphaned += 1;
                            }
                            orphans.push(FailoverQuery {
                                global: g,
                                tenant: queries[g].tenant,
                                class_weight: queries[g].class.weight,
                                arrival: task.items[li].arrival_time,
                                est_cost: plan_est_cost(&task.items[li].plan),
                                crash_time: at,
                            });
                            orphan_items.insert(g, task.items[li].clone());
                        }
                        match spec.and_then(|(_, restart)| restart) {
                            Some(delay) if crash_count[s] <= sup.max_restarts => {
                                health[s] = ShardHealth::Restarting;
                                avail[s] = avail[s].max(at + delay);
                                summary.restarts += 1;
                            }
                            _ => {
                                if health[s] != ShardHealth::Quarantined {
                                    health[s] = ShardHealth::Quarantined;
                                    summary.quarantined += 1;
                                }
                            }
                        }
                    } else {
                        if task.epoch > 0 {
                            summary.recovered += result.outcomes.len() as u64;
                            if health[s] == ShardHealth::Restarting {
                                health[s] = ShardHealth::Recovered;
                            }
                        } else {
                            epoch_makespans.push((s, result.makespan));
                        }
                        if degraded && health[s] == ShardHealth::Healthy {
                            health[s] = ShardHealth::Degraded;
                            summary.degraded_schedulers += 1;
                        }
                    }
                    if task.epoch > 0 {
                        let last_finish = result
                            .outcomes
                            .iter()
                            .map(|o| o.finish)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if last_finish.is_finite() {
                            summary.recovery_latency_max =
                                summary.recovery_latency_max.max(last_finish - task.min_crash);
                        }
                    }
                    runs.push(ShardRun {
                        shard: s,
                        epoch: task.epoch,
                        assigned: task.globals,
                        result,
                        admission,
                        guard,
                    });
                }
                RunOutcome::EngineError | RunOutcome::Panicked => {
                    // No durable log: the whole slice is orphaned. An
                    // engine error and a panic differ only in the
                    // counter they bump; neither consumes a crash spec,
                    // and neither earns a restart.
                    match out {
                        RunOutcome::EngineError => summary.engine_errors += 1,
                        _ => summary.panics_caught += 1,
                    }
                    summary.crashes += 1;
                    crash_count[s] += 1;
                    if health[s] != ShardHealth::Quarantined {
                        health[s] = ShardHealth::Quarantined;
                        summary.quarantined += 1;
                    }
                    let died_at = avail[s];
                    for (li, g) in task.globals.iter().copied().enumerate() {
                        if !orphan_seen[g] {
                            orphan_seen[g] = true;
                            summary.orphaned += 1;
                        }
                        orphans.push(FailoverQuery {
                            global: g,
                            tenant: queries[g].tenant,
                            class_weight: queries[g].class.weight,
                            arrival: task.items[li].arrival_time,
                            est_cost: plan_est_cost(&task.items[li].plan),
                            crash_time: died_at,
                        });
                        orphan_items.insert(g, task.items[li].clone());
                    }
                }
            }
        }

        // Slow-shard heartbeat, epoch 0 only: compare each clean shard's
        // makespan against the fleet median.
        if epoch == 0 && epoch_makespans.len() >= 2 {
            let mut spans: Vec<f64> = epoch_makespans.iter().map(|&(_, m)| m).collect();
            spans.sort_by(f64::total_cmp);
            let median = spans[spans.len() / 2];
            if median > 0.0 {
                for &(s, m) in &epoch_makespans {
                    if m > sup.slow_factor * median && health[s] == ShardHealth::Healthy {
                        health[s] = ShardHealth::Degraded;
                        summary.slow_shards += 1;
                    }
                }
            }
        }

        if orphans.is_empty() {
            break;
        }
        epoch += 1;
        let eligible: Vec<usize> =
            (0..n).filter(|&s| health[s] != ShardHealth::Quarantined).collect();
        if epoch > sup.max_epochs || eligible.is_empty() {
            // Explicit abandonment keeps the partition exact: these
            // queries' fate is "lost to the crash", counted, never
            // silently dropped.
            abandoned.extend(orphans.iter().map(|o| o.global));
            break;
        }
        summary.failover_epochs = epoch;

        // Deterministic failover: SLO-ordered orphans, argmin-projected-
        // backlog placement over the survivors.
        failover_order(&mut orphans);
        let mut busy: Vec<f64> = eligible.iter().map(|&s| avail[s]).collect();
        let targets = assign_failover(&cfg.router, &eligible, &mut busy, &orphans);
        summary.rerouted += orphans.len() as u64;

        let mut next: Vec<Option<ShardTask>> = (0..n).map(|_| None).collect();
        for (o, &s) in orphans.iter().zip(&targets) {
            let original = &orphan_items[&o.global];
            let anchor = original.submit_anchor();
            let start = (o.crash_time + sup.failover_grace).max(avail[s]);
            let mut item = original.clone();
            item.arrival_time = item.arrival_time.max(start);
            item.submitted_at = Some(anchor);
            let task = next[s].get_or_insert_with(|| ShardTask {
                shard: s,
                epoch,
                items: Vec::new(),
                globals: Vec::new(),
                min_crash: f64::INFINITY,
            });
            task.items.push(item);
            task.globals.push(o.global);
            task.min_crash = task.min_crash.min(o.crash_time);
        }
        tasks = next.into_iter().flatten().collect();
    }

    // An idle restarted shard is still back up.
    for h in health.iter_mut() {
        if *h == ShardHealth::Restarting {
            *h = ShardHealth::Recovered;
        }
    }
    abandoned.sort_unstable();
    summary.abandoned = abandoned.len() as u64;

    // Exactly-once verification: every query has exactly one final fate
    // across all runs' finalized sets plus the abandoned list.
    let mut fates = vec![0usize; queries.len()];
    for run in &runs {
        for g in run.finalized() {
            fates[g] += 1;
        }
    }
    for &g in &abandoned {
        fates[g] += 1;
    }
    if let Some((query, &count)) = fates.iter().enumerate().find(|&(_, &c)| c != 1) {
        return Err(ServeError::PartitionViolation { query, count });
    }

    let mut result = merge_shards(runs, router_stats);
    result.failover = summary;
    result.health = health;
    result.abandoned = abandoned;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ShardFault;
    use crate::router::{tenantize, SloClass};
    use crate::serve::serve_workload;
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::sim::SimConfig;
    use lsched_sched::FifoScheduler;
    use std::sync::Arc;

    fn plan(wos: u32) -> Arc<lsched_engine::plan::PhysicalPlan> {
        let mut b = PlanBuilder::new("s");
        let scan =
            b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e4, wos, 0.01, 1e4);
        let agg =
            b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 5e3, 1, 0.01, 1e4);
        b.connect(scan, agg, false);
        Arc::new(b.finish(agg))
    }

    fn workload(n: usize) -> Vec<WorkloadItem> {
        (0..n).map(|i| WorkloadItem::new(i as f64 * 0.02, plan(2 + (i % 4) as u32))).collect()
    }

    fn fates(r: &ServeResult) -> u64 {
        r.completed + r.aborted + r.abandoned.len() as u64
    }

    #[test]
    fn faultfree_supervised_run_is_bit_identical_to_plain_serving() {
        let wl = workload(40);
        let qs = tenantize(&wl, 7, &[SloClass::best_effort(), SloClass::gold()]);
        let cfg =
            ServeConfig::new(3, SimConfig { num_threads: 2, seed: 11, ..Default::default() });
        let plain = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let sup = serve_supervised(
            &cfg,
            &qs,
            &ShardFaultPlan::none(),
            &SupervisorConfig::default(),
            |_| FifoScheduler::default(),
        )
        .unwrap();
        assert_eq!(sup.shards.len(), plain.shards.len());
        for (a, b) in sup.shards.iter().zip(&plain.shards) {
            assert!(a.result.bit_eq(&b.result));
            assert_eq!(a.assigned, b.assigned);
            assert_eq!(a.epoch, 0);
        }
        assert_eq!(sup.makespan.to_bits(), plain.makespan.to_bits());
        assert_eq!(sup.failover, FailoverSummary::default());
        assert!(sup.health.iter().all(|h| *h == ShardHealth::Healthy));
        assert!(sup.abandoned.is_empty());
    }

    #[test]
    fn crash_fails_over_every_orphan_to_the_survivor() {
        let wl = workload(48);
        let qs = tenantize(&wl, 9, &[]);
        let cfg = ServeConfig::new(2, SimConfig { num_threads: 2, seed: 5, ..Default::default() });
        let clean = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let crash_at = 0.3 * clean.shards[0].result.makespan;
        let faults = ShardFaultPlan::crash_one(0, crash_at);
        let run = |_: ()| {
            serve_supervised(&cfg, &qs, &faults, &SupervisorConfig::default(), |_| {
                FifoScheduler::default()
            })
            .unwrap()
        };
        let a = run(());
        assert_eq!(a.failover.crashes, 1);
        assert!(a.failover.orphaned > 0, "a mid-run crash must orphan something");
        assert_eq!(a.failover.rerouted, a.failover.orphaned);
        assert_eq!(a.failover.recovered + a.failover.abandoned, a.failover.orphaned);
        assert!(a.abandoned.is_empty(), "one healthy survivor must absorb everything");
        assert_eq!(a.health[0], ShardHealth::Quarantined);
        assert_eq!(a.health[1], ShardHealth::Healthy);
        assert_eq!(fates(&a), 48, "every query gets exactly one fate");
        assert!(a.failover.recovery_latency_max >= 0.0);
        // Bit-identical on repeat, including the failover replays.
        let b = run(());
        assert_eq!(a.shards.len(), b.shards.len());
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!((x.shard, x.epoch, &x.assigned), (y.shard, y.epoch, &y.assigned));
            assert!(x.result.bit_eq(&y.result));
        }
        assert_eq!(a.failover, b.failover);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn crash_restart_brings_the_shard_back_for_its_own_orphans() {
        let wl = workload(48);
        let qs = tenantize(&wl, 9, &[]);
        let cfg = ServeConfig::new(2, SimConfig { num_threads: 2, seed: 5, ..Default::default() });
        let clean = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let at = 0.3 * clean.shards[0].result.makespan;
        let faults = ShardFaultPlan {
            faults: vec![(0, ShardFault::CrashRestart { at, restart_delay: 0.01 })],
        };
        let r = serve_supervised(&cfg, &qs, &faults, &SupervisorConfig::default(), |_| {
            FifoScheduler::default()
        })
        .unwrap();
        assert_eq!(r.failover.crashes, 1);
        assert_eq!(r.failover.restarts, 1);
        assert_eq!(r.failover.quarantined, 0);
        assert!(matches!(r.health[0], ShardHealth::Recovered));
        assert_eq!(fates(&r), 48);
        assert!(r.abandoned.is_empty());
        // The restarted shard's availability (crash + tiny delay) beats
        // the survivor's full epoch-0 makespan, so the argmin placement
        // hands it replay work.
        assert!(
            r.shards.iter().any(|s| s.shard == 0 && s.epoch > 0 && !s.assigned.is_empty()),
            "restarted shard should reclaim failover work"
        );
    }

    #[test]
    fn poisoned_shard_is_quarantined_and_its_whole_slice_fails_over() {
        let wl = workload(30);
        let qs = tenantize(&wl, 6, &[]);
        let cfg = ServeConfig::new(2, SimConfig { num_threads: 2, seed: 3, ..Default::default() });
        let faults = ShardFaultPlan { faults: vec![(1, ShardFault::Poison)] };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = serve_supervised(&cfg, &qs, &faults, &SupervisorConfig::default(), |_| {
            FifoScheduler::default()
        })
        .unwrap();
        std::panic::set_hook(prev);
        assert_eq!(r.failover.panics_caught, 1);
        assert_eq!(r.failover.crashes, 1);
        assert_eq!(r.health[1], ShardHealth::Quarantined);
        assert_eq!(fates(&r), 30);
        assert!(r.abandoned.is_empty(), "shard 0 must absorb the poisoned slice");
        assert!(r.failover.orphaned > 0);
    }

    #[test]
    fn sole_shard_crash_abandons_orphans_explicitly() {
        let wl = workload(20);
        let qs = tenantize(&wl, 4, &[]);
        let cfg = ServeConfig::new(1, SimConfig { num_threads: 2, seed: 2, ..Default::default() });
        let clean = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let faults = ShardFaultPlan::crash_one(0, 0.3 * clean.makespan);
        let r = serve_supervised(&cfg, &qs, &faults, &SupervisorConfig::default(), |_| {
            FifoScheduler::default()
        })
        .unwrap();
        assert_eq!(r.health[0], ShardHealth::Quarantined);
        assert!(!r.abandoned.is_empty(), "no survivor: orphans must be abandoned, not lost");
        assert_eq!(r.failover.abandoned, r.abandoned.len() as u64);
        assert_eq!(fates(&r), 20);
    }

    #[test]
    fn slow_shard_is_flagged_degraded_by_the_heartbeat() {
        let wl = workload(60);
        let qs = tenantize(&wl, 11, &[]);
        let cfg = ServeConfig::new(3, SimConfig { num_threads: 2, seed: 7, ..Default::default() });
        let faults = ShardFaultPlan { faults: vec![(1, ShardFault::Slow { factor: 3.5 })] };
        let sup = SupervisorConfig { slow_factor: 2.0, ..Default::default() };
        let r =
            serve_supervised(&cfg, &qs, &faults, &sup, |_| FifoScheduler::default()).unwrap();
        assert_eq!(r.health[1], ShardHealth::Degraded);
        assert_eq!(r.failover.slow_shards, 1);
        assert_eq!(r.failover.crashes, 0);
        assert_eq!(fates(&r), 60);
    }

    #[test]
    fn replay_latency_is_charged_from_the_original_submission() {
        let wl = workload(48);
        let qs = tenantize(&wl, 9, &[]);
        let cfg = ServeConfig::new(2, SimConfig { num_threads: 2, seed: 5, ..Default::default() });
        let clean = serve_workload(&cfg, &qs, |_| FifoScheduler::default()).unwrap();
        let crash_at = 0.3 * clean.shards[0].result.makespan;
        let faults = ShardFaultPlan::crash_one(0, crash_at);
        let r = serve_supervised(&cfg, &qs, &faults, &SupervisorConfig::default(), |_| {
            FifoScheduler::default()
        })
        .unwrap();
        let mut saw_replay = false;
        for s in r.shards.iter().filter(|s| s.epoch > 0) {
            for o in &s.result.outcomes {
                saw_replay = true;
                // Outcome latency spans original submission → replay
                // finish: the recorded arrival is the query's original
                // one (not the shifted replay arrival), and the replay
                // itself executes after the crash.
                let global = s.assigned[o.qid.0 as usize];
                assert_eq!(
                    o.arrival.to_bits(),
                    wl[global].arrival_time.to_bits(),
                    "replayed outcome must charge from the original submission"
                );
                assert!(o.finish >= crash_at, "replays execute after the crash");
                assert!((o.finish - o.arrival - o.duration).abs() < 1e-9);
            }
        }
        assert!(saw_replay, "crash must produce at least one replayed outcome");
    }
}
