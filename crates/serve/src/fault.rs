//! Deterministic shard-level fault model for the serving layer.
//!
//! The engine's [`lsched_engine::fault::FaultPlan`] perturbs *inside* a
//! simulator run (worker loss, transient work-order failures); a
//! [`ShardFaultPlan`] perturbs the fleet *around* the runs: whole shards
//! crash at a virtual time, crash and later restart, run slow, or
//! poison their process outright. The supervisor
//! ([`crate::supervisor`]) materializes each fault against the shard it
//! targets.
//!
//! Determinism is the same contract as everywhere else in the repo:
//! [`ShardFaultPlan::chaos`] derives every roll from a seed strided per
//! shard with the existing [`crate::serve::SHARD_SEED_STRIDE`], crash
//! times are fixed virtual instants (the engine consumes no RNG to
//! honor them), and a given `(seed, shards)` pair always produces the
//! same plan — so chaos runs are bit-reproducible end to end.

use crate::serve::SHARD_SEED_STRIDE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shard-level fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardFault {
    /// The shard process dies at a virtual time and never returns; its
    /// unfinished queries fail over to the survivors.
    Crash {
        /// Virtual crash time (seconds).
        at: f64,
    },
    /// The shard dies at a virtual time and rejoins `restart_delay`
    /// seconds later from a clean simulator state; it is eligible for
    /// failover work (including its own orphans) once restarted.
    CrashRestart {
        /// Virtual crash time (seconds).
        at: f64,
        /// Downtime before the restarted shard may accept work.
        restart_delay: f64,
    },
    /// The shard runs but every work order stragglers by `factor` — the
    /// supervisor's heartbeat flags it Degraded when its makespan blows
    /// past the fleet median.
    Slow {
        /// Duration multiplier (≥ 1) applied to the shard's work orders.
        factor: f64,
    },
    /// The shard panics the moment it is dispatched (a poisoned binary
    /// or corrupt snapshot): no durable completion log survives, so its
    /// whole slice fails over.
    Poison,
}

/// A fleet-wide schedule of shard faults for one served run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFaultPlan {
    /// Faults as `(shard, fault)`. Several faults may target one shard
    /// (e.g. a restart followed by a second crash); crashes fire in
    /// ascending time order.
    pub faults: Vec<(usize, ShardFault)>,
}

impl ShardFaultPlan {
    /// The empty plan: no shard faults, supervised serving degenerates
    /// to plain serving.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.faults.is_empty()
    }

    /// A single hard crash of `shard` at virtual time `at` — the
    /// smallest interesting plan, used by the CI smoke gate.
    pub fn crash_one(shard: usize, at: f64) -> Self {
        Self { faults: vec![(shard, ShardFault::Crash { at })] }
    }

    /// A seeded chaos matrix over `shards` shards: each shard
    /// independently rolls (off `seed` strided by the per-shard
    /// [`SHARD_SEED_STRIDE`]) one of crash (25%), crash-then-restart
    /// (20%), slow (20%), poison (5%), or stays healthy (30%). Crash
    /// times and restart delays are fractions of `horizon`, an estimate
    /// of the fault-free serving makespan. Deterministic: the same
    /// `(seed, shards, horizon)` always yields the same plan.
    pub fn chaos(seed: u64, shards: usize, horizon: f64) -> Self {
        let mut faults = Vec::new();
        for shard in 0..shards {
            let stream = seed
                .wrapping_add(SHARD_SEED_STRIDE.wrapping_mul(shard as u64))
                ^ 0x5EED_FA11_5EED_FA11;
            let mut rng = StdRng::seed_from_u64(stream);
            let roll: f64 = rng.gen_range(0.0..1.0);
            let at = rng.gen_range(0.1..0.7) * horizon;
            if roll < 0.25 {
                faults.push((shard, ShardFault::Crash { at }));
            } else if roll < 0.45 {
                let restart_delay = rng.gen_range(0.02..0.15) * horizon;
                faults.push((shard, ShardFault::CrashRestart { at, restart_delay }));
            } else if roll < 0.65 {
                faults.push((shard, ShardFault::Slow { factor: rng.gen_range(2.0..4.0) }));
            } else if roll < 0.70 {
                faults.push((shard, ShardFault::Poison));
            }
        }
        Self { faults }
    }

    /// The crash schedule of `shard`, ascending by time: each entry is
    /// `(crash_time, restart_delay)` with `None` for a crash that never
    /// restarts.
    pub fn crashes_for(&self, shard: usize) -> Vec<(f64, Option<f64>)> {
        let mut out: Vec<(f64, Option<f64>)> = self
            .faults
            .iter()
            .filter(|(s, _)| *s == shard)
            .filter_map(|(_, f)| match *f {
                ShardFault::Crash { at } => Some((at, None)),
                ShardFault::CrashRestart { at, restart_delay } => Some((at, Some(restart_delay))),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The straggler factor of `shard` when a [`ShardFault::Slow`]
    /// targets it (the largest, if several do).
    pub fn slow_factor_for(&self, shard: usize) -> Option<f64> {
        self.faults
            .iter()
            .filter(|(s, _)| *s == shard)
            .filter_map(|(_, f)| match *f {
                ShardFault::Slow { factor } => Some(factor),
                _ => None,
            })
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.max(f))))
    }

    /// Whether a [`ShardFault::Poison`] targets `shard`.
    pub fn poisoned(&self, shard: usize) -> bool {
        self.faults.iter().any(|(s, f)| *s == shard && matches!(f, ShardFault::Poison))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_deterministic_and_bounded() {
        let a = ShardFaultPlan::chaos(7, 16, 10.0);
        let b = ShardFaultPlan::chaos(7, 16, 10.0);
        assert_eq!(a, b, "chaos generation must be a pure function of the seed");
        assert_ne!(a, ShardFaultPlan::chaos(8, 16, 10.0), "seeds must decorrelate");
        for (shard, fault) in &a.faults {
            assert!(*shard < 16);
            match fault {
                ShardFault::Crash { at } | ShardFault::CrashRestart { at, .. } => {
                    assert!(*at >= 1.0 && *at <= 7.0, "crash inside (0.1..0.7) * horizon");
                }
                ShardFault::Slow { factor } => assert!(*factor >= 2.0 && *factor < 4.0),
                ShardFault::Poison => {}
            }
        }
    }

    #[test]
    fn accessors_slice_the_plan_per_shard() {
        let plan = ShardFaultPlan {
            faults: vec![
                (1, ShardFault::CrashRestart { at: 0.5, restart_delay: 0.1 }),
                (1, ShardFault::Crash { at: 0.9 }),
                (2, ShardFault::Slow { factor: 3.0 }),
                (3, ShardFault::Poison),
            ],
        };
        assert_eq!(plan.crashes_for(1), vec![(0.5, Some(0.1)), (0.9, None)]);
        assert!(plan.crashes_for(0).is_empty());
        assert_eq!(plan.slow_factor_for(2), Some(3.0));
        assert_eq!(plan.slow_factor_for(1), None);
        assert!(plan.poisoned(3));
        assert!(!plan.poisoned(2));
        assert!(!plan.is_noop());
        assert!(ShardFaultPlan::none().is_noop());
        assert_eq!(plan.crashes_for(1).len() + plan.crashes_for(2).len(), 2);
    }
}
