//! Property tests: every benchmark query spec must lower to a valid,
//! well-formed physical plan at any reasonable scale factor, with
//! monotone work and consistent feature metadata.

use lsched_workloads::spec::{build_plan, MAX_WORK_ORDERS};
use lsched_workloads::{job, ssb, tpch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any TPC-H query at any SF in [0.1, 200] lowers to a valid plan
    /// whose work orders respect the cap and whose estimated work grows
    /// with SF.
    #[test]
    fn tpch_plans_valid_at_any_sf(qi in 0usize..22, sf in 0.1f64..200.0) {
        let ctx = tpch::context();
        let spec = &tpch::query_specs()[qi];
        let plan = build_plan(spec, &ctx, sf);
        prop_assert!(plan.validate().is_ok(), "{} invalid at sf {sf}", spec.name);
        prop_assert!(plan.ops.iter().all(|o| o.num_work_orders >= 1));
        prop_assert!(plan.ops.iter().all(|o| o.num_work_orders <= MAX_WORK_ORDERS));
        prop_assert!(plan.ops.iter().all(|o| o.est_wo_duration > 0.0));
        prop_assert!(plan.ops.iter().all(|o| o.est_wo_memory > 0.0));
        // Larger SF never shrinks total estimated work.
        let bigger = build_plan(spec, &ctx, sf * 2.0);
        prop_assert!(bigger.total_estimated_work() >= plan.total_estimated_work() * 0.99);
    }

    /// SSB specs likewise.
    #[test]
    fn ssb_plans_valid_at_any_sf(qi in 0usize..13, sf in 0.1f64..100.0) {
        let ctx = ssb::context();
        let spec = &ssb::query_specs()[qi];
        let plan = build_plan(spec, &ctx, sf);
        prop_assert!(plan.validate().is_ok(), "{} invalid at sf {sf}", spec.name);
        // Every operator must reach the root (no disconnected islands):
        // topo order covers all ops and the root has no parents.
        prop_assert_eq!(plan.topo_order().len(), plan.num_ops());
        prop_assert!(plan.parents_of(plan.root).is_empty());
    }

    /// JOB queries (no SF) are valid and keep feature metadata within
    /// the benchmark's vocabulary.
    #[test]
    fn job_plans_valid_with_sane_features(qi in 0usize..113) {
        let ctx = job::context();
        let spec = &job::query_specs()[qi];
        let plan = build_plan(spec, &ctx, 1.0);
        prop_assert!(plan.validate().is_ok(), "{} invalid", spec.name);
        for op in &plan.ops {
            for &t in &op.input_tables {
                prop_assert!(t < job::NUM_TABLES, "table index {t} out of range");
            }
            // Scan bitmaps, when present, match the work-order count.
            if !op.block_bitmap.is_empty() {
                prop_assert!(op.block_bitmap.iter().any(|&b| b), "empty scan bitmap");
            }
        }
    }
}
