//! TPC-H: schema, scale-factor-aware query specs for all 22 queries, a
//! synthetic data generator, and executable plans for representative
//! queries on the real engine.
//!
//! The specs reproduce the *plan shapes* of the benchmark queries — join
//! counts and ordering, filter selectivities, aggregation output sizes,
//! pipeline chains — which is what the scheduler sees; see DESIGN.md §1
//! for why this substitution preserves the paper's experiments.

use std::sync::Arc;

use lsched_engine::block::Column;
use lsched_engine::catalog::{Catalog, Schema, Table};
use lsched_engine::cost::CostModel;
use lsched_engine::expr::{CmpOp, Predicate, ScalarExpr};
use lsched_engine::plan::{AggFunc, OpKind, OpSpec, PhysicalPlan, PlanBuilder};
use lsched_engine::value::ColumnType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{BenchContext, Node, QuerySpec};

/// Table indices.
pub mod tables {
    /// lineitem (6 M rows at SF 1).
    pub const LINEITEM: usize = 0;
    /// orders (1.5 M rows).
    pub const ORDERS: usize = 1;
    /// customer (150 k rows).
    pub const CUSTOMER: usize = 2;
    /// part (200 k rows).
    pub const PART: usize = 3;
    /// supplier (10 k rows).
    pub const SUPPLIER: usize = 4;
    /// partsupp (800 k rows).
    pub const PARTSUPP: usize = 5;
    /// nation (25 rows, unscaled).
    pub const NATION: usize = 6;
    /// region (5 rows, unscaled).
    pub const REGION: usize = 7;
}

/// Global column-id bases per table (widths follow the TPC-H schema).
pub mod cols {
    /// lineitem columns start (16 columns).
    pub const L: usize = 0;
    /// orders columns start (9 columns).
    pub const O: usize = 16;
    /// customer columns start (8 columns).
    pub const C: usize = 25;
    /// part columns start (9 columns).
    pub const P: usize = 33;
    /// supplier columns start (7 columns).
    pub const S: usize = 42;
    /// partsupp columns start (5 columns).
    pub const PS: usize = 49;
    /// nation columns start (4 columns).
    pub const N: usize = 54;
    /// region columns start (3 columns).
    pub const R: usize = 58;
}

/// The benchmark context (base rows at SF 1; nation/region stay fixed but
/// are so small the approximation is harmless).
pub fn context() -> BenchContext {
    BenchContext {
        name: "tpch",
        base_rows: vec![
            6_000_000.0, // lineitem
            1_500_000.0, // orders
            150_000.0,   // customer
            200_000.0,   // part
            10_000.0,    // supplier
            800_000.0,   // partsupp
            25.0,        // nation
            5.0,         // region
        ],
        cost: CostModel::default_model(),
    }
}

use tables::*;
use cols::{C, L, N, O, P, PS, R, S};

/// Specs for all 22 TPC-H queries.
pub fn query_specs() -> Vec<QuerySpec> {
    let q = |n: usize, root: Node| QuerySpec { name: format!("tpch_q{n:02}"), root };
    vec![
        // Q1: pricing summary report.
        q(1, Node::scan(LINEITEM, 0.98, vec![L + 10]).agg(4.0, vec![L + 8, L + 9]).sort(vec![L + 8])),
        // Q2: minimum cost supplier.
        q(2, {
            let sup_side = Node::scan(REGION, 0.2, vec![R + 1])
                .hash_join(Node::scan(NATION, 1.0, vec![N + 2]), 0.2, vec![N + 2, R])
                .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 0.2, vec![S + 3, N]);
            sup_side
                .hash_join(
                    Node::scan(PART, 0.004, vec![P + 4, P + 5])
                        .hash_join(Node::scan(PARTSUPP, 1.0, vec![PS]), 4.0e-3, vec![PS, P]),
                    0.2,
                    vec![PS + 1, S],
                )
                .topk(100.0, vec![S + 4])
        }),
        // Q3: shipping priority.
        q(3, Node::scan(CUSTOMER, 0.2, vec![C + 6])
            .hash_join(Node::scan(ORDERS, 0.48, vec![O + 4]), 0.2, vec![O + 1, C])
            .hash_join(Node::scan(LINEITEM, 0.54, vec![L + 10]), 0.096, vec![L, O])
            .agg(1_000_000.0, vec![L + 5, L + 6])
            .topk(10.0, vec![O + 4])),
        // Q4: order priority checking (semi-join shape).
        q(4, Node::scan(ORDERS, 0.038, vec![O + 4])
            .hash_join(Node::scan(LINEITEM, 0.63, vec![L + 11, L + 12]), 0.024, vec![L, O])
            .agg(5.0, vec![O + 5])
            .sort(vec![O + 5])),
        // Q5: local supplier volume (6-way join).
        q(5, Node::scan(REGION, 0.2, vec![R + 1])
            .hash_join(Node::scan(NATION, 1.0, vec![N + 2]), 0.2, vec![N + 2, R])
            .hash_join(Node::scan(CUSTOMER, 1.0, vec![C + 3]), 0.2, vec![C + 3, N])
            .hash_join(Node::scan(ORDERS, 0.15, vec![O + 4]), 0.03, vec![O + 1, C])
            .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 2]), 0.12, vec![L, O])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 1.0, vec![L + 2, S])
            .agg(5.0, vec![N + 1])
            .sort(vec![N + 1])),
        // Q6: forecasting revenue change (pure scan + aggregate).
        q(6, Node::scan(LINEITEM, 0.019, vec![L + 10, L + 6, L + 4]).agg(1.0, vec![L + 5, L + 6])),
        // Q7: volume shipping.
        q(7, Node::scan(NATION, 0.08, vec![N + 1])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 0.08, vec![S + 3, N])
            .hash_join(
                Node::scan(NATION, 0.08, vec![N + 1])
                    .hash_join(Node::scan(CUSTOMER, 1.0, vec![C + 3]), 0.08, vec![C + 3, N])
                    .hash_join(Node::scan(ORDERS, 1.0, vec![O + 1]), 0.08, vec![O + 1, C])
                    .hash_join(Node::scan(LINEITEM, 0.3, vec![L + 10]), 0.08, vec![L, O]),
                0.0016,
                vec![L + 2, S],
            )
            .agg(4.0, vec![N + 1, L + 10])
            .sort(vec![N + 1])),
        // Q8: national market share (8-way join).
        q(8, Node::scan(REGION, 0.2, vec![R + 1])
            .hash_join(Node::scan(NATION, 1.0, vec![N + 2]), 0.2, vec![N + 2, R])
            .hash_join(Node::scan(CUSTOMER, 1.0, vec![C + 3]), 0.2, vec![C + 3, N])
            .hash_join(Node::scan(ORDERS, 0.3, vec![O + 4]), 0.06, vec![O + 1, C])
            .hash_join(
                Node::scan(PART, 0.0067, vec![P + 4])
                    .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 1]), 0.0067, vec![L + 1, P]),
                0.3,
                vec![L, O],
            )
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 1.0, vec![L + 2, S])
            .hash_join(Node::scan(NATION, 1.0, vec![N + 2]), 1.0, vec![S + 3, N])
            .agg(2.0, vec![O + 4])
            .sort(vec![O + 4])),
        // Q9: product type profit measure.
        q(9, Node::scan(PART, 0.05, vec![P + 1])
            .hash_join(Node::scan(PARTSUPP, 1.0, vec![PS + 3]), 0.05, vec![PS, P])
            .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 1, L + 2]), 0.05, vec![L + 1, P])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 1.0, vec![L + 2, S])
            .hash_join(Node::scan(ORDERS, 1.0, vec![O + 4]), 1.0, vec![L, O])
            .hash_join(Node::scan(NATION, 1.0, vec![N + 1]), 1.0, vec![S + 3, N])
            .agg(175.0, vec![N + 1, O + 4])
            .sort(vec![N + 1])),
        // Q10: returned item reporting.
        q(10, Node::scan(CUSTOMER, 1.0, vec![C + 3])
            .hash_join(Node::scan(ORDERS, 0.038, vec![O + 4]), 0.038, vec![O + 1, C])
            .hash_join(Node::scan(LINEITEM, 0.25, vec![L + 8]), 0.036, vec![L, O])
            .hash_join(Node::scan(NATION, 1.0, vec![N + 1]), 1.0, vec![C + 3, N])
            .agg(38_000.0, vec![C, C + 1])
            .topk(20.0, vec![L + 5])),
        // Q11: important stock identification.
        q(11, Node::scan(NATION, 0.04, vec![N + 1])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 0.04, vec![S + 3, N])
            .hash_join(Node::scan(PARTSUPP, 1.0, vec![PS + 2, PS + 3]), 0.04, vec![PS + 1, S])
            .agg(29_000.0, vec![PS])
            .sort(vec![PS + 3])),
        // Q12: shipping modes and order priority.
        q(12, Node::scan(ORDERS, 1.0, vec![O + 5])
            .hash_join(Node::scan(LINEITEM, 0.005, vec![L + 14, L + 11]), 0.005, vec![L, O])
            .agg(2.0, vec![L + 14])
            .sort(vec![L + 14])),
        // Q13: customer distribution (two-level aggregation).
        q(13, Node::scan(CUSTOMER, 1.0, vec![C])
            .hash_join(Node::scan(ORDERS, 0.98, vec![O + 8]), 9.8, vec![O + 1, C])
            .agg(150_000.0, vec![C])
            .agg(40.0, vec![C])
            .sort(vec![C])),
        // Q14: promotion effect.
        q(14, Node::scan(PART, 1.0, vec![P + 4])
            .hash_join(Node::scan(LINEITEM, 0.0125, vec![L + 10]), 0.0125, vec![L + 1, P])
            .agg(1.0, vec![L + 5, L + 6])),
        // Q15: top supplier (aggregate then join).
        q(15, Node::scan(LINEITEM, 0.04, vec![L + 10])
            .agg(10_000.0, vec![L + 2])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 1]), 1.0, vec![L + 2, S])
            .sort(vec![S])),
        // Q16: parts/supplier relationship.
        q(16, Node::scan(PART, 0.1, vec![P + 3, P + 4, P + 5])
            .hash_join(Node::scan(PARTSUPP, 1.0, vec![PS + 1]), 0.1, vec![PS, P])
            .agg(18_000.0, vec![P + 3, P + 4, P + 5])
            .sort(vec![P + 3])),
        // Q17: small-quantity-order revenue (correlated agg subquery).
        q(17, Node::scan(PART, 0.001, vec![P + 3, P + 6])
            .hash_join(
                Node::scan(LINEITEM, 1.0, vec![L + 4]).agg(200_000.0, vec![L + 1, L + 4]),
                0.001,
                vec![L + 1, P],
            )
            .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 4, L + 5]), 0.001, vec![L + 1, P])
            .agg(1.0, vec![L + 5])),
        // Q18: large volume customer.
        q(18, Node::scan(LINEITEM, 1.0, vec![L + 4])
            .agg(1_500_000.0, vec![L])
            .select(0.0004, vec![L + 4])
            .hash_join(Node::scan(ORDERS, 1.0, vec![O + 3]), 4e-4, vec![O, L])
            .hash_join(Node::scan(CUSTOMER, 1.0, vec![C + 1]), 1.0, vec![O + 1, C])
            .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 4]), 4.0, vec![L, O])
            .topk(100.0, vec![O + 3])),
        // Q19: discounted revenue (disjunctive predicates).
        q(19, Node::scan(PART, 0.002, vec![P + 3, P + 5, P + 6])
            .hash_join(
                Node::scan(LINEITEM, 0.02, vec![L + 4, L + 13, L + 14]),
                0.002,
                vec![L + 1, P],
            )
            .agg(1.0, vec![L + 5, L + 6])),
        // Q20: potential part promotion.
        q(20, Node::scan(NATION, 0.04, vec![N + 1])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 0.04, vec![S + 3, N])
            .hash_join(
                Node::scan(PART, 0.01, vec![P + 1])
                    .hash_join(Node::scan(PARTSUPP, 1.0, vec![PS + 2]), 0.01, vec![PS, P])
                    .hash_join(
                        Node::scan(LINEITEM, 0.3, vec![L + 10]).agg(600_000.0, vec![L + 1, L + 2]),
                        1.0,
                        vec![PS, L + 1],
                    ),
                0.04,
                vec![PS + 1, S],
            )
            .sort(vec![S + 1])),
        // Q21: suppliers who kept orders waiting.
        q(21, Node::scan(NATION, 0.04, vec![N + 1])
            .hash_join(Node::scan(SUPPLIER, 1.0, vec![S + 3]), 0.04, vec![S + 3, N])
            .hash_join(Node::scan(LINEITEM, 0.5, vec![L + 11, L + 12]), 0.02, vec![L + 2, S])
            .hash_join(Node::scan(ORDERS, 0.49, vec![O + 2]), 0.5, vec![L, O])
            .hash_join(Node::scan(LINEITEM, 1.0, vec![L + 2]), 1.0, vec![L, O])
            .agg(10_000.0, vec![S + 1])
            .topk(100.0, vec![S + 1])),
        // Q22: global sales opportunity (anti-join shape).
        q(22, Node::scan(ORDERS, 1.0, vec![O + 1])
            .agg(100_000.0, vec![O + 1])
            .hash_join(Node::scan(CUSTOMER, 0.025, vec![C + 4, C + 5]), 0.02, vec![O + 1, C])
            .agg(7.0, vec![C + 4])
            .sort(vec![C + 4])),
    ]
}

/// Builds the plan pool used for workload generation: every query spec
/// lowered at every scale factor in `sfs` (the paper uses SF 2, 5, 10,
/// 50 and 100).
pub fn plan_pool(sfs: &[f64]) -> Vec<Arc<PhysicalPlan>> {
    let ctx = context();
    let specs = query_specs();
    let mut pool = Vec::with_capacity(specs.len() * sfs.len());
    for &sf in sfs {
        for spec in &specs {
            pool.push(Arc::new(crate::spec::build_plan(spec, &ctx, sf)));
        }
    }
    pool
}

/// The paper's TPC-H scale factors.
pub const PAPER_SCALE_FACTORS: [f64; 5] = [2.0, 5.0, 10.0, 50.0, 100.0];

// ---------------------------------------------------------------------
// Real data + executable plans (for the real engine).
// ---------------------------------------------------------------------

/// Generates a miniature TPC-H catalog with `sf` scaling the standard
/// row counts (use small values like 0.001–0.01: the real engine exists
/// to validate operators and calibrate costs, not to run SF 100).
///
/// Simplified column sets keep only what the executable queries touch;
/// keys are generated so that every foreign key matches.
pub fn gen_catalog(sf: f64, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();

    let n_orders = ((1_500_000.0 * sf) as usize).max(10);
    let n_lineitem = ((6_000_000.0 * sf) as usize).max(40);
    let n_customer = ((150_000.0 * sf) as usize).max(5);
    let rows_per_block = 4096;

    // customer(custkey, mktsegment, nationkey)
    let custkey: Vec<i64> = (0..n_customer as i64).collect();
    let mktsegment: Vec<i64> = (0..n_customer).map(|_| rng.gen_range(0..5)).collect();
    let c_nation: Vec<i64> = (0..n_customer).map(|_| rng.gen_range(0..25)).collect();
    cat.add_table(Table::from_columns(
        "customer",
        Schema::new(vec![
            ("c_custkey", ColumnType::Int64),
            ("c_mktsegment", ColumnType::Int64),
            ("c_nationkey", ColumnType::Int64),
        ]),
        vec![Column::I64(custkey), Column::I64(mktsegment), Column::I64(c_nation)],
        rows_per_block,
    ));

    // orders(orderkey, custkey, orderdate, shippriority)
    let orderkey: Vec<i64> = (0..n_orders as i64).collect();
    let o_custkey: Vec<i64> =
        (0..n_orders).map(|_| rng.gen_range(0..n_customer as i64)).collect();
    let orderdate: Vec<i64> = (0..n_orders).map(|_| rng.gen_range(0..2556)).collect();
    let shippriority: Vec<i64> = (0..n_orders).map(|_| rng.gen_range(0..2)).collect();
    cat.add_table(Table::from_columns(
        "orders",
        Schema::new(vec![
            ("o_orderkey", ColumnType::Int64),
            ("o_custkey", ColumnType::Int64),
            ("o_orderdate", ColumnType::Int64),
            ("o_shippriority", ColumnType::Int64),
        ]),
        vec![
            Column::I64(orderkey),
            Column::I64(o_custkey),
            Column::I64(orderdate),
            Column::I64(shippriority),
        ],
        rows_per_block,
    ));

    // lineitem(orderkey, quantity, extendedprice, discount, shipdate,
    //          returnflag, linestatus)
    let l_orderkey: Vec<i64> =
        (0..n_lineitem).map(|_| rng.gen_range(0..n_orders as i64)).collect();
    let quantity: Vec<f64> = (0..n_lineitem).map(|_| rng.gen_range(1.0..51.0)).collect();
    let extendedprice: Vec<f64> =
        (0..n_lineitem).map(|_| rng.gen_range(900.0..105_000.0)).collect();
    let discount: Vec<f64> = (0..n_lineitem).map(|_| rng.gen_range(0.0..0.11)).collect();
    let shipdate: Vec<i64> = (0..n_lineitem).map(|_| rng.gen_range(0..2556)).collect();
    let returnflag: Vec<i64> = (0..n_lineitem).map(|_| rng.gen_range(0..3)).collect();
    let linestatus: Vec<i64> = (0..n_lineitem).map(|_| rng.gen_range(0..2)).collect();
    cat.add_table(Table::from_columns(
        "lineitem",
        Schema::new(vec![
            ("l_orderkey", ColumnType::Int64),
            ("l_quantity", ColumnType::Float64),
            ("l_extendedprice", ColumnType::Float64),
            ("l_discount", ColumnType::Float64),
            ("l_shipdate", ColumnType::Int64),
            ("l_returnflag", ColumnType::Int64),
            ("l_linestatus", ColumnType::Int64),
        ]),
        vec![
            Column::I64(l_orderkey),
            Column::F64(quantity),
            Column::F64(extendedprice),
            Column::F64(discount),
            Column::I64(shipdate),
            Column::I64(returnflag),
            Column::I64(linestatus),
        ],
        rows_per_block,
    ));

    cat
}

fn scan_wos(cat: &Catalog, table: &str) -> u32 {
    cat.table_by_name(table).expect("table exists").num_blocks() as u32
}

/// Executable TPC-H Q1 (pricing summary): scan lineitem, filter on
/// shipdate, group by (returnflag, linestatus), aggregate.
pub fn q1_executable(cat: &Catalog, cost: &CostModel) -> Arc<PhysicalPlan> {
    let li = cat.table_id("lineitem").unwrap();
    let wos = scan_wos(cat, "lineitem");
    let rows_per_wo = cat.table(li).num_rows() as f64 / wos as f64;
    let mut b = PlanBuilder::new("tpch_q01_exec");
    let scan = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan {
            table: li,
            predicate: Predicate::col_cmp(4, CmpOp::Le, 2400i64),
            project: None,
        },
        vec![LINEITEM],
        vec![L + 10],
        0.94 * cat.table(li).num_rows() as f64,
        wos,
        cost.wo_duration_estimate(OpKind::TableScan, rows_per_wo),
        cost.wo_memory_estimate(OpKind::TableScan, rows_per_wo),
    );
    let agg = b.add_op(
        OpKind::Aggregate,
        OpSpec::Aggregate {
            group_by: vec![5, 6],
            aggs: vec![
                (AggFunc::Sum, ScalarExpr::col(1)),
                (AggFunc::Sum, ScalarExpr::col(2)),
                (AggFunc::Avg, ScalarExpr::col(3)),
                (AggFunc::Count, ScalarExpr::col(0)),
            ],
        },
        vec![LINEITEM],
        vec![L + 8, L + 9],
        6.0,
        wos,
        cost.wo_duration_estimate(OpKind::Aggregate, rows_per_wo),
        cost.wo_memory_estimate(OpKind::Aggregate, rows_per_wo),
    );
    let fin = b.add_op(
        OpKind::FinalizeAggregate,
        OpSpec::FinalizeAggregate,
        vec![LINEITEM],
        vec![L + 8, L + 9],
        6.0,
        1,
        cost.wo_duration_estimate(OpKind::FinalizeAggregate, 6.0),
        cost.wo_memory_estimate(OpKind::FinalizeAggregate, 6.0),
    );
    b.connect(scan, agg, true);
    b.connect(agg, fin, false);
    Arc::new(b.finish(fin))
}

/// Executable TPC-H Q6 (revenue change): scan lineitem with a
/// conjunctive filter, single-group aggregate of extendedprice*discount.
pub fn q6_executable(cat: &Catalog, cost: &CostModel) -> Arc<PhysicalPlan> {
    let li = cat.table_id("lineitem").unwrap();
    let wos = scan_wos(cat, "lineitem");
    let rows_per_wo = cat.table(li).num_rows() as f64 / wos as f64;
    let mut b = PlanBuilder::new("tpch_q06_exec");
    let pred = Predicate::col_cmp(4, CmpOp::Ge, 365i64)
        .and(Predicate::col_cmp(4, CmpOp::Lt, 730i64))
        .and(Predicate::col_cmp(3, CmpOp::Ge, 0.05))
        .and(Predicate::col_cmp(3, CmpOp::Le, 0.07))
        .and(Predicate::col_cmp(1, CmpOp::Lt, 24.0));
    let scan = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan { table: li, predicate: pred, project: None },
        vec![LINEITEM],
        vec![L + 10, L + 6, L + 4],
        0.019 * cat.table(li).num_rows() as f64,
        wos,
        cost.wo_duration_estimate(OpKind::TableScan, rows_per_wo),
        cost.wo_memory_estimate(OpKind::TableScan, rows_per_wo),
    );
    let agg = b.add_op(
        OpKind::Aggregate,
        OpSpec::Aggregate {
            group_by: vec![],
            aggs: vec![(
                AggFunc::Sum,
                ScalarExpr::arith(
                    lsched_engine::expr::ArithOp::Mul,
                    ScalarExpr::col(2),
                    ScalarExpr::col(3),
                ),
            )],
        },
        vec![LINEITEM],
        vec![L + 5, L + 6],
        1.0,
        wos,
        cost.wo_duration_estimate(OpKind::Aggregate, rows_per_wo),
        cost.wo_memory_estimate(OpKind::Aggregate, rows_per_wo),
    );
    let fin = b.add_op(
        OpKind::FinalizeAggregate,
        OpSpec::FinalizeAggregate,
        vec![LINEITEM],
        vec![L + 5, L + 6],
        1.0,
        1,
        cost.wo_duration_estimate(OpKind::FinalizeAggregate, 1.0),
        cost.wo_memory_estimate(OpKind::FinalizeAggregate, 1.0),
    );
    b.connect(scan, agg, true);
    b.connect(agg, fin, false);
    Arc::new(b.finish(fin))
}

/// Executable TPC-H Q3 (shipping priority): customer ⨝ orders ⨝
/// lineitem with filters, grouped revenue, top-10.
pub fn q3_executable(cat: &Catalog, cost: &CostModel) -> Arc<PhysicalPlan> {
    let cust = cat.table_id("customer").unwrap();
    let ord = cat.table_id("orders").unwrap();
    let li = cat.table_id("lineitem").unwrap();
    let mut b = PlanBuilder::new("tpch_q03_exec");
    let est = |k: OpKind, rows: f64, wos: u32| {
        (cost.wo_duration_estimate(k, rows / wos as f64), cost.wo_memory_estimate(k, rows / wos as f64))
    };

    let cust_wos = scan_wos(cat, "customer");
    let (d, m) = est(OpKind::TableScan, cat.table(cust).num_rows() as f64, cust_wos);
    let scan_c = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan {
            table: cust,
            predicate: Predicate::col_cmp(1, CmpOp::Eq, 1i64), // mktsegment = BUILDING
            project: Some(vec![0]),
        },
        vec![CUSTOMER],
        vec![C + 6],
        0.2 * cat.table(cust).num_rows() as f64,
        cust_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::BuildHash, 0.2 * cat.table(cust).num_rows() as f64, cust_wos);
    let build_c = b.add_op(
        OpKind::BuildHash,
        OpSpec::BuildHash { keys: vec![0] },
        vec![CUSTOMER],
        vec![C],
        0.2 * cat.table(cust).num_rows() as f64,
        cust_wos,
        d,
        m,
    );
    b.connect(scan_c, build_c, true);

    let ord_wos = scan_wos(cat, "orders");
    let (d, m) = est(OpKind::TableScan, cat.table(ord).num_rows() as f64, ord_wos);
    let scan_o = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan {
            table: ord,
            predicate: Predicate::col_cmp(2, CmpOp::Lt, 1228i64), // orderdate < 1995-03-15
            project: None,
        },
        vec![ORDERS],
        vec![O + 4],
        0.48 * cat.table(ord).num_rows() as f64,
        ord_wos,
        d,
        m,
    );
    // probe on o_custkey (col 1 of orders output).
    let (d, m) = est(OpKind::ProbeHash, 0.48 * cat.table(ord).num_rows() as f64, ord_wos);
    let probe_co = b.add_op(
        OpKind::ProbeHash,
        OpSpec::ProbeHash { keys: vec![1] },
        vec![CUSTOMER, ORDERS],
        vec![O + 1, C],
        0.096 * cat.table(ord).num_rows() as f64,
        ord_wos,
        d,
        m,
    );
    b.connect(build_c, probe_co, false);
    b.connect(scan_o, probe_co, true);

    // Build hash over joined (c_custkey, o_orderkey, o_custkey,
    // o_orderdate, o_shippriority) keyed on o_orderkey (col 1).
    let (d, m) = est(OpKind::BuildHash, 0.096 * cat.table(ord).num_rows() as f64, ord_wos);
    let build_o = b.add_op(
        OpKind::BuildHash,
        OpSpec::BuildHash { keys: vec![1] },
        vec![CUSTOMER, ORDERS],
        vec![O],
        0.096 * cat.table(ord).num_rows() as f64,
        ord_wos,
        d,
        m,
    );
    b.connect(probe_co, build_o, true);

    let li_wos = scan_wos(cat, "lineitem");
    let (d, m) = est(OpKind::TableScan, cat.table(li).num_rows() as f64, li_wos);
    let scan_l = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan {
            table: li,
            predicate: Predicate::col_cmp(4, CmpOp::Gt, 1228i64), // shipdate > 1995-03-15
            project: Some(vec![0, 2, 3]),
        },
        vec![LINEITEM],
        vec![L + 10],
        0.54 * cat.table(li).num_rows() as f64,
        li_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::ProbeHash, 0.54 * cat.table(li).num_rows() as f64, li_wos);
    let probe_l = b.add_op(
        OpKind::ProbeHash,
        OpSpec::ProbeHash { keys: vec![0] }, // l_orderkey
        vec![CUSTOMER, ORDERS, LINEITEM],
        vec![L, O],
        0.05 * cat.table(li).num_rows() as f64,
        li_wos,
        d,
        m,
    );
    b.connect(build_o, probe_l, false);
    b.connect(scan_l, probe_l, true);

    // Joined schema: (c_custkey, o_orderkey, o_custkey, o_orderdate,
    // o_shippriority, l_orderkey, l_extendedprice, l_discount).
    let (d, m) = est(OpKind::Aggregate, 0.05 * cat.table(li).num_rows() as f64, li_wos);
    let agg = b.add_op(
        OpKind::Aggregate,
        OpSpec::Aggregate {
            group_by: vec![1, 3, 4],
            aggs: vec![(
                AggFunc::Sum,
                ScalarExpr::arith(
                    lsched_engine::expr::ArithOp::Mul,
                    ScalarExpr::col(6),
                    ScalarExpr::arith(
                        lsched_engine::expr::ArithOp::Sub,
                        ScalarExpr::lit(1.0),
                        ScalarExpr::col(7),
                    ),
                ),
            )],
        },
        vec![CUSTOMER, ORDERS, LINEITEM],
        vec![L + 5, L + 6],
        1000.0,
        li_wos,
        d,
        m,
    );
    b.connect(probe_l, agg, true);
    let fin = b.add_op(
        OpKind::FinalizeAggregate,
        OpSpec::FinalizeAggregate,
        vec![CUSTOMER, ORDERS, LINEITEM],
        vec![L + 5],
        1000.0,
        1,
        cost.wo_duration_estimate(OpKind::FinalizeAggregate, 1000.0),
        cost.wo_memory_estimate(OpKind::FinalizeAggregate, 1000.0),
    );
    b.connect(agg, fin, false);
    let topk = b.add_op(
        OpKind::TopK,
        OpSpec::TopK { k: 10, col: 3, desc: true },
        vec![CUSTOMER, ORDERS, LINEITEM],
        vec![O + 4],
        10.0,
        1,
        cost.wo_duration_estimate(OpKind::TopK, 1000.0),
        cost.wo_memory_estimate(OpKind::TopK, 1000.0),
    );
    b.connect(fin, topk, false);
    Arc::new(b.finish(topk))
}

/// Executable TPC-H Q12 (shipping modes): orders ⨝ lineitem with a
/// shipdate filter, projected to (shippriority-class, counter), grouped
/// counts per class. Exercises the Project operator end-to-end.
pub fn q12_executable(cat: &Catalog, cost: &CostModel) -> Arc<PhysicalPlan> {
    use lsched_engine::expr::ArithOp;
    let ord = cat.table_id("orders").unwrap();
    let li = cat.table_id("lineitem").unwrap();
    let mut b = PlanBuilder::new("tpch_q12_exec");
    let est = |k: OpKind, rows: f64, wos: u32| {
        (
            cost.wo_duration_estimate(k, rows / wos as f64),
            cost.wo_memory_estimate(k, rows / wos as f64),
        )
    };

    let ord_wos = scan_wos(cat, "orders");
    let (d, m) = est(OpKind::TableScan, cat.table(ord).num_rows() as f64, ord_wos);
    let scan_o = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan { table: ord, predicate: Predicate::True, project: Some(vec![0, 3]) },
        vec![ORDERS],
        vec![O + 5],
        cat.table(ord).num_rows() as f64,
        ord_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::BuildHash, cat.table(ord).num_rows() as f64, ord_wos);
    let build_o = b.add_op(
        OpKind::BuildHash,
        OpSpec::BuildHash { keys: vec![0] },
        vec![ORDERS],
        vec![O],
        cat.table(ord).num_rows() as f64,
        ord_wos,
        d,
        m,
    );
    b.connect(scan_o, build_o, true);

    let li_wos = scan_wos(cat, "lineitem");
    let (d, m) = est(OpKind::TableScan, cat.table(li).num_rows() as f64, li_wos);
    let scan_l = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan {
            table: li,
            // Receipt-year window, ~20% of rows.
            predicate: Predicate::col_cmp(4, CmpOp::Ge, 365i64)
                .and(Predicate::col_cmp(4, CmpOp::Lt, 876i64)),
            project: Some(vec![0]),
        },
        vec![LINEITEM],
        vec![L + 14, L + 11],
        0.2 * cat.table(li).num_rows() as f64,
        li_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::ProbeHash, 0.2 * cat.table(li).num_rows() as f64, li_wos);
    let probe = b.add_op(
        OpKind::ProbeHash,
        OpSpec::ProbeHash { keys: vec![0] }, // l_orderkey against o_orderkey
        vec![ORDERS, LINEITEM],
        vec![L, O],
        0.2 * cat.table(li).num_rows() as f64,
        li_wos,
        d,
        m,
    );
    b.connect(build_o, probe, false);
    b.connect(scan_l, probe, true);

    // Joined schema: (o_orderkey, o_shippriority, l_orderkey). Project
    // to (priority_class = shippriority * 1, one) for counting.
    let (d, m) = est(OpKind::Project, 0.2 * cat.table(li).num_rows() as f64, li_wos);
    let project = b.add_op(
        OpKind::Project,
        OpSpec::Project {
            exprs: vec![
                ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(1), ScalarExpr::lit(1i64)),
                ScalarExpr::lit(1i64),
            ],
        },
        vec![ORDERS, LINEITEM],
        vec![O + 5],
        0.2 * cat.table(li).num_rows() as f64,
        li_wos,
        d,
        m,
    );
    b.connect(probe, project, true);

    let (d, m) = est(OpKind::Aggregate, 0.2 * cat.table(li).num_rows() as f64, li_wos);
    let agg = b.add_op(
        OpKind::Aggregate,
        OpSpec::Aggregate {
            group_by: vec![0],
            aggs: vec![(AggFunc::Count, ScalarExpr::col(1))],
        },
        vec![ORDERS, LINEITEM],
        vec![O + 5],
        2.0,
        li_wos,
        d,
        m,
    );
    b.connect(project, agg, true);
    let fin = b.add_op(
        OpKind::FinalizeAggregate,
        OpSpec::FinalizeAggregate,
        vec![ORDERS, LINEITEM],
        vec![O + 5],
        2.0,
        1,
        cost.wo_duration_estimate(OpKind::FinalizeAggregate, 2.0),
        cost.wo_memory_estimate(OpKind::FinalizeAggregate, 2.0),
    );
    b.connect(agg, fin, false);
    Arc::new(b.finish(fin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_plan;

    #[test]
    fn all_22_specs_lower_to_valid_plans() {
        let ctx = context();
        let specs = query_specs();
        assert_eq!(specs.len(), 22);
        for spec in &specs {
            let plan = build_plan(spec, &ctx, 1.0);
            assert!(plan.validate().is_ok(), "{} invalid", spec.name);
            assert!(plan.num_ops() >= 3, "{} too trivial", spec.name);
        }
    }

    #[test]
    fn join_counts_match_benchmark_character() {
        let specs = query_specs();
        let by_name = |n: &str| {
            specs.iter().find(|s| s.name == n).unwrap().root.join_count()
        };
        assert_eq!(by_name("tpch_q01"), 0);
        assert_eq!(by_name("tpch_q06"), 0);
        assert_eq!(by_name("tpch_q03"), 2);
        assert!(by_name("tpch_q08") >= 7);
        assert!(by_name("tpch_q05") >= 5);
    }

    #[test]
    fn pool_covers_specs_times_sfs() {
        let pool = plan_pool(&[1.0, 10.0]);
        assert_eq!(pool.len(), 44);
        assert!(pool.iter().any(|p| p.name == "tpch_q01"));
        assert!(pool.iter().any(|p| p.name == "tpch_q01_sf10"));
    }

    #[test]
    fn bigger_sf_means_more_estimated_work() {
        let ctx = context();
        let q3 = &query_specs()[2];
        let small = build_plan(q3, &ctx, 2.0);
        let big = build_plan(q3, &ctx, 50.0);
        assert!(big.total_estimated_work() > small.total_estimated_work() * 5.0);
    }

    #[test]
    fn catalog_generation_has_consistent_keys() {
        let cat = gen_catalog(0.001, 7);
        let orders = cat.table_by_name("orders").unwrap();
        let customer = cat.table_by_name("customer").unwrap();
        assert!(orders.num_rows() >= 10);
        // Every o_custkey must reference an existing customer.
        let n_cust = customer.num_rows() as i64;
        for b in &orders.blocks {
            if let Column::I64(keys) = &b.columns[1] {
                assert!(keys.iter().all(|&k| k >= 0 && k < n_cust));
            }
        }
    }

    #[test]
    fn executable_plans_validate() {
        let cat = gen_catalog(0.001, 7);
        let cost = CostModel::default_model();
        for plan in [
            q1_executable(&cat, &cost),
            q6_executable(&cat, &cost),
            q3_executable(&cat, &cost),
        ] {
            assert!(plan.validate().is_ok(), "{} invalid", plan.name);
        }
    }
}
