//! A compact query-specification DSL and the generic physical-plan
//! builder that turns a spec into a simulator-ready [`PhysicalPlan`].
//!
//! Each benchmark (TPC-H, SSB, JOB) describes its queries as a tree of
//! [`Node`]s — scans with selectivities, joins with fan-outs, aggregates,
//! sorts — and [`build_plan`] lowers that tree into the work-order
//! operator DAG Quickstep's optimizer would emit: scans feed selects
//! through non-pipeline-breaking edges, hash joins expand into BuildHash →
//! ProbeHash pairs with a pipeline-breaking edge between them,
//! aggregations into partial + finalize, sorts into run generation plus
//! merge. Cardinalities propagate through the tree from the
//! scale-factor-scaled base table rows, and the [`CostModel`] supplies
//! per-work-order duration/memory estimates.

use lsched_engine::cost::CostModel;
use lsched_engine::plan::{OpId, OpKind, OpSpec, PhysicalPlan, PlanBuilder};

/// Rows processed per work order (the block size of simulator plans).
pub const ROWS_PER_WORK_ORDER: f64 = 100_000.0;

/// Cap on work orders per operator (very large scans are chunked into
/// proportionally larger blocks, as Quickstep does with its block size).
pub const MAX_WORK_ORDERS: u32 = 192;

/// How a join is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// BuildHash + ProbeHash pair (build side = left child).
    Hash,
    /// Nested-loops join (both children materialized first).
    NestedLoops,
    /// Index nested-loops join (right child must be an index scan).
    IndexNested,
}

/// One node of a query spec tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// Scan a base table, filtering down to `selectivity` of its rows.
    Scan {
        /// Benchmark-local table index (drives O-IN).
        table: usize,
        /// Fraction of rows surviving the scan's predicate.
        selectivity: f64,
        /// Global column ids used (drives O-COLS).
        cols: Vec<usize>,
        /// Use an index scan instead of a full scan.
        indexed: bool,
    },
    /// An additional filter over a child.
    Select {
        /// Input subtree.
        input: Box<Node>,
        /// Fraction of input rows surviving.
        selectivity: f64,
        /// Global column ids used.
        cols: Vec<usize>,
    },
    /// A binary join; output rows = probe rows × `fanout`.
    Join {
        /// Build (left) subtree.
        build: Box<Node>,
        /// Probe (right) subtree.
        probe: Box<Node>,
        /// Execution strategy.
        kind: JoinKind,
        /// Output rows per probe row.
        fanout: f64,
        /// Global column ids of the join keys.
        cols: Vec<usize>,
    },
    /// Group-by aggregation producing `out_rows` groups.
    Agg {
        /// Input subtree.
        input: Box<Node>,
        /// Number of output groups.
        out_rows: f64,
        /// Global column ids used.
        cols: Vec<usize>,
    },
    /// Full sort of the input.
    Sort {
        /// Input subtree.
        input: Box<Node>,
        /// Global column ids of the sort keys.
        cols: Vec<usize>,
    },
    /// Keep the best `k` rows.
    TopK {
        /// Input subtree.
        input: Box<Node>,
        /// Rows kept.
        k: f64,
        /// Global column ids used.
        cols: Vec<usize>,
    },
}

impl Node {
    /// Scan helper.
    pub fn scan(table: usize, selectivity: f64, cols: Vec<usize>) -> Node {
        Node::Scan { table, selectivity, cols, indexed: false }
    }

    /// Index-scan helper.
    pub fn index_scan(table: usize, selectivity: f64, cols: Vec<usize>) -> Node {
        Node::Scan { table, selectivity, cols, indexed: true }
    }

    /// Filter helper.
    pub fn select(self, selectivity: f64, cols: Vec<usize>) -> Node {
        Node::Select { input: Box::new(self), selectivity, cols }
    }

    /// Hash-join helper (`self` is the build side).
    pub fn hash_join(self, probe: Node, fanout: f64, cols: Vec<usize>) -> Node {
        Node::Join { build: Box::new(self), probe: Box::new(probe), kind: JoinKind::Hash, fanout, cols }
    }

    /// Aggregation helper.
    pub fn agg(self, out_rows: f64, cols: Vec<usize>) -> Node {
        Node::Agg { input: Box::new(self), out_rows, cols }
    }

    /// Sort helper.
    pub fn sort(self, cols: Vec<usize>) -> Node {
        Node::Sort { input: Box::new(self), cols }
    }

    /// Top-k helper.
    pub fn topk(self, k: f64, cols: Vec<usize>) -> Node {
        Node::TopK { input: Box::new(self), k, cols }
    }

    /// Number of join nodes in the subtree.
    pub fn join_count(&self) -> usize {
        match self {
            Node::Scan { .. } => 0,
            Node::Select { input, .. } | Node::Agg { input, .. } | Node::Sort { input, .. }
            | Node::TopK { input, .. } => input.join_count(),
            Node::Join { build, probe, .. } => 1 + build.join_count() + probe.join_count(),
        }
    }
}

/// A named query spec plus the benchmark's base-table row counts.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query name, e.g. `"tpch_q03"`.
    pub name: String,
    /// Root of the spec tree.
    pub root: Node,
}

/// Per-benchmark context needed to lower specs into plans.
#[derive(Debug, Clone)]
pub struct BenchContext {
    /// Benchmark name.
    pub name: &'static str,
    /// Rows of each table at scale factor 1, indexed by table index.
    pub base_rows: Vec<f64>,
    /// Cost model used for optimizer estimates.
    pub cost: CostModel,
}

impl BenchContext {
    /// Rows of `table` at the given scale factor.
    pub fn rows(&self, table: usize, sf: f64) -> f64 {
        self.base_rows[table] * sf
    }
}

fn wo_count(rows: f64) -> u32 {
    ((rows / ROWS_PER_WORK_ORDER).ceil() as u32).clamp(1, MAX_WORK_ORDERS)
}

struct Lowering<'a> {
    b: PlanBuilder,
    ctx: &'a BenchContext,
    sf: f64,
    bitmap_salt: u64,
}

struct Lowered {
    op: OpId,
    rows: f64,
    tables: Vec<usize>,
}

impl Lowering<'_> {
    fn add(
        &mut self,
        kind: OpKind,
        tables: Vec<usize>,
        cols: Vec<usize>,
        in_rows: f64,
        out_rows: f64,
    ) -> OpId {
        let wos = wo_count(in_rows);
        let rows_per_wo = in_rows / wos as f64;
        let dur = self.ctx.cost.wo_duration_estimate(kind, rows_per_wo);
        let mem = self.ctx.cost.wo_memory_estimate(kind, rows_per_wo);
        self.b.add_op(kind, OpSpec::Synthetic, tables, cols, out_rows, wos, dur, mem)
    }

    fn lower(&mut self, node: &Node) -> Lowered {
        match node {
            Node::Scan { table, selectivity, cols, indexed } => {
                let trows = self.ctx.rows(*table, self.sf);
                let out = trows * selectivity;
                let kind = if *indexed { OpKind::IndexScan } else { OpKind::TableScan };
                let in_rows = if *indexed { out.max(1.0) } else { trows };
                let op = self.add(kind, vec![*table], cols.clone(), in_rows, out);
                // Block bitmap: the contiguous fraction of the table's
                // blocks this query touches, offset per query for variety.
                let nblocks = wo_count(trows) as usize;
                let touched = ((nblocks as f64 * selectivity).ceil() as usize).clamp(1, nblocks);
                let start = (self.bitmap_salt as usize).wrapping_mul(2654435761) % (nblocks - touched + 1).max(1);
                let bitmap: Vec<bool> =
                    (0..nblocks).map(|i| i >= start && i < start + touched).collect();
                self.b.set_block_bitmap(op, bitmap);
                self.bitmap_salt = self.bitmap_salt.wrapping_add(1);
                Lowered { op, rows: out, tables: vec![*table] }
            }
            Node::Select { input, selectivity, cols } => {
                let child = self.lower(input);
                let out = child.rows * selectivity;
                let op = self.add(OpKind::Select, child.tables.clone(), cols.clone(), child.rows, out);
                self.b.connect(child.op, op, true);
                Lowered { op, rows: out, tables: child.tables }
            }
            Node::Join { build, probe, kind, fanout, cols } => {
                let l = self.lower(build);
                let r = self.lower(probe);
                let mut tables = l.tables.clone();
                for t in &r.tables {
                    if !tables.contains(t) {
                        tables.push(*t);
                    }
                }
                let out = r.rows * fanout;
                match kind {
                    JoinKind::Hash => {
                        let bh = self.add(OpKind::BuildHash, l.tables.clone(), cols.clone(), l.rows, l.rows);
                        self.b.connect(l.op, bh, true);
                        let ph = self.add(OpKind::ProbeHash, tables.clone(), cols.clone(), r.rows, out);
                        self.b.connect(bh, ph, false);
                        self.b.connect(r.op, ph, true);
                        Lowered { op: ph, rows: out, tables }
                    }
                    JoinKind::NestedLoops => {
                        let nl = self.add(
                            OpKind::NestedLoopsJoin,
                            tables.clone(),
                            cols.clone(),
                            l.rows + r.rows,
                            out,
                        );
                        self.b.connect(l.op, nl, false);
                        self.b.connect(r.op, nl, true);
                        Lowered { op: nl, rows: out, tables }
                    }
                    JoinKind::IndexNested => {
                        let inl = self.add(
                            OpKind::IndexNestedLoopsJoin,
                            tables.clone(),
                            cols.clone(),
                            r.rows,
                            out,
                        );
                        self.b.connect(l.op, inl, false);
                        self.b.connect(r.op, inl, true);
                        Lowered { op: inl, rows: out, tables }
                    }
                }
            }
            Node::Agg { input, out_rows, cols } => {
                let child = self.lower(input);
                let partial = self.add(
                    OpKind::Aggregate,
                    child.tables.clone(),
                    cols.clone(),
                    child.rows,
                    *out_rows,
                );
                self.b.connect(child.op, partial, true);
                let fin = self.add(
                    OpKind::FinalizeAggregate,
                    child.tables.clone(),
                    cols.clone(),
                    out_rows.max(1.0),
                    *out_rows,
                );
                self.b.connect(partial, fin, false);
                Lowered { op: fin, rows: *out_rows, tables: child.tables }
            }
            Node::Sort { input, cols } => {
                let child = self.lower(input);
                let run = self.add(
                    OpKind::SortRunGeneration,
                    child.tables.clone(),
                    cols.clone(),
                    child.rows,
                    child.rows,
                );
                self.b.connect(child.op, run, true);
                let merge = self.add(
                    OpKind::SortMergeRun,
                    child.tables.clone(),
                    cols.clone(),
                    child.rows,
                    child.rows,
                );
                self.b.connect(run, merge, false);
                Lowered { op: merge, rows: child.rows, tables: child.tables }
            }
            Node::TopK { input, k, cols } => {
                let child = self.lower(input);
                let op = self.add(OpKind::TopK, child.tables.clone(), cols.clone(), child.rows, *k);
                self.b.connect(child.op, op, false);
                Lowered { op, rows: *k, tables: child.tables }
            }
        }
    }
}

/// Lowers a [`QuerySpec`] into a simulator-ready plan at scale factor
/// `sf`, naming it `"{spec.name}_sf{sf}"`.
pub fn build_plan(spec: &QuerySpec, ctx: &BenchContext, sf: f64) -> PhysicalPlan {
    let name = if (sf - 1.0).abs() < 1e-12 {
        spec.name.clone()
    } else {
        format!("{}_sf{sf}", spec.name)
    };
    let mut lowering = Lowering {
        b: PlanBuilder::new(name),
        ctx,
        sf,
        bitmap_salt: spec.name.bytes().map(u64::from).sum(),
    };
    let root = lowering.lower(&spec.root);
    lowering.b.finish(root.op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BenchContext {
        BenchContext {
            name: "test",
            base_rows: vec![1_000_000.0, 200_000.0, 10_000.0],
            cost: CostModel::default_model(),
        }
    }

    fn sample_spec() -> QuerySpec {
        // dim ⨝ (fact σ) then aggregate and top-k.
        QuerySpec {
            name: "sample".into(),
            root: Node::scan(2, 0.5, vec![20])
                .hash_join(Node::scan(0, 0.2, vec![0, 1]).select(0.5, vec![2]), 0.9, vec![0, 20])
                .agg(100.0, vec![3])
                .topk(10.0, vec![3]),
        }
    }

    #[test]
    fn lowering_produces_valid_plan() {
        let plan = build_plan(&sample_spec(), &ctx(), 1.0);
        assert!(plan.validate().is_ok());
        // scan, scan, select, build, probe, agg, fin, topk = 8 ops.
        assert_eq!(plan.num_ops(), 8);
        assert_eq!(plan.op(plan.root).kind, OpKind::TopK);
    }

    #[test]
    fn edges_have_expected_breaking_pattern() {
        let plan = build_plan(&sample_spec(), &ctx(), 1.0);
        let breaking: Vec<(OpKind, OpKind)> = plan
            .edges
            .iter()
            .filter(|e| !e.non_pipeline_breaking)
            .map(|e| (plan.op(e.child).kind, plan.op(e.parent).kind))
            .collect();
        assert!(breaking.contains(&(OpKind::BuildHash, OpKind::ProbeHash)));
        assert!(breaking.contains(&(OpKind::Aggregate, OpKind::FinalizeAggregate)));
        assert!(breaking.contains(&(OpKind::FinalizeAggregate, OpKind::TopK)));
    }

    #[test]
    fn scale_factor_scales_work_orders() {
        let p1 = build_plan(&sample_spec(), &ctx(), 1.0);
        let p10 = build_plan(&sample_spec(), &ctx(), 10.0);
        let w1: u32 = p1.ops.iter().map(|o| o.num_work_orders).sum();
        let w10: u32 = p10.ops.iter().map(|o| o.num_work_orders).sum();
        assert!(w10 > w1, "{w10} should exceed {w1}");
        assert!(p10.name.contains("sf10"));
    }

    #[test]
    fn scan_bitmap_matches_selectivity() {
        let plan = build_plan(&sample_spec(), &ctx(), 1.0);
        // Fact scan: table 0 (1M rows → 10 blocks), selectivity 0.2 → 2 blocks.
        let scan = plan
            .ops
            .iter()
            .find(|o| o.kind == OpKind::TableScan && o.input_tables == vec![0])
            .unwrap();
        assert_eq!(scan.block_bitmap.len(), 10);
        assert_eq!(scan.block_bitmap.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn join_count_counts_joins() {
        assert_eq!(sample_spec().root.join_count(), 1);
        let deep = Node::scan(0, 1.0, vec![])
            .hash_join(Node::scan(1, 1.0, vec![]), 1.0, vec![])
            .hash_join(Node::scan(2, 1.0, vec![]), 1.0, vec![]);
        assert_eq!(deep.join_count(), 2);
    }

    #[test]
    fn work_order_cap_respected() {
        let spec = QuerySpec { name: "huge".into(), root: Node::scan(0, 1.0, vec![]) };
        let plan = build_plan(&spec, &ctx(), 10_000.0);
        assert!(plan.ops.iter().all(|o| o.num_work_orders <= MAX_WORK_ORDERS));
    }
}
