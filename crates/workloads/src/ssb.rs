//! The Star Schema Benchmark: 5 tables, 13 queries in 4 flights.
//!
//! SSB is a denormalized star over `lineorder` with four dimensions;
//! every query joins `lineorder` against one to four dimensions with
//! increasingly selective filters, then aggregates. The specs below
//! reproduce the published flight structure and selectivities.

use std::sync::Arc;

use lsched_engine::block::Column;
use lsched_engine::catalog::{Catalog, Schema, Table};
use lsched_engine::cost::CostModel;
use lsched_engine::expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
use lsched_engine::plan::{AggFunc, OpKind, OpSpec, PhysicalPlan, PlanBuilder};
use lsched_engine::value::ColumnType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{BenchContext, Node, QuerySpec};

/// Table indices.
pub mod tables {
    /// lineorder (6 M rows at SF 1).
    pub const LINEORDER: usize = 0;
    /// customer (30 k rows).
    pub const CUSTOMER: usize = 1;
    /// supplier (2 k rows).
    pub const SUPPLIER: usize = 2;
    /// part (200 k rows).
    pub const PART: usize = 3;
    /// date (2 556 rows, unscaled).
    pub const DATE: usize = 4;
}

/// Global column-id bases.
pub mod cols {
    /// lineorder columns start (17 columns).
    pub const LO: usize = 0;
    /// customer columns start (8 columns).
    pub const C: usize = 17;
    /// supplier columns start (7 columns).
    pub const S: usize = 25;
    /// part columns start (9 columns).
    pub const P: usize = 32;
    /// date columns start (17 columns).
    pub const D: usize = 41;
}

use cols::{C, D, LO, P, S};
use tables::*;

/// The benchmark context.
pub fn context() -> BenchContext {
    BenchContext {
        name: "ssb",
        base_rows: vec![6_000_000.0, 30_000.0, 2_000.0, 200_000.0, 2_556.0],
        cost: CostModel::default_model(),
    }
}

/// Specs for all 13 SSB queries (flights 1–4).
pub fn query_specs() -> Vec<QuerySpec> {
    let q = |name: &str, root: Node| QuerySpec { name: format!("ssb_{name}"), root };
    vec![
        // Flight 1: lineorder ⨝ date, revenue sum, varying selectivity.
        q("q1_1", Node::scan(DATE, 1.0 / 7.0, vec![D + 4])
            .hash_join(
                Node::scan(LINEORDER, 0.47, vec![LO + 11, LO + 8]),
                1.0 / 7.0,
                vec![LO + 5, D],
            )
            .agg(1.0, vec![LO + 12, LO + 11])),
        q("q1_2", Node::scan(DATE, 1.0 / 84.0, vec![D + 5])
            .hash_join(
                Node::scan(LINEORDER, 0.2, vec![LO + 11, LO + 8]),
                1.0 / 84.0,
                vec![LO + 5, D],
            )
            .agg(1.0, vec![LO + 12, LO + 11])),
        q("q1_3", Node::scan(DATE, 1.0 / 364.0, vec![D + 6])
            .hash_join(
                Node::scan(LINEORDER, 0.1, vec![LO + 11, LO + 8]),
                1.0 / 364.0,
                vec![LO + 5, D],
            )
            .agg(1.0, vec![LO + 12, LO + 11])),
        // Flight 2: lineorder ⨝ date ⨝ part ⨝ supplier, group by year/brand.
        q("q2_1", Node::scan(PART, 1.0 / 25.0, vec![P + 3])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 5])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 4]), 0.2, vec![LO + 4, S]),
                1.0 / 25.0,
                vec![LO + 3, P],
            )
            .hash_join(Node::scan(DATE, 1.0, vec![D + 4]), 1.0, vec![LO + 5, D])
            .agg(280.0, vec![D + 4, P + 4])
            .sort(vec![D + 4, P + 4])),
        q("q2_2", Node::scan(PART, 1.0 / 125.0, vec![P + 4])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 5])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 4]), 0.2, vec![LO + 4, S]),
                1.0 / 125.0,
                vec![LO + 3, P],
            )
            .hash_join(Node::scan(DATE, 1.0, vec![D + 4]), 1.0, vec![LO + 5, D])
            .agg(56.0, vec![D + 4, P + 4])
            .sort(vec![D + 4, P + 4])),
        q("q2_3", Node::scan(PART, 1.0 / 1000.0, vec![P + 4])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 5])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 4]), 0.2, vec![LO + 4, S]),
                1.0 / 1000.0,
                vec![LO + 3, P],
            )
            .hash_join(Node::scan(DATE, 1.0, vec![D + 4]), 1.0, vec![LO + 5, D])
            .agg(7.0, vec![D + 4, P + 4])
            .sort(vec![D + 4, P + 4])),
        // Flight 3: customer/supplier geography over time.
        q("q3_1", Node::scan(CUSTOMER, 0.2, vec![C + 4])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 4])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 2]), 0.2, vec![LO + 4, S]),
                0.2,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 6.0 / 7.0, vec![D + 4]), 6.0 / 7.0, vec![LO + 5, D])
            .agg(150.0, vec![C + 5, S + 5, D + 4])
            .sort(vec![D + 4])),
        q("q3_2", Node::scan(CUSTOMER, 1.0 / 25.0, vec![C + 5])
            .hash_join(
                Node::scan(SUPPLIER, 1.0 / 25.0, vec![S + 5])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 2]), 1.0 / 25.0, vec![LO + 4, S]),
                1.0 / 25.0,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 6.0 / 7.0, vec![D + 4]), 6.0 / 7.0, vec![LO + 5, D])
            .agg(600.0, vec![C + 6, S + 6, D + 4])
            .sort(vec![D + 4])),
        q("q3_3", Node::scan(CUSTOMER, 1.0 / 125.0, vec![C + 6])
            .hash_join(
                Node::scan(SUPPLIER, 1.0 / 125.0, vec![S + 6])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 2]), 1.0 / 125.0, vec![LO + 4, S]),
                1.0 / 125.0,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 6.0 / 7.0, vec![D + 4]), 6.0 / 7.0, vec![LO + 5, D])
            .agg(24.0, vec![C + 6, S + 6, D + 4])
            .sort(vec![D + 4])),
        q("q3_4", Node::scan(CUSTOMER, 1.0 / 125.0, vec![C + 6])
            .hash_join(
                Node::scan(SUPPLIER, 1.0 / 125.0, vec![S + 6])
                    .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 2]), 1.0 / 125.0, vec![LO + 4, S]),
                1.0 / 125.0,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 1.0 / 84.0, vec![D + 5]), 1.0 / 84.0, vec![LO + 5, D])
            .agg(4.0, vec![C + 6, S + 6, D + 4])
            .sort(vec![D + 4])),
        // Flight 4: profit drill-down across all four dimensions.
        q("q4_1", Node::scan(CUSTOMER, 0.2, vec![C + 4])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 4])
                    .hash_join(
                        Node::scan(PART, 0.4, vec![P + 2])
                            .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 3]), 0.4, vec![LO + 3, P]),
                        0.2,
                        vec![LO + 4, S],
                    ),
                0.2,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 1.0, vec![D + 4]), 1.0, vec![LO + 5, D])
            .agg(35.0, vec![D + 4, C + 4])
            .sort(vec![D + 4, C + 4])),
        q("q4_2", Node::scan(CUSTOMER, 0.2, vec![C + 4])
            .hash_join(
                Node::scan(SUPPLIER, 0.2, vec![S + 4])
                    .hash_join(
                        Node::scan(PART, 0.4, vec![P + 2])
                            .hash_join(Node::scan(LINEORDER, 1.0, vec![LO + 3]), 0.4, vec![LO + 3, P]),
                        0.2,
                        vec![LO + 4, S],
                    ),
                0.2,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 2.0 / 7.0, vec![D + 4]), 2.0 / 7.0, vec![LO + 5, D])
            .agg(100.0, vec![D + 4, S + 4, P + 2])
            .sort(vec![D + 4, S + 4])),
        q("q4_3", Node::scan(CUSTOMER, 0.2, vec![C + 5])
            .hash_join(
                Node::scan(SUPPLIER, 1.0 / 25.0, vec![S + 5])
                    .hash_join(
                        Node::scan(PART, 1.0 / 25.0, vec![P + 3])
                            .hash_join(
                                Node::scan(LINEORDER, 1.0, vec![LO + 3]),
                                1.0 / 25.0,
                                vec![LO + 3, P],
                            ),
                        1.0 / 25.0,
                        vec![LO + 4, S],
                    ),
                0.2,
                vec![LO + 2, C],
            )
            .hash_join(Node::scan(DATE, 2.0 / 7.0, vec![D + 4]), 2.0 / 7.0, vec![LO + 5, D])
            .agg(700.0, vec![D + 4, S + 5, P + 4])
            .sort(vec![D + 4, S + 5])),
    ]
}

/// Plan pool over the given scale factors (the paper uses 2, 5, 10, 50).
pub fn plan_pool(sfs: &[f64]) -> Vec<Arc<PhysicalPlan>> {
    let ctx = context();
    let specs = query_specs();
    let mut pool = Vec::with_capacity(specs.len() * sfs.len());
    for &sf in sfs {
        for spec in &specs {
            pool.push(Arc::new(crate::spec::build_plan(spec, &ctx, sf)));
        }
    }
    pool
}

/// The paper's SSB scale factors.
pub const PAPER_SCALE_FACTORS: [f64; 4] = [2.0, 5.0, 10.0, 50.0];

// ---------------------------------------------------------------------
// Real data + an executable flight-1 query (for the real engine).
// ---------------------------------------------------------------------

/// Generates a miniature SSB catalog: `lineorder` and `date`, with `sf`
/// scaling the standard lineorder row count. Dates are integer day keys
/// 0..2555 spanning seven "years" of 365 days.
pub fn gen_catalog(sf: f64, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let n_lineorder = ((6_000_000.0 * sf) as usize).max(50);
    let rows_per_block = 4096;

    // date(datekey, year)
    let datekey: Vec<i64> = (0..2556).collect();
    let year: Vec<i64> = datekey.iter().map(|d| 1992 + d / 365).collect();
    cat.add_table(Table::from_columns(
        "date",
        Schema::new(vec![("d_datekey", ColumnType::Int64), ("d_year", ColumnType::Int64)]),
        vec![Column::I64(datekey), Column::I64(year)],
        rows_per_block,
    ));

    // lineorder(orderdate, quantity, extendedprice, discount)
    let orderdate: Vec<i64> = (0..n_lineorder).map(|_| rng.gen_range(0..2556)).collect();
    let quantity: Vec<f64> = (0..n_lineorder).map(|_| rng.gen_range(1.0..51.0)).collect();
    let extendedprice: Vec<f64> =
        (0..n_lineorder).map(|_| rng.gen_range(100.0..60_000.0)).collect();
    let discount: Vec<f64> = (0..n_lineorder).map(|_| rng.gen_range(0.0..0.11)).collect();
    cat.add_table(Table::from_columns(
        "lineorder",
        Schema::new(vec![
            ("lo_orderdate", ColumnType::Int64),
            ("lo_quantity", ColumnType::Float64),
            ("lo_extendedprice", ColumnType::Float64),
            ("lo_discount", ColumnType::Float64),
        ]),
        vec![
            Column::I64(orderdate),
            Column::F64(quantity),
            Column::F64(extendedprice),
            Column::F64(discount),
        ],
        rows_per_block,
    ));
    cat
}

/// Executable SSB Q1.1: revenue = sum(extendedprice × discount) over
/// lineorder ⨝ date where d_year = 1993, discount ∈ [0.01, 0.03],
/// quantity < 25. The date side uses the zone-map index scan (datekey
/// range for year 1993: 365..730).
pub fn q1_1_executable(cat: &Catalog, cost: &CostModel) -> Arc<PhysicalPlan> {
    let date = cat.table_id("date").unwrap();
    let lo = cat.table_id("lineorder").unwrap();
    let mut b = PlanBuilder::new("ssb_q1_1_exec");
    let est = |k: OpKind, rows: f64, wos: u32| {
        (
            cost.wo_duration_estimate(k, rows / wos as f64),
            cost.wo_memory_estimate(k, rows / wos as f64),
        )
    };

    let date_wos = cat.table(date).num_blocks() as u32;
    let (d, m) = est(OpKind::IndexScan, 366.0, date_wos);
    let scan_d = b.add_op(
        OpKind::IndexScan,
        OpSpec::IndexScan { table: date, col: 0, lo: 365, hi: 729, project: Some(vec![0]) },
        vec![tables::DATE],
        vec![cols::D + 4],
        366.0,
        date_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::BuildHash, 366.0, date_wos);
    let build_d = b.add_op(
        OpKind::BuildHash,
        OpSpec::BuildHash { keys: vec![0] },
        vec![tables::DATE],
        vec![cols::D],
        366.0,
        date_wos,
        d,
        m,
    );
    b.connect(scan_d, build_d, true);

    let lo_rows = cat.table(lo).num_rows() as f64;
    let lo_wos = cat.table(lo).num_blocks() as u32;
    let (d, m) = est(OpKind::TableScan, lo_rows, lo_wos);
    let pred = Predicate::col_cmp(3, CmpOp::Ge, 0.01)
        .and(Predicate::col_cmp(3, CmpOp::Le, 0.03))
        .and(Predicate::col_cmp(1, CmpOp::Lt, 25.0));
    let scan_lo = b.add_op(
        OpKind::TableScan,
        OpSpec::TableScan { table: lo, predicate: pred, project: Some(vec![0, 2, 3]) },
        vec![tables::LINEORDER],
        vec![cols::LO + 8, cols::LO + 11],
        0.09 * lo_rows,
        lo_wos,
        d,
        m,
    );
    let (d, m) = est(OpKind::ProbeHash, 0.09 * lo_rows, lo_wos);
    let probe = b.add_op(
        OpKind::ProbeHash,
        OpSpec::ProbeHash { keys: vec![0] },
        vec![tables::DATE, tables::LINEORDER],
        vec![cols::LO + 5, cols::D],
        0.013 * lo_rows,
        lo_wos,
        d,
        m,
    );
    b.connect(build_d, probe, false);
    b.connect(scan_lo, probe, true);

    // Joined schema: (d_datekey, lo_orderdate, extendedprice, discount).
    let (d, m) = est(OpKind::Aggregate, 0.013 * lo_rows, lo_wos);
    let agg = b.add_op(
        OpKind::Aggregate,
        OpSpec::Aggregate {
            group_by: vec![],
            aggs: vec![(
                AggFunc::Sum,
                ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(2), ScalarExpr::col(3)),
            )],
        },
        vec![tables::DATE, tables::LINEORDER],
        vec![cols::LO + 12],
        1.0,
        lo_wos,
        d,
        m,
    );
    b.connect(probe, agg, true);
    let fin = b.add_op(
        OpKind::FinalizeAggregate,
        OpSpec::FinalizeAggregate,
        vec![tables::DATE, tables::LINEORDER],
        vec![cols::LO + 12],
        1.0,
        1,
        cost.wo_duration_estimate(OpKind::FinalizeAggregate, 1.0),
        cost.wo_memory_estimate(OpKind::FinalizeAggregate, 1.0),
    );
    b.connect(agg, fin, false);
    Arc::new(b.finish(fin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_plan;

    #[test]
    fn all_13_specs_lower_to_valid_plans() {
        let ctx = context();
        let specs = query_specs();
        assert_eq!(specs.len(), 13);
        for spec in &specs {
            let plan = build_plan(spec, &ctx, 1.0);
            assert!(plan.validate().is_ok(), "{} invalid", spec.name);
        }
    }

    #[test]
    fn flights_have_expected_join_depth() {
        let specs = query_specs();
        // Flight 1: 1 join; flight 2/3: 3 joins; flight 4: 4 joins.
        assert_eq!(specs[0].root.join_count(), 1);
        assert_eq!(specs[3].root.join_count(), 3);
        assert_eq!(specs[6].root.join_count(), 3);
        assert_eq!(specs[10].root.join_count(), 4);
    }

    #[test]
    fn catalog_and_executable_q1_1_validate() {
        let cat = gen_catalog(0.002, 3);
        assert_eq!(cat.table_by_name("date").unwrap().num_rows(), 2556);
        assert!(cat.table_by_name("lineorder").unwrap().num_rows() >= 50);
        let plan = q1_1_executable(&cat, &CostModel::default_model());
        assert!(plan.validate().is_ok());
        assert!(plan
            .ops
            .iter()
            .any(|o| matches!(o.spec, lsched_engine::plan::OpSpec::IndexScan { .. })));
    }

    #[test]
    fn ssb_queries_lighter_than_tpch() {
        // The paper observes SSB's worst query ≈ half of TPC-H's worst
        // (Section 7.2) because its max SF is 50 vs 100.
        let ssb = plan_pool(&PAPER_SCALE_FACTORS);
        let tpch = crate::tpch::plan_pool(&crate::tpch::PAPER_SCALE_FACTORS);
        let worst = |pool: &[Arc<PhysicalPlan>]| {
            pool.iter().map(|p| p.total_estimated_work()).fold(0.0, f64::max)
        };
        assert!(worst(&ssb) < worst(&tpch) * 0.7);
    }
}
