//! The Join Order Benchmark (JOB): 113 join-heavy queries over the IMDB
//! schema (21 tables, 7.2 GB in the paper).
//!
//! The original IMDB dataset is proprietary-ish and large; per the
//! substitution policy (DESIGN.md §1) we reproduce what the scheduler
//! actually consumes: 113 query plans over the 21-table schema with the
//! benchmark's defining characteristics — deep join chains (4 to 17
//! relations, "some queries have more than 10 join operations",
//! Section 7.2), skewed intermediate cardinalities, and a mix of hash
//! and index-nested-loop joins. Queries come in 33 families (1a, 1b, …,
//! 33c) whose variants share a join graph but differ in filter
//! selectivities, exactly like the real benchmark.

use std::sync::Arc;

use lsched_engine::cost::CostModel;
use lsched_engine::plan::PhysicalPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{BenchContext, Node, QuerySpec};

/// Number of IMDB tables.
pub const NUM_TABLES: usize = 21;

/// IMDB table row counts (from the JOB paper's dataset).
pub const BASE_ROWS: [f64; NUM_TABLES] = [
    2_528_312.0,  // 0  title
    2_609_129.0,  // 1  movie_companies
    36_244_344.0, // 2  cast_info
    14_835_720.0, // 3  movie_info
    4_523_930.0,  // 4  movie_keyword
    1_380_035.0,  // 5  movie_info_idx
    4_167_491.0,  // 6  name
    3_140_339.0,  // 7  char_name
    234_997.0,    // 8  company_name
    134_170.0,    // 9  keyword
    901_343.0,    // 10 aka_name
    361_472.0,    // 11 aka_title
    4.0,          // 12 comp_cast_type
    4.0,          // 13 company_type
    135_086.0,    // 14 complete_cast
    113.0,        // 15 info_type
    7.0,          // 16 kind_type
    18.0,         // 17 link_type
    29_997.0,     // 18 movie_link
    2_963_664.0,  // 19 person_info
    12.0,         // 20 role_type
];

/// Per-family variant counts, matching the real benchmark's 113 queries
/// across 33 families (families have 2–5 variants; totals to 113).
pub const FAMILY_VARIANTS: [usize; 33] = [
    4, 3, 3, 3, 3, 4, 3, 4, 4, 3, 4, 3, 4, 4, 4, 4, 6, 5, 4, 3, 3, 3, 3, 2, 3, 3, 3, 3, 3, 3, 3,
    3, 3,
];

/// The benchmark context.
pub fn context() -> BenchContext {
    BenchContext { name: "job", base_rows: BASE_ROWS.to_vec(), cost: CostModel::default_model() }
}

/// Tables that join through `title` (movie-keyed fact-like relations).
const MOVIE_KEYED: [usize; 8] = [1, 2, 3, 4, 5, 11, 14, 18];
/// Small dimension tables that attach to movie-keyed relations.
const DIMS: [(usize, usize); 7] = [(8, 1), (9, 4), (6, 2), (7, 2), (15, 3), (13, 1), (17, 18)];

/// Global column ids: table `t` owns columns `[t*6, t*6 + 6)`.
fn col(table: usize, c: usize) -> usize {
    table * 6 + c
}

/// Builds the join-tree spec of one family variant.
///
/// The join graph is a star-of-chains around `title`: a deterministic,
/// family-seeded subset of the movie-keyed relations joins `title`, and
/// each attaches up to one dimension. Variants scale the filter
/// selectivities (later variants are less selective, as in JOB where
/// the `b`/`c` variants relax predicates).
fn family_spec(family: usize, variant: usize) -> QuerySpec {
    let mut rng = StdRng::seed_from_u64(0x10B + family as u64 * 97);
    // 4..17 relations, biased so some families are very deep.
    let n_relations = 4 + (family * 5) % 14;
    let variant_relax = 1.0 + variant as f64 * 0.8;

    // Start from a filtered title scan.
    let title_sel = (0.05 + 0.1 * rng.gen::<f64>()) * variant_relax;
    let mut tree = Node::scan(0, title_sel.min(0.9), vec![col(0, 1), col(0, 4)]);
    let mut used = 1usize;

    let mut movie_keyed: Vec<usize> = MOVIE_KEYED.to_vec();
    let mut dims: Vec<(usize, usize)> = DIMS.to_vec();

    while used < n_relations {
        if !movie_keyed.is_empty() && (used % 2 == 1 || dims.is_empty()) {
            // Attach a movie-keyed relation to the current tree.
            let idx = rng.gen_range(0..movie_keyed.len());
            let t = movie_keyed.remove(idx);
            let sel = ((0.02 + 0.2 * rng.gen::<f64>()) * variant_relax).min(0.95);
            let fanout = 0.4 + rng.gen::<f64>() * 1.4;
            let probe = Node::scan(t, sel, vec![col(t, 0), col(t, 2)]);
            // Alternate build/probe sides so trees are bushy, and mix in
            // index-nested-loop joins (JOB plans use many).
            tree = if used % 4 == 3 {
                Node::Join {
                    build: Box::new(tree),
                    probe: Box::new(Node::index_scan(t, sel, vec![col(t, 0)])),
                    kind: crate::spec::JoinKind::IndexNested,
                    fanout,
                    cols: vec![col(0, 0), col(t, 1)],
                }
            } else {
                tree.hash_join(probe, fanout, vec![col(0, 0), col(t, 1)])
            };
            used += 1;
        } else if !dims.is_empty() {
            // Attach a dimension.
            let idx = rng.gen_range(0..dims.len());
            let (t, _) = dims.remove(idx);
            let sel = (0.1 + 0.4 * rng.gen::<f64>()).min(1.0);
            tree = Node::scan(t, sel, vec![col(t, 1)]).hash_join(
                tree,
                sel,
                vec![col(t, 0)],
            );
            used += 1;
        } else {
            break;
        }
    }

    // JOB queries end in MIN() aggregates over a handful of columns.
    let root = tree.agg(1.0, vec![col(0, 1)]);
    let letter = (b'a' + variant as u8) as char;
    QuerySpec { name: format!("job_q{}{letter}", family + 1), root }
}

/// Specs for all 113 JOB queries.
pub fn query_specs() -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(113);
    for (family, &variants) in FAMILY_VARIANTS.iter().enumerate() {
        for v in 0..variants {
            out.push(family_spec(family, v));
        }
    }
    out
}

/// The JOB plan pool: one plan per query (JOB has no scale factors;
/// Section 7.1 samples workloads directly from the 113 queries).
pub fn plan_pool() -> Vec<Arc<PhysicalPlan>> {
    let ctx = context();
    query_specs()
        .iter()
        .map(|s| Arc::new(crate::spec::build_plan(s, &ctx, 1.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::build_plan;

    #[test]
    fn exactly_113_queries() {
        let specs = query_specs();
        assert_eq!(specs.len(), 113);
        assert_eq!(FAMILY_VARIANTS.iter().sum::<usize>(), 113);
        // Names unique.
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 113);
    }

    #[test]
    fn all_plans_valid() {
        let ctx = context();
        for spec in query_specs() {
            let plan = build_plan(&spec, &ctx, 1.0);
            assert!(plan.validate().is_ok(), "{} invalid", spec.name);
        }
    }

    #[test]
    fn some_queries_exceed_ten_joins() {
        // Section 7.2: "some queries have more than 10 join operations".
        let deep = query_specs().iter().filter(|s| s.root.join_count() > 10).count();
        assert!(deep >= 5, "only {deep} queries exceed 10 joins");
    }

    #[test]
    fn variants_share_family_structure() {
        let a = family_spec(4, 0);
        let b = family_spec(4, 1);
        assert_eq!(a.root.join_count(), b.root.join_count());
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn variants_relax_selectivity() {
        let ctx = context();
        let a = build_plan(&family_spec(2, 0), &ctx, 1.0);
        let c = build_plan(&family_spec(2, 2), &ctx, 1.0);
        assert!(c.total_estimated_work() >= a.total_estimated_work());
    }

    #[test]
    fn deterministic_generation() {
        let a = query_specs();
        let b = query_specs();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.root.join_count(), y.root.join_count());
        }
    }
}
