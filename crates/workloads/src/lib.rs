//! # lsched-workloads
//!
//! The three benchmarks of the paper's evaluation — TPC-H (22 queries,
//! SF 2–100), the Star Schema Benchmark (13 queries, SF 2–50) and the
//! Join Order Benchmark (113 queries over the 21-table IMDB schema) —
//! as scale-factor-aware physical-plan pools, plus the Section 7.1
//! workload-generation protocol (train/test split without replacement,
//! sampling with replacement, batch or exponential-streaming arrivals).
//!
//! Simulator plans are lowered from compact [`spec`] trees; TPC-H also
//! ships a synthetic data generator and fully executable plans for
//! representative queries so the real engine can validate operator
//! correctness and calibrate the cost model.

#![warn(missing_docs)]

pub mod job;
pub mod spec;
pub mod ssb;
pub mod tpch;
pub mod workload;

pub use spec::{build_plan, BenchContext, JoinKind, Node, QuerySpec};
pub use workload::{gen_workload, split_train_test, ArrivalPattern, EpisodeSampler};
