//! Workload generation following the paper's Section 7.1 protocol:
//! 50/50 train/test split of the plan pool without replacement, then
//! workloads of size `x` sampled *with* replacement, arriving either in
//! one batch or as a stream with exponential inter-arrival spacing of
//! expected value `1/λ`.

use std::sync::Arc;

use lsched_engine::plan::PhysicalPlan;
use lsched_engine::sim::WorkloadItem;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How queries arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// All queries arrive at time 0 (the paper's batching mode).
    Batch,
    /// Exponential inter-arrival spacing with expected rate `lambda`
    /// queries per second (the paper's streaming mode).
    Streaming {
        /// Expected arrival rate λ (queries/second).
        lambda: f64,
    },
    /// Open-loop Poisson arrivals whose rate alternates between a base
    /// and a burst level — the overload generator. Each period of
    /// `period` seconds spends its first `burst_fraction` at
    /// `burst_lambda` and the remainder at `base_lambda`, so queue
    /// buildup (the regime Decima trains under) is actually reachable.
    Bursty {
        /// Arrival rate outside bursts (queries/second).
        base_lambda: f64,
        /// Arrival rate inside bursts (queries/second).
        burst_lambda: f64,
        /// Length of one base+burst cycle (seconds).
        period: f64,
        /// Fraction of each period spent bursting, in `[0, 1]`.
        burst_fraction: f64,
    },
}

/// Splits a plan pool 50/50 into train and test sets, without
/// replacement (test queries are never seen in training — Section 7.1).
pub fn split_train_test(
    pool: &[Arc<PhysicalPlan>],
    seed: u64,
) -> (Vec<Arc<PhysicalPlan>>, Vec<Arc<PhysicalPlan>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    idx.shuffle(&mut rng);
    let half = pool.len() / 2;
    let train = idx[..half].iter().map(|&i| Arc::clone(&pool[i])).collect();
    let test = idx[half..].iter().map(|&i| Arc::clone(&pool[i])).collect();
    (train, test)
}

/// Samples a workload of `size` queries with replacement from `pool`,
/// assigning arrival times per `pattern`.
pub fn gen_workload(
    pool: &[Arc<PhysicalPlan>],
    size: usize,
    pattern: ArrivalPattern,
    seed: u64,
) -> Vec<WorkloadItem> {
    assert!(!pool.is_empty(), "empty plan pool");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..size)
        .map(|_| {
            let plan = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            let arrival_time = match pattern {
                ArrivalPattern::Batch => 0.0,
                ArrivalPattern::Streaming { lambda } => {
                    // Exponential spacing with mean 1/λ via inverse CDF.
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    t += -u.ln() / lambda;
                    t
                }
                ArrivalPattern::Bursty { base_lambda, burst_lambda, period, burst_fraction } => {
                    // The rate is decided by where the *current* clock
                    // sits within its period; the exponential gap is then
                    // drawn at that rate. A draw can overshoot the phase
                    // boundary — fine for a load generator, and it keeps
                    // the RNG consumption at exactly one draw per query.
                    let phase = if period > 0.0 { (t % period) / period } else { 0.0 };
                    let lambda = if phase < burst_fraction { burst_lambda } else { base_lambda };
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    t += -u.ln() / lambda.max(1e-9);
                    t
                }
            };
            WorkloadItem::new(arrival_time, plan)
        })
        .collect()
}

/// An episode sampler for training: draws episode workloads with a
/// random size and arrival rate in the configured ranges, matching the
/// paper's training setup (Section 7.1: sizes 20–100 / 10–200, rates
/// 10–400).
#[derive(Debug, Clone)]
pub struct EpisodeSampler {
    /// Plan pool to draw from (the training half).
    pub pool: Vec<Arc<PhysicalPlan>>,
    /// Episode workload size range (inclusive).
    pub size_range: (usize, usize),
    /// Arrival rate λ range (inclusive).
    pub rate_range: (f64, f64),
    /// Fraction of episodes that are batch-mode (the paper trains on
    /// both streaming and batching arrivals).
    pub batch_fraction: f64,
}

impl EpisodeSampler {
    /// Samples one training-episode workload.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<WorkloadItem> {
        let size = rng.gen_range(self.size_range.0..=self.size_range.1);
        let pattern = if rng.gen::<f64>() < self.batch_fraction {
            ArrivalPattern::Batch
        } else {
            ArrivalPattern::Streaming { lambda: rng.gen_range(self.rate_range.0..=self.rate_range.1) }
        };
        gen_workload(&self.pool, size, pattern, rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch;

    fn pool() -> Vec<Arc<PhysicalPlan>> {
        tpch::plan_pool(&[1.0, 2.0])
    }

    #[test]
    fn split_is_disjoint_and_covers() {
        let p = pool();
        let (train, test) = split_train_test(&p, 1);
        assert_eq!(train.len() + test.len(), p.len());
        for t in &train {
            assert!(!test.iter().any(|q| Arc::ptr_eq(q, t)), "overlap between train and test");
        }
    }

    #[test]
    fn split_deterministic_per_seed() {
        let p = pool();
        let (a, _) = split_train_test(&p, 9);
        let (b, _) = split_train_test(&p, 9);
        let (c, _) = split_train_test(&p, 10);
        assert!(a.iter().zip(&b).all(|(x, y)| Arc::ptr_eq(x, y)));
        assert!(!a.iter().zip(&c).all(|(x, y)| Arc::ptr_eq(x, y)));
    }

    #[test]
    fn batch_workload_all_at_zero() {
        let wl = gen_workload(&pool(), 30, ArrivalPattern::Batch, 3);
        assert_eq!(wl.len(), 30);
        assert!(wl.iter().all(|w| w.arrival_time == 0.0));
    }

    #[test]
    fn bursty_arrivals_are_monotone_deterministic_and_denser_in_bursts() {
        let pat = ArrivalPattern::Bursty {
            base_lambda: 10.0,
            burst_lambda: 200.0,
            period: 1.0,
            burst_fraction: 0.3,
        };
        let wl = gen_workload(&pool(), 1500, pat, 6);
        assert_eq!(wl.len(), 1500);
        for w in wl.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time, "arrivals must be monotone");
        }
        let wl2 = gen_workload(&pool(), 1500, pat, 6);
        for (a, b) in wl.iter().zip(&wl2) {
            assert_eq!(a.arrival_time.to_bits(), b.arrival_time.to_bits());
        }
        // The burst phase (first 30% of each period) must hold far more
        // than 30% of the arrivals — that's the whole point of the knob.
        let in_burst = wl
            .iter()
            .filter(|w| (w.arrival_time % 1.0) < 0.3)
            .count();
        assert!(
            in_burst as f64 > 0.6 * wl.len() as f64,
            "only {in_burst}/{} arrivals landed in the burst window",
            wl.len()
        );
    }

    #[test]
    fn streaming_arrivals_increase_with_mean_near_rate() {
        let lambda = 20.0;
        let wl = gen_workload(&pool(), 2000, ArrivalPattern::Streaming { lambda }, 4);
        for w in wl.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        let last = wl.last().unwrap().arrival_time;
        let observed_rate = 2000.0 / last;
        assert!(
            (observed_rate - lambda).abs() / lambda < 0.15,
            "observed {observed_rate} vs {lambda}"
        );
    }

    #[test]
    fn higher_lambda_packs_tighter() {
        let slow = gen_workload(&pool(), 100, ArrivalPattern::Streaming { lambda: 5.0 }, 5);
        let fast = gen_workload(&pool(), 100, ArrivalPattern::Streaming { lambda: 100.0 }, 5);
        assert!(fast.last().unwrap().arrival_time < slow.last().unwrap().arrival_time);
    }

    #[test]
    fn episode_sampler_respects_ranges() {
        let sampler = EpisodeSampler {
            pool: pool(),
            size_range: (5, 9),
            rate_range: (10.0, 50.0),
            batch_fraction: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let ep = sampler.sample(&mut rng);
            assert!(ep.len() >= 5 && ep.len() <= 9);
        }
    }
}
