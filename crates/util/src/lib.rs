//! Small utilities shared across the workspace.
//!
//! Today this is a single abstraction: the LIFO scratch [`Pool`]. Three
//! hot paths used to hand-roll the same "retire a buffer, reuse its
//! capacity later" dance — the inference arena's id-vector pool in
//! `lsched-nn`, the encoder's retired embedding pairs in `lsched-core`,
//! and the simulator's wake buffer in `lsched-engine`. They now share
//! this one implementation, so the invariant (recycled values are
//! *empty* but keep their heap capacity) lives in exactly one place.

/// A value that can be emptied in place while keeping its allocation,
/// making it safe to hand back out of a [`Pool`].
pub trait Recycle {
    /// Clears the logical contents; must not shrink capacity.
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<A: Recycle, B: Recycle> Recycle for (A, B) {
    fn recycle(&mut self) {
        self.0.recycle();
        self.1.recycle();
    }
}

/// A generic last-in-first-out scratch pool.
///
/// [`take`](Pool::take) pops the most recently retired value (or builds a
/// fresh default), and [`put`](Pool::put) recycles a value back in. LIFO
/// order means the warmest — largest-capacity, cache-resident — buffer is
/// always reused first, so steady-state loops stop touching the
/// allocator once every concurrent user has been through the pool once.
#[derive(Debug)]
pub struct Pool<T> {
    spares: Vec<T>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self { spares: Vec::new() }
    }
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retired values currently available.
    pub fn spares(&self) -> usize {
        self.spares.len()
    }

    /// Drops every retired value (used by explicit cold resets).
    pub fn clear(&mut self) {
        self.spares.clear();
    }
}

impl<T: Default + Recycle> Pool<T> {
    /// Pops the most recently retired value, or a fresh default when the
    /// pool is dry. The returned value is always logically empty.
    pub fn take(&mut self) -> T {
        self.spares.pop().unwrap_or_default()
    }

    /// Recycles `value` (emptied in place, capacity kept) for a later
    /// [`take`](Pool::take).
    pub fn put(&mut self, mut value: T) {
        value.recycle();
        self.spares.push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_builds_defaults() {
        let mut p: Pool<Vec<u32>> = Pool::new();
        assert_eq!(p.spares(), 0);
        let v = p.take();
        assert!(v.is_empty());
    }

    #[test]
    fn put_clears_but_keeps_capacity() {
        let mut p: Pool<Vec<u32>> = Pool::new();
        let mut v = p.take();
        v.extend(0..100);
        let cap = v.capacity();
        p.put(v);
        let v2 = p.take();
        assert!(v2.is_empty(), "recycled values must come back empty");
        assert!(v2.capacity() >= cap, "recycled values must keep their capacity");
    }

    #[test]
    fn pool_is_lifo() {
        let mut p: Pool<Vec<u32>> = Pool::new();
        let mut a = Vec::with_capacity(8);
        a.push(1);
        let big = Vec::with_capacity(1024);
        p.put(a);
        p.put(big);
        // The most recently retired (largest) buffer comes back first.
        assert!(p.take().capacity() >= 1024);
        assert!(p.take().capacity() >= 8);
        assert_eq!(p.spares(), 0);
    }

    #[test]
    fn tuple_recycle_clears_both_sides() {
        let mut p: Pool<(Vec<u8>, Vec<u16>)> = Pool::new();
        let mut pair = p.take();
        pair.0.extend([1, 2, 3]);
        pair.1.extend([4, 5]);
        p.put(pair);
        let pair = p.take();
        assert!(pair.0.is_empty() && pair.1.is_empty());
    }
}
