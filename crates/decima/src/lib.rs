//! # lsched-decima
//!
//! The Decima baseline (Mao et al., SIGCOMM 2019) as the LSched paper
//! characterizes it: black-box task features, sequential
//! message-passing GCN encoding with isotropic aggregation, no
//! pipelining support (a node is schedulable only when every producer
//! has *finished*), node-selection + parallelism-limit heads, and an
//! average-latency-only REINFORCE objective.

#![warn(missing_docs)]

pub mod model;
pub mod train;

pub use model::{
    decima_snapshot, DecimaConfig, DecimaInfer, DecimaModel, DecimaPick, DecimaScheduler,
    DecimaSnapshot, DecimaStep,
};
pub use train::{train_decima, DecimaEpisodeStats, DecimaTrainConfig};
