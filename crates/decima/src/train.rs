//! Decima's REINFORCE trainer: the same policy-gradient loop as LSched
//! (Section 6 notes any policy-gradient algorithm fits) with Decima's
//! own input-dependent baseline — multiple exploration rollouts per
//! workload, baselined against each other — but the average-latency-only
//! reward Decima optimizes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lsched_core::rl::{episode_rewards, latency_approximations, suffix_returns};
use lsched_core::train::time_aligned_baseline;
use lsched_engine::sim::{simulate, SimConfig};
use lsched_nn::Adam;
use lsched_workloads::EpisodeSampler;

use crate::model::{DecimaModel, DecimaScheduler, DecimaStep};

/// Decima training hyper-parameters.
#[derive(Debug, Clone)]
pub struct DecimaTrainConfig {
    /// Number of episodes.
    pub episodes: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient clipping norm.
    pub max_grad_norm: f32,
    /// Max decisions replayed per rollout.
    pub decision_sample_cap: usize,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Exploration rollouts per sampled workload.
    pub rollouts_per_episode: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DecimaTrainConfig {
    fn default() -> Self {
        Self {
            episodes: 50,
            lr: 1e-3,
            max_grad_norm: 5.0,
            decision_sample_cap: 32,
            sim: SimConfig { num_threads: 16, ..Default::default() },
            rollouts_per_episode: 2,
            seed: 0,
        }
    }
}

/// Per-episode stats of a Decima training run.
#[derive(Debug, Clone)]
pub struct DecimaEpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// Average query duration achieved (mean over rollouts).
    pub avg_duration: f64,
    /// Sum of decision rewards (first rollout).
    pub total_reward: f64,
}

fn returns_of(model: &DecimaModel, steps: &[DecimaStep], makespan: f64) -> Vec<f64> {
    if steps.is_empty() {
        return Vec::new();
    }
    let times: Vec<f64> = steps.iter().map(|s| s.time).collect();
    let counts: Vec<usize> = steps.iter().map(|s| s.num_queries).collect();
    let h = latency_approximations(&times, &counts, makespan);
    let rewards = episode_rewards(&model.config().reward, &h);
    let returns = suffix_returns(&rewards);
    returns[..steps.len()].to_vec()
}

/// Trains a Decima model on episodes from `sampler`.
pub fn train_decima(
    mut model: DecimaModel,
    sampler: &EpisodeSampler,
    cfg: &DecimaTrainConfig,
) -> (DecimaModel, Vec<DecimaEpisodeStats>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut stats = Vec::with_capacity(cfg.episodes);
    let rollouts = cfg.rollouts_per_episode.max(1);

    for ep in 0..cfg.episodes {
        let workload = sampler.sample(&mut rng);
        let mut all_steps: Vec<Vec<DecimaStep>> = Vec::with_capacity(rollouts);
        let mut all_returns: Vec<Vec<f64>> = Vec::with_capacity(rollouts);
        let mut avg_dur = 0.0;
        for r in 0..rollouts {
            let mut sim_cfg = cfg.sim.clone();
            sim_cfg.seed = cfg.seed.wrapping_add(ep as u64 * 6007 + r as u64 * 233);
            let mut sched = DecimaScheduler::sampling(model, sim_cfg.seed ^ 0xdec1);
            let res = simulate(sim_cfg, &workload, &mut sched);
            let (m, steps) = sched.finish();
            model = m;
            all_returns.push(returns_of(&model, &steps, res.makespan));
            all_steps.push(steps);
            avg_dur += res.avg_duration() / rollouts as f64;
        }

        let curves: Vec<Vec<(f64, f64)>> = all_steps
            .iter()
            .zip(&all_returns)
            .map(|(steps, returns)| {
                steps.iter().map(|s| s.time).zip(returns.iter().copied()).collect()
            })
            .collect();
        model.store.zero_grads();
        for (steps, returns) in all_steps.iter().zip(&all_returns) {
            if steps.is_empty() {
                continue;
            }
            let advantages: Vec<f64> = steps
                .iter()
                .zip(returns)
                .map(|(s, g)| g - time_aligned_baseline(&curves, s.time))
                .collect();
            let var =
                advantages.iter().map(|a| a * a).sum::<f64>() / advantages.len() as f64;
            let std = var.sqrt().max(1e-6);

            let mut order: Vec<usize> = (0..steps.len()).collect();
            order.shuffle(&mut rng);
            let take = order.len().min(cfg.decision_sample_cap);
            let scale = order.len() as f64 / take as f64;
            for &d in order.iter().take(take) {
                let step = &steps[d];
                let adv = (advantages[d] / std) * scale;
                let (mut g, _, _, lp) =
                    model.decide(&step.snapshot, false, None, Some(&step.picks));
                let loss = g.scale(lp, -(adv as f32));
                g.backward(loss, &mut model.store);
            }
        }
        model.store.clip_grad_norm(cfg.max_grad_norm);
        opt.step(&mut model.store);

        stats.push(DecimaEpisodeStats {
            episode: ep,
            avg_duration: avg_dur,
            total_reward: all_returns.first().and_then(|r| r.first()).copied().unwrap_or(0.0),
        });
    }
    (model, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DecimaConfig;
    use lsched_workloads::tpch;

    #[test]
    fn decima_training_runs() {
        let model = DecimaModel::new(
            DecimaConfig { hidden: 10, layers: 2, max_threads: 16, ..Default::default() },
            1,
        );
        let before = model.store.to_json();
        let sampler = EpisodeSampler {
            pool: tpch::plan_pool(&[0.3]),
            size_range: (3, 5),
            rate_range: (20.0, 50.0),
            batch_fraction: 0.5,
        };
        let cfg = DecimaTrainConfig {
            episodes: 3,
            sim: SimConfig { num_threads: 6, ..Default::default() },
            ..Default::default()
        };
        let (model, stats) = train_decima(model, &sampler, &cfg);
        assert_eq!(stats.len(), 3);
        assert_ne!(model.store.to_json(), before);
        assert!(stats.iter().all(|s| s.avg_duration > 0.0));
    }

    #[test]
    fn time_aligned_baseline_interpolates() {
        let curves = vec![vec![(0.0, 10.0), (1.0, 4.0)], vec![(0.5, 6.0), (2.0, 1.0)]];
        // t = 0.6: first rollout's next decision is at t=1 (G=4), second's
        // at t=2 (G=1) -> baseline 2.5.
        assert_eq!(time_aligned_baseline(&curves, 0.6), 2.5);
        // Past both ends -> 0.
        assert_eq!(time_aligned_baseline(&curves, 5.0), 0.0);
    }
}
