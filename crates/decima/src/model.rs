//! The Decima baseline model (Mao et al., SIGCOMM 2019), as described
//! and critiqued by the LSched paper:
//!
//! * **black-box node features** — Decima sees each task as an opaque
//!   unit: number of remaining tasks, estimated task duration, degree
//!   information — none of LSched's white-box operator/edge/block
//!   features (Section 1);
//! * **sequential message-passing GCN** — per-level child→parent fusion
//!   *within* each convolution iteration (the over-smoothing design of
//!   Section 4.2.1), with isotropic aggregation (no attention);
//! * **no pipelining** — a node is only schedulable when its parents
//!   have *completed*; Decima "can not schedule two or more pipelined
//!   operators from one query at the same time" (Section 5.3.2), so
//!   every decision has pipeline degree 1 and treats every edge as
//!   blocking;
//! * **two heads** — node selection and a per-query parallelism limit;
//! * **average-latency-only reward** (Section 6: "Decima focuses only
//!   on minimizing average query time").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsched_core::rl::RewardConfig;
use lsched_engine::plan::OpId;
use lsched_engine::scheduler::{
    OpStatus, QueryId, QueryRuntime, SchedContext, SchedDecision, SchedEvent, Scheduler,
};
use lsched_nn::{
    Activation, Backend, Graph, InferCtx, Linear, Mlp, NodeId, ParamStore, TapeBackend, ValId,
};

/// Black-box per-node feature width: [remaining tasks, est remaining
/// duration, n_children, n_parents, is_schedulable].
pub const NODE_FEAT_DIM: usize = 5;
/// Per-query summary feature width: [n_ops, n_remaining_tasks,
/// est_remaining_work, assigned_threads, free_threads].
pub const QUERY_FEAT_DIM: usize = 5;

/// Decima hyper-parameters.
#[derive(Debug, Clone)]
pub struct DecimaConfig {
    /// Hidden embedding width.
    pub hidden: usize,
    /// Sequential message-passing depth.
    pub layers: usize,
    /// Parallelism-limit head width (thread counts 1..=max).
    pub max_threads: usize,
    /// Cap on decisions per scheduling event.
    pub max_picks_per_event: usize,
    /// Reward configuration (average-only by default).
    pub reward: RewardConfig,
}

impl Default for DecimaConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            layers: 3,
            max_threads: 128,
            max_picks_per_event: 4,
            reward: RewardConfig { w_avg: 1.0, w_tail: 0.0, tail_percentile: 0.9 },
        }
    }
}

fn squash(x: f64) -> f32 {
    (x.max(0.0) + 1.0).ln() as f32
}

/// Black-box snapshot of one query for Decima.
#[derive(Debug, Clone)]
pub struct DecimaQuerySnapshot {
    /// Query id.
    pub qid: QueryId,
    /// Per-node features.
    pub node_feats: Vec<Vec<f32>>,
    /// `children[n]` = child node indices of node n.
    pub children: Vec<Vec<usize>>,
    /// Query summary features.
    pub query_feats: Vec<f32>,
    /// Decima-schedulable node indices: all *parents completed* (no
    /// pipelining — a Running producer does not unblock its consumer).
    pub schedulable: Vec<usize>,
}

/// Black-box snapshot of the system.
#[derive(Debug, Clone)]
pub struct DecimaSnapshot {
    /// Engine clock.
    pub time: f64,
    /// Idle threads.
    pub free_threads: usize,
    /// Active queries.
    pub queries: Vec<DecimaQuerySnapshot>,
}

impl DecimaSnapshot {
    /// Flattened candidates as (query index, schedulable-list index).
    pub fn candidates(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.candidates_into(&mut out);
        out
    }

    /// [`DecimaSnapshot::candidates`] into a caller-owned vector (cleared
    /// first), reusing its capacity on the inference hot path.
    pub fn candidates_into(&self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        for (qi, q) in self.queries.iter().enumerate() {
            for si in 0..q.schedulable.len() {
                out.push((qi, si));
            }
        }
    }
}

fn query_snapshot(ctx: &SchedContext<'_>, q: &QueryRuntime) -> DecimaQuerySnapshot {
    let n = q.plan.num_ops();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &q.plan.edges {
        children[e.parent.0].push(e.child.0);
    }
    // Decima's stricter schedulability: ALL producers finished (no
    // pipelining), regardless of the edge's non-pipeline-breaking flag.
    let schedulable: Vec<usize> = (0..n)
        .filter(|&i| {
            !matches!(q.ops[i].status, OpStatus::Running | OpStatus::Finished)
                && children[i].iter().all(|&c| q.ops[c].status == OpStatus::Finished)
        })
        .collect();
    let node_feats = (0..n)
        .map(|i| {
            let rt = &q.ops[i];
            let parents = q.plan.parents_of(OpId(i)).len();
            vec![
                squash(rt.remaining_work_orders() as f64),
                squash(rt.est_remaining_duration()),
                children[i].len() as f32,
                parents as f32,
                if schedulable.contains(&i) { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    let query_feats = vec![
        squash(n as f64),
        squash(q.ops.iter().map(|o| o.remaining_work_orders() as f64).sum()),
        squash(q.est_remaining_work()),
        q.assigned_threads as f32 / ctx.total_threads.max(1) as f32,
        ctx.free_threads as f32 / ctx.total_threads.max(1) as f32,
    ];
    DecimaQuerySnapshot { qid: q.qid, node_feats, children, query_feats, schedulable }
}

/// Captures the Decima view of the system.
pub fn decima_snapshot(ctx: &SchedContext<'_>) -> DecimaSnapshot {
    DecimaSnapshot {
        time: ctx.time,
        free_threads: ctx.free_threads,
        queries: ctx.queries.iter().map(|q| query_snapshot(ctx, q)).collect(),
    }
}

/// One recorded sub-decision (for REINFORCE replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecimaPick {
    /// Candidate index in the snapshot's flattened candidate list.
    pub cand_idx: usize,
    /// Thread grant.
    pub threads: usize,
}

struct GcnLayer {
    w_self: Linear,
    w_child: Linear,
}

/// The Decima network: input projection, sequential GCN, per-query
/// summary, node-selection and parallelism-limit heads.
pub struct DecimaModel {
    /// All trainable parameters.
    pub store: ParamStore,
    cfg: DecimaConfig,
    proj: Linear,
    gcn: Vec<GcnLayer>,
    summary: Mlp,
    node_head: Mlp,
    limit_head: Mlp,
}

impl DecimaModel {
    /// Builds a fresh Decima model.
    pub fn new(cfg: DecimaConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = cfg.hidden;
        let proj = Linear::new(&mut store, &mut rng, "dec.proj", NODE_FEAT_DIM, h);
        let gcn = (0..cfg.layers)
            .map(|l| GcnLayer {
                w_self: Linear::new(&mut store, &mut rng, &format!("dec.gcn{l}.self"), h, h),
                w_child: Linear::new(&mut store, &mut rng, &format!("dec.gcn{l}.child"), h, h),
            })
            .collect();
        let summary = Mlp::new(
            &mut store,
            &mut rng,
            "dec.summary",
            &[h + QUERY_FEAT_DIM, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let node_head = Mlp::new(
            &mut store,
            &mut rng,
            "dec.node",
            &[h + h, h, 1],
            Activation::LeakyRelu,
            Activation::None,
        );
        let limit_head = Mlp::new(
            &mut store,
            &mut rng,
            "dec.limit",
            &[h, h, cfg.max_threads],
            Activation::LeakyRelu,
            Activation::None,
        );
        Self { store, cfg, proj, gcn, summary, node_head, limit_head }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DecimaConfig {
        &self.cfg
    }

    fn topo_order(children: &[Vec<usize>]) -> Vec<usize> {
        let n = children.len();
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut is_child = vec![false; n];
        for cs in children {
            for &c in cs {
                is_child[c] = true;
            }
        }
        fn dfs(children: &[Vec<usize>], node: usize, visited: &mut [bool], order: &mut Vec<usize>) {
            if visited[node] {
                return;
            }
            visited[node] = true;
            for &c in &children[node] {
                dfs(children, c, visited, order);
            }
            order.push(node);
        }
        for (r, &child) in is_child.iter().enumerate() {
            if !child {
                dfs(children, r, &mut visited, &mut order);
            }
        }
        order
    }

    fn encode_query_on<B: Backend>(
        &self,
        b: &mut B,
        qs: &DecimaQuerySnapshot,
        h: &mut Vec<B::Id>,
    ) -> B::Id {
        h.clear();
        for f in &qs.node_feats {
            let x = b.input(f);
            h.push(b.linear(&self.proj, x, Activation::LeakyRelu));
        }
        let order = Self::topo_order(&qs.children);
        let mut next = b.take_ids();
        let mut terms = b.take_ids();
        for layer in &self.gcn {
            // Sequential message passing: parents read the *current
            // iteration's* child embeddings.
            next.clear();
            next.extend_from_slice(h);
            for &n in &order {
                let own = b.linear(&layer.w_self, h[n], Activation::None);
                terms.clear();
                terms.push(own);
                for &c in &qs.children[n] {
                    terms.push(b.linear(&layer.w_child, next[c], Activation::None));
                }
                let s = b.sum_vec(&terms);
                next[n] = b.leaky_relu(s, 0.01);
            }
            h.clear();
            h.extend_from_slice(&next);
        }
        b.recycle_ids(next);
        b.recycle_ids(terms);
        // Query summary: mean node embedding ‖ query feats → MLP.
        let summed = b.sum_vec(h);
        let mean = b.scale(summed, 1.0 / h.len() as f32);
        let qf = b.input(&qs.query_feats);
        let cat = b.concat(&[mean, qf]);
        b.mlp(&self.summary, cat)
    }

    /// Runs a decision pass on any [`Backend`]. With `forced`, replays
    /// those picks and rebuilds their log-probability. Decisions and
    /// pick traces land in the caller's vectors (cleared first); the
    /// log-probability handle is returned. All candidate scores come
    /// from one [`Backend::mlp_scores`] call — a single batched GEMM per
    /// head layer on the inference path.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_on<B: Backend>(
        &self,
        b: &mut B,
        snap: &DecimaSnapshot,
        sample: bool,
        mut rng: Option<&mut StdRng>,
        forced: Option<&[DecimaPick]>,
        scratch: &mut DecimaScratch<B::Id>,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<DecimaPick>,
    ) -> B::Id {
        decisions.clear();
        picks.clear();
        let DecimaScratch { node_embs, summaries, spare, cands, available, score_inputs, lp_terms } =
            scratch;
        for v in node_embs.drain(..) {
            spare.push(v);
        }
        summaries.clear();
        for qs in &snap.queries {
            let mut h = spare.pop().unwrap_or_default();
            let s = self.encode_query_on(b, qs, &mut h);
            node_embs.push(h);
            summaries.push(s);
        }
        snap.candidates_into(cands);
        available.clear();
        available.resize(cands.len(), true);
        let mut free = snap.free_threads;
        lp_terms.clear();

        score_inputs.clear();
        for &(qi, si) in cands.iter() {
            let op = snap.queries[qi].schedulable[si];
            score_inputs.push(b.concat(&[node_embs[qi][op], summaries[qi]]));
        }

        let max_iters = forced.map_or(self.cfg.max_picks_per_event, <[DecimaPick]>::len);
        if !cands.is_empty() {
            let scores = b.mlp_scores(&self.node_head, score_inputs);
            for it in 0..max_iters {
                if free == 0 {
                    break;
                }
                if !available.iter().any(|&a| a) {
                    break;
                }
                let mn = b.input_with(cands.len(), |buf| {
                    for (m, &a) in buf.iter_mut().zip(available.iter()) {
                        *m = if a { 0.0 } else { -1e9 };
                    }
                });
                let masked = b.add(scores, mn);
                let lsm = b.log_softmax(masked);
                let forced_pick = forced.map(|f| f[it]);
                let cand_idx = match forced_pick {
                    Some(p) => p.cand_idx,
                    None => {
                        choose_on(b, lsm, |i| available[i], cands.len(), sample, rng.as_deref_mut())
                    }
                };
                lp_terms.push(b.gather(lsm, cand_idx));

                let (qi, si) = cands[cand_idx];
                let op = snap.queries[qi].schedulable[si];

                // Parallelism limit head.
                let max_thr = free.min(self.cfg.max_threads).max(1);
                let logits = b.mlp(&self.limit_head, summaries[qi]);
                let tm = b.input_with(self.cfg.max_threads, |buf| {
                    for (t, m) in buf.iter_mut().enumerate() {
                        *m = if t < max_thr { 0.0 } else { -1e9 };
                    }
                });
                let tmasked = b.add(logits, tm);
                let tlsm = b.log_softmax(tmasked);
                let tidx = match forced_pick {
                    Some(p) => p.threads - 1,
                    None => {
                        choose_on(b, tlsm, |i| i < max_thr, self.cfg.max_threads, sample, rng.as_deref_mut())
                    }
                };
                lp_terms.push(b.gather(tlsm, tidx));
                let threads = tidx + 1;

                decisions.push(SchedDecision {
                    query: snap.queries[qi].qid,
                    root: OpId(op),
                    // No pipelining support (the paper's Section 1 critique).
                    pipeline_degree: 1,
                    threads,
                });
                picks.push(DecimaPick { cand_idx, threads });
                free -= threads;
                available[cand_idx] = false;
            }
        }

        if lp_terms.is_empty() {
            b.scalar(0.0)
        } else {
            let s = b.concat(lp_terms);
            b.sum_elems(s)
        }
    }

    /// Runs a decision pass on a fresh autodiff tape (the training /
    /// replay instantiation of [`DecimaModel::decide_on`]).
    pub fn decide(
        &self,
        snap: &DecimaSnapshot,
        sample: bool,
        rng: Option<&mut StdRng>,
        forced: Option<&[DecimaPick]>,
    ) -> (Graph, Vec<SchedDecision>, Vec<DecimaPick>, NodeId) {
        let mut g = Graph::new();
        let mut scratch = DecimaScratch::default();
        let mut decisions = Vec::new();
        let mut picks = Vec::new();
        let lp = self.decide_on(
            &mut TapeBackend::new(&mut g, &self.store),
            snap,
            sample,
            rng,
            forced,
            &mut scratch,
            &mut decisions,
            &mut picks,
        );
        (g, decisions, picks, lp)
    }

    /// Runs a decision pass on the tape-free inference path (no autodiff
    /// nodes, no parameter clones, batched candidate scoring), returning
    /// the decision-sequence log-probability as a plain float. Decisions
    /// are bit-identical to [`DecimaModel::decide`].
    pub fn decide_infer(
        &self,
        snap: &DecimaSnapshot,
        sample: bool,
        rng: Option<&mut StdRng>,
        infer: &mut DecimaInfer,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<DecimaPick>,
    ) -> f32 {
        let DecimaInfer { ctx, scratch } = infer;
        let mut b = ctx.session(&self.store);
        let lp = self.decide_on(&mut b, snap, sample, rng, None, scratch, decisions, picks);
        b.value(lp)[0]
    }
}

/// Reusable per-call storage for [`DecimaModel::decide_on`].
#[derive(Debug)]
pub struct DecimaScratch<I> {
    node_embs: Vec<Vec<I>>,
    summaries: Vec<I>,
    spare: Vec<Vec<I>>,
    cands: Vec<(usize, usize)>,
    available: Vec<bool>,
    score_inputs: Vec<I>,
    lp_terms: Vec<I>,
}

impl<I> Default for DecimaScratch<I> {
    fn default() -> Self {
        Self {
            node_embs: Vec::new(),
            summaries: Vec::new(),
            spare: Vec::new(),
            cands: Vec::new(),
            available: Vec::new(),
            score_inputs: Vec::new(),
            lp_terms: Vec::new(),
        }
    }
}

/// Reusable tape-free decision state for [`DecimaScheduler`]: the
/// evaluation arena plus the model's scratch vectors.
#[derive(Debug, Default)]
pub struct DecimaInfer {
    ctx: InferCtx,
    scratch: DecimaScratch<ValId>,
}

impl DecimaInfer {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Picks an index among the valid entries of a log-softmax vector:
/// argmax when not sampling, otherwise an allocation-free renormalized
/// categorical draw arithmetic-identical to `softmax_vals` over the
/// gathered valid entries.
fn choose_on<B: Backend>(
    b: &B,
    lsm: B::Id,
    is_valid: impl Fn(usize) -> bool,
    n: usize,
    sample: bool,
    rng: Option<&mut StdRng>,
) -> usize {
    let log_probs = b.value(lsm);
    if !sample {
        return (0..n)
            .filter(|&i| is_valid(i))
            .max_by(|&a, &c| log_probs[a].total_cmp(&log_probs[c]))
            .expect("non-empty");
    }
    let rng = rng.expect("sampling needs rng");
    let mut m = f32::NEG_INFINITY;
    for (i, &lp) in log_probs.iter().enumerate().take(n) {
        if is_valid(i) {
            m = f32::max(m, lp);
        }
    }
    let mut z = 0.0f32;
    for (i, &lp) in log_probs.iter().enumerate().take(n) {
        if is_valid(i) {
            z += (lp - m).exp();
        }
    }
    let mut u: f32 = rng.gen();
    let mut last = None;
    for (i, &lp) in log_probs.iter().enumerate().take(n) {
        if !is_valid(i) {
            continue;
        }
        last = Some(i);
        u -= (lp - m).exp() / z;
        if u <= 0.0 {
            return i;
        }
    }
    last.expect("non-empty")
}

/// One recorded Decima step.
#[derive(Debug, Clone)]
pub struct DecimaStep {
    /// The black-box snapshot.
    pub snapshot: DecimaSnapshot,
    /// Sub-decisions taken.
    pub picks: Vec<DecimaPick>,
    /// Event time.
    pub time: f64,
    /// Active query count.
    pub num_queries: usize,
}

/// The Decima scheduler.
pub struct DecimaScheduler {
    model: DecimaModel,
    sample: bool,
    rng: StdRng,
    recording: bool,
    steps: Vec<DecimaStep>,
    /// Reusable tape-free decision state (decisions run through
    /// [`DecimaModel::decide_infer`], not the autodiff tape).
    infer: DecimaInfer,
}

impl DecimaScheduler {
    /// Inference-mode scheduler.
    pub fn greedy(model: DecimaModel) -> Self {
        Self {
            model,
            sample: false,
            rng: StdRng::seed_from_u64(0),
            recording: false,
            steps: Vec::new(),
            infer: DecimaInfer::new(),
        }
    }

    /// Training-mode scheduler with recording.
    pub fn sampling(model: DecimaModel, seed: u64) -> Self {
        Self {
            model,
            sample: true,
            rng: StdRng::seed_from_u64(seed),
            recording: true,
            steps: Vec::new(),
            infer: DecimaInfer::new(),
        }
    }

    /// Consumes the scheduler, returning the model and recorded steps.
    pub fn finish(self) -> (DecimaModel, Vec<DecimaStep>) {
        (self.model, self.steps)
    }
}

impl Scheduler for DecimaScheduler {
    fn name(&self) -> String {
        "decima".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let snap = decima_snapshot(ctx);
        let rng = if self.sample { Some(&mut self.rng) } else { None };
        let mut decisions = Vec::new();
        let mut picks = Vec::new();
        self.model.decide_infer(
            &snap,
            self.sample,
            rng,
            &mut self.infer,
            &mut decisions,
            &mut picks,
        );
        if self.recording && !picks.is_empty() {
            self.steps.push(DecimaStep {
                snapshot: snap,
                picks,
                time: ctx.time,
                num_queries: ctx.queries.len(),
            });
        }
        decisions
    }

    fn on_tick(
        &mut self,
        ctx: &SchedContext<'_>,
        events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        // Every event of a tick fires against the same post-tick state,
        // and Decima's pick loop already runs until the free pool or the
        // candidate set is exhausted — so one decision pass serves the
        // whole batch; per-event redelivery would just re-run the same
        // pass against a drained pool.
        let (first, _rest) = events.split_first()?;
        Some(self.on_event(ctx, first))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    fn small() -> DecimaModel {
        DecimaModel::new(DecimaConfig { hidden: 12, layers: 2, max_threads: 16, ..Default::default() }, 5)
    }

    #[test]
    fn decima_completes_workloads_without_pipelining() {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 5, ArrivalPattern::Batch, 1);
        let mut s = DecimaScheduler::greedy(small());
        let res = simulate(SimConfig { num_threads: 8, ..Default::default() }, &wl, &mut s);
        assert_eq!(res.outcomes.len(), 5);
    }

    #[test]
    fn decisions_always_degree_one() {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 3, ArrivalPattern::Batch, 2);

        struct Probe {
            inner: DecimaScheduler,
            max_degree_seen: usize,
        }
        impl Scheduler for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn on_event(&mut self, ctx: &SchedContext<'_>, ev: &SchedEvent) -> Vec<SchedDecision> {
                let ds = self.inner.on_event(ctx, ev);
                for d in &ds {
                    self.max_degree_seen = self.max_degree_seen.max(d.pipeline_degree);
                }
                ds
            }
        }
        let mut p = Probe { inner: DecimaScheduler::greedy(small()), max_degree_seen: 0 };
        simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut p);
        assert_eq!(p.max_degree_seen, 1);
    }

    #[test]
    fn decima_schedulability_stricter_than_lsched() {
        use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
        use std::sync::Arc;
        // scan -> select (non-breaking). LSched can schedule the select
        // while the scan runs; Decima cannot.
        let mut b = PlanBuilder::new("p");
        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![], 10.0, 2, 0.1, 1.0);
        let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![], 5.0, 2, 0.1, 1.0);
        b.connect(scan, sel, true);
        let mut q = QueryRuntime::new(QueryId(0), Arc::new(b.finish(sel)), 0.0, 4);
        q.ops[0].status = OpStatus::Running;
        q.refresh_statuses();
        assert_eq!(q.ops[1].status, OpStatus::Schedulable); // LSched view
        let queries = vec![q];
        let free = [0usize, 1];
        let hot = lsched_engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 4,
            free_threads: 2,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let snap = decima_snapshot(&ctx);
        assert!(snap.queries[0].schedulable.is_empty()); // Decima view
    }

    #[test]
    fn replay_reproduces_logprob() {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 3, ArrivalPattern::Batch, 3);
        let mut s = DecimaScheduler::sampling(small(), 9);
        simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut s);
        let (mut model, steps) = s.finish();
        assert!(!steps.is_empty());
        let step = &steps[0];
        let (g, _, picks, lp) = model.decide(&step.snapshot, false, None, Some(&step.picks));
        assert_eq!(&picks, &step.picks);
        let v = g.value(lp).item();
        assert!(v <= 0.0 && v.is_finite());
        let loss = {
            let mut g = g;
            let l = g.scale(lp, -1.0);
            g.backward(l, &mut model.store);
            l
        };
        let _ = loss;
        assert!(model.store.grad_norm() > 0.0);
    }
}
