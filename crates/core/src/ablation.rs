//! The LSched variants of Figure 15, each removing one key contribution:
//! graph attention, triangle (tree) convolution, pipelining prediction,
//! or transfer learning (the latter is a training-procedure choice, not
//! an architecture change).

use crate::agent::{LSchedConfig, LSchedModel};
use crate::encoder::{EncoderConfig, EncoderKind};
use crate::predictor::PredictorConfig;

/// The ablation variants evaluated in Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LSchedVariant {
    /// The complete system.
    Full,
    /// "LSched w/o Transfer Learning": same architecture, trained from
    /// scratch (handled by the training harness, which skips
    /// `transfer_from`).
    NoTransferLearning,
    /// "LSched w/o Pipelining Prediction": the pipeline-degree head is
    /// bypassed and every pipeline has degree 1.
    NoPipelining,
    /// "LSched w/o Graph Attention Support": tree convolution without
    /// attention-weighted terms.
    NoGraphAttention,
    /// "LSched w/o Triangle Convolution": sequential message-passing GCN
    /// in place of the tree convolution.
    NoTriangleConvolution,
}

impl LSchedVariant {
    /// All variants, in Figure 15's legend order.
    pub const ALL: [LSchedVariant; 5] = [
        LSchedVariant::Full,
        LSchedVariant::NoTransferLearning,
        LSchedVariant::NoPipelining,
        LSchedVariant::NoGraphAttention,
        LSchedVariant::NoTriangleConvolution,
    ];

    /// Display label matching the figure legend.
    pub fn label(self) -> &'static str {
        match self {
            LSchedVariant::Full => "lsched",
            LSchedVariant::NoTransferLearning => "lsched_no_transfer",
            LSchedVariant::NoPipelining => "lsched_no_pipelining",
            LSchedVariant::NoGraphAttention => "lsched_no_gat",
            LSchedVariant::NoTriangleConvolution => "lsched_no_tcn",
        }
    }

    /// Whether the training harness should apply transfer learning when
    /// a source model is available.
    pub fn uses_transfer(self) -> bool {
        !matches!(self, LSchedVariant::NoTransferLearning)
    }
}

/// Builds the agent configuration for a variant on top of a base config.
pub fn config_for_variant(base: &LSchedConfig, variant: LSchedVariant) -> LSchedConfig {
    let mut encoder: EncoderConfig = base.encoder.clone();
    let mut predictor: PredictorConfig = base.predictor.clone();
    match variant {
        LSchedVariant::Full | LSchedVariant::NoTransferLearning => {}
        LSchedVariant::NoPipelining => predictor.ablate_pipelining = true,
        LSchedVariant::NoGraphAttention => encoder.kind = EncoderKind::TcnPlain,
        LSchedVariant::NoTriangleConvolution => encoder.kind = EncoderKind::SeqGcn,
    }
    LSchedConfig { encoder, predictor }
}

/// Builds a fresh model for a variant.
pub fn model_for_variant(base: &LSchedConfig, variant: LSchedVariant, seed: u64) -> LSchedModel {
    LSchedModel::new(config_for_variant(base, variant), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_configure_expected_knobs() {
        let base = LSchedConfig::default();
        let no_pipe = config_for_variant(&base, LSchedVariant::NoPipelining);
        assert!(no_pipe.predictor.ablate_pipelining);
        assert_eq!(no_pipe.encoder.kind, EncoderKind::TcnGat);

        let no_gat = config_for_variant(&base, LSchedVariant::NoGraphAttention);
        assert_eq!(no_gat.encoder.kind, EncoderKind::TcnPlain);

        let no_tcn = config_for_variant(&base, LSchedVariant::NoTriangleConvolution);
        assert_eq!(no_tcn.encoder.kind, EncoderKind::SeqGcn);

        let full = config_for_variant(&base, LSchedVariant::Full);
        assert!(!full.predictor.ablate_pipelining);
        assert_eq!(full.encoder.kind, EncoderKind::TcnGat);
    }

    #[test]
    fn labels_unique_and_transfer_flag() {
        let labels: std::collections::HashSet<_> =
            LSchedVariant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 5);
        assert!(!LSchedVariant::NoTransferLearning.uses_transfer());
        assert!(LSchedVariant::NoPipelining.uses_transfer());
    }

    #[test]
    fn variant_models_build() {
        let base = LSchedConfig {
            encoder: EncoderConfig { hidden: 8, edge_hidden: 4, pqe_dim: 4, aqe_dim: 4, conv_layers: 2, ..Default::default() },
            predictor: PredictorConfig { max_degree: 4, max_threads: 8, ..Default::default() },
        };
        for v in LSchedVariant::ALL {
            let m = model_for_variant(&base, v, 1);
            assert!(m.store.num_scalars() > 0, "{:?}", v);
        }
    }
}
