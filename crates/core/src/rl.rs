//! The REINFORCE machinery of Section 6: the average+tail reward, suffix
//! returns, and the time-indexed reward baseline. Shared by LSched's
//! trainer and the Decima baseline (which uses the same policy-gradient
//! loop over its own network).

/// Reward weighting between average and tail latency (the `w1`, `w2`
/// of Section 6; both default to 0.5 per Section 7.1).
#[derive(Debug, Clone, Copy)]
pub struct RewardConfig {
    /// Weight of the average-latency term.
    pub w_avg: f64,
    /// Weight of the tail-latency term.
    pub w_tail: f64,
    /// The percentile used as the tail indicator `P` (0.9 in the paper).
    pub tail_percentile: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self { w_avg: 0.5, w_tail: 0.5, tail_percentile: 0.9 }
    }
}

/// Computes the per-decision latency approximations
/// `H_d = (t_d − t_{d−1}) · Q_d` for an episode, given the decision
/// times and the number of existing queries at each decision, plus a
/// terminal interval to the episode's end (`makespan`).
pub fn latency_approximations(
    times: &[f64],
    num_queries: &[usize],
    makespan: f64,
) -> Vec<f64> {
    assert_eq!(times.len(), num_queries.len());
    let mut h = Vec::with_capacity(times.len() + 1);
    let mut prev = 0.0;
    for (&t, &q) in times.iter().zip(num_queries) {
        h.push((t - prev).max(0.0) * q as f64);
        prev = t;
    }
    // Terminal stretch after the last decision.
    let tail_q = num_queries.last().copied().unwrap_or(0);
    h.push((makespan - prev).max(0.0) * tail_q as f64);
    h
}

/// The `p`-percentile of a sample (nearest-rank on a sorted copy).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
    v[idx]
}

/// Section 6's reward for one decision:
/// `r_d = (w1·r¹_d + w2·r²_d)/(w1+w2)` with `r¹_d = −H_d` and a tail
/// term derived from the paper's `r²_d = −(H_d − P)`.
///
/// **Deviation (documented in DESIGN.md):** we clamp the tail term to
/// `−max(0, H_d − P)`. Taken literally, `−(H_d − P)` pays a bonus of
/// `+P` to every below-tail decision, so a policy can *increase* its
/// episode return by making the 90th-percentile latency worse — we
/// observed exactly this divergence during training. The clamped form
/// keeps the intended semantics (extra penalty on tail intervals, none
/// elsewhere) while leaving the objective monotone in latency.
pub fn reward(cfg: &RewardConfig, h_d: f64, p: f64) -> f64 {
    let r1 = -h_d;
    let r2 = -((h_d - p).max(0.0));
    (cfg.w_avg * r1 + cfg.w_tail * r2) / (cfg.w_avg + cfg.w_tail)
}

/// Per-episode rewards for every decision (the terminal interval
/// contributes to returns but carries no decision of its own, so one
/// more reward than decisions is produced; callers drop the last).
pub fn episode_rewards(cfg: &RewardConfig, h: &[f64]) -> Vec<f64> {
    let p = percentile(h, cfg.tail_percentile);
    h.iter().map(|&hd| reward(cfg, hd, p)).collect()
}

/// Suffix returns `G_d = Σ_{k ≥ d} r_k` (undiscounted, as the episode
/// horizon is finite).
pub fn suffix_returns(rewards: &[f64]) -> Vec<f64> {
    let mut g = rewards.to_vec();
    suffix_returns_in_place(&mut g);
    g
}

/// In-place variant of [`suffix_returns`]: overwrites each reward with
/// the suffix return starting at it. The rollout hot path uses this to
/// turn an episode's reward vector into returns without a second
/// allocation; the accumulation order (and hence every bit) matches
/// [`suffix_returns`].
pub fn suffix_returns_in_place(rewards: &mut [f64]) {
    let mut acc = 0.0;
    for r in rewards.iter_mut().rev() {
        acc += *r;
        *r = acc;
    }
}

/// A time-indexed (per-decision-index) exponential-moving-average
/// baseline over episode returns — the variance-reduction baseline of
/// Weaver & Tao that Section 6 cites.
#[derive(Debug, Clone, Default)]
pub struct StepBaseline {
    means: Vec<f64>,
    counts: Vec<u64>,
    momentum: f64,
}

impl StepBaseline {
    /// Creates a baseline with the given EMA momentum (e.g. 0.9).
    pub fn new(momentum: f64) -> Self {
        Self { means: Vec::new(), counts: Vec::new(), momentum }
    }

    /// The baseline value for decision index `d`.
    pub fn value(&self, d: usize) -> f64 {
        self.means.get(d).copied().unwrap_or(0.0)
    }

    /// Folds an episode's returns into the baseline.
    pub fn update(&mut self, returns: &[f64]) {
        if self.means.len() < returns.len() {
            self.means.resize(returns.len(), 0.0);
            self.counts.resize(returns.len(), 0);
        }
        for (d, &g) in returns.iter().enumerate() {
            if self.counts[d] == 0 {
                self.means[d] = g;
            } else {
                self.means[d] = self.momentum * self.means[d] + (1.0 - self.momentum) * g;
            }
            self.counts[d] += 1;
        }
    }

    /// Advantages `G_d − b_d` for an episode.
    pub fn advantages(&self, returns: &[f64]) -> Vec<f64> {
        returns.iter().enumerate().map(|(d, &g)| g - self.value(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_approximations_match_definition() {
        // Decisions at t=1 (2 queries), t=3 (3 queries); makespan 4.
        let h = latency_approximations(&[1.0, 3.0], &[2, 3], 4.0);
        assert_eq!(h, vec![2.0, 6.0, 3.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.9), 9.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.9), 0.0);
    }

    #[test]
    fn reward_balances_avg_and_tail() {
        let cfg = RewardConfig::default();
        let p = 10.0;
        // Below the tail threshold: only the average term applies.
        let small = reward(&cfg, 2.0, p);
        assert!((small - (-1.0)).abs() < 1e-12); // (-2 + 0)/2
        // Above the threshold: tail excess is penalized on top.
        let big = reward(&cfg, 20.0, p);
        assert!((big - (-15.0)).abs() < 1e-12); // (-20 - 10)/2
        assert!(small > big);
    }

    #[test]
    fn avg_only_reward_matches_decima_style() {
        let cfg = RewardConfig { w_avg: 1.0, w_tail: 0.0, tail_percentile: 0.9 };
        assert_eq!(reward(&cfg, 7.0, 100.0), -7.0);
    }

    #[test]
    fn suffix_returns_accumulate_backwards() {
        assert_eq!(suffix_returns(&[1.0, 2.0, 3.0]), vec![6.0, 5.0, 3.0]);
        assert!(suffix_returns(&[]).is_empty());
    }

    #[test]
    fn suffix_returns_in_place_matches_allocating_form() {
        let rewards = [0.25, -1.5, 3.0, 0.0, 7.125];
        let expect = suffix_returns(&rewards);
        let mut inplace = rewards;
        suffix_returns_in_place(&mut inplace);
        for (a, b) in expect.iter().zip(&inplace) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn baseline_tracks_returns() {
        let mut b = StepBaseline::new(0.5);
        b.update(&[10.0, 5.0]);
        assert_eq!(b.value(0), 10.0);
        b.update(&[20.0, 5.0]);
        assert_eq!(b.value(0), 15.0);
        let adv = b.advantages(&[16.0, 5.0]);
        assert!((adv[0] - 1.0).abs() < 1e-12);
        assert_eq!(adv[1], 0.0);
    }

    #[test]
    fn baseline_handles_varying_lengths() {
        let mut b = StepBaseline::new(0.9);
        b.update(&[1.0]);
        b.update(&[1.0, 2.0, 3.0]);
        assert_eq!(b.value(2), 3.0);
        assert_eq!(b.value(9), 0.0);
    }
}
