//! The Query Encoder (Section 4, Figure 6): a single-query encoder
//! combining edge-aware tree convolution with graph attention, plus the
//! high-level Per-Query (PQE) and All-Queries (AQE) summarization
//! networks implemented as message passing to dummy summary nodes.
//!
//! Two ablation variants back Figure 15: `TcnPlain` removes the GAT
//! importance weighting and `SeqGcn` replaces the tree convolution with
//! Decima-style *sequential message passing* graph convolution, whose
//! within-layer child→parent fusion the paper identifies as a source of
//! over-smoothing (Section 4.2.1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use lsched_nn::{
    Activation, Backend, Graph, Linear, Mlp, NodeId, ParamStore, TapeBackend, TreeConvStack,
    TreeSpec,
};

use crate::features::{FeatureConfig, QuerySnapshot, SystemSnapshot};

/// Which single-query encoder to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Full LSched encoder: tree convolution + GAT (the default).
    TcnGat,
    /// Tree convolution without attention (Figure 15's "w/o Graph
    /// Attention Support").
    TcnPlain,
    /// Sequential message-passing GCN (Figure 15's "w/o Triangle
    /// Convolution"; also the building block of the Decima baseline).
    SeqGcn,
}

/// Encoder hyper-parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Feature dimensions.
    pub feat: FeatureConfig,
    /// Node-embedding width.
    pub hidden: usize,
    /// Edge-embedding width.
    pub edge_hidden: usize,
    /// PQE output width.
    pub pqe_dim: usize,
    /// AQE output width.
    pub aqe_dim: usize,
    /// Convolution depth (≥ 3 leaves an interior layer to freeze during
    /// transfer learning).
    pub conv_layers: usize,
    /// Encoder variant.
    pub kind: EncoderKind,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            feat: FeatureConfig::default(),
            hidden: 32,
            edge_hidden: 8,
            pqe_dim: 16,
            aqe_dim: 16,
            conv_layers: 3,
            kind: EncoderKind::TcnGat,
        }
    }
}

/// Sequential message-passing GCN layer parameters (the Decima-style
/// alternative encoder).
#[derive(Debug, Clone)]
struct SeqGcnLayer {
    w_self: Linear,
    w_child: Linear,
    w_edge: Linear,
}

enum ConvStack {
    Tcn(TreeConvStack),
    Seq(Vec<SeqGcnLayer>),
}

impl std::fmt::Debug for ConvStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvStack::Tcn(_) => write!(f, "ConvStack::Tcn"),
            ConvStack::Seq(_) => write!(f, "ConvStack::Seq"),
        }
    }
}

/// The encodings produced for one query. Generic over the executor's
/// value handle (`NodeId` on the tape, `ValId` on the inference arena).
#[derive(Debug, Clone)]
pub struct QueryEncoding<I = NodeId> {
    /// Node embeddings (NE), one per operator.
    pub node_emb: Vec<I>,
    /// Edge embeddings (EE), one per plan edge.
    pub edge_emb: Vec<I>,
    /// The Per-Query Embedding (PQE).
    pub pqe: I,
}

/// Encodings of the whole system at one scheduling event.
#[derive(Debug)]
pub struct SystemEncoding<I = NodeId> {
    /// Per-query encodings, aligned with the snapshot's query order.
    pub queries: Vec<QueryEncoding<I>>,
    /// The All-Queries Embedding (AQE).
    pub aqe: I,
}

/// Reusable per-call storage for [`QueryEncoder::encode_system_on`]. The
/// inference path keeps one of these alive across scheduling decisions so
/// the per-query embedding vectors retain their capacity.
#[derive(Debug)]
pub struct EncodeScratch<I> {
    queries: Vec<QueryEncoding<I>>,
    /// Retired `(node_emb, edge_emb)` vector pairs awaiting reuse. Whole
    /// `QueryEncoding`s can't be pooled because `pqe` has no default.
    spare: lsched_util::Pool<(Vec<I>, Vec<I>)>,
}

impl<I> Default for EncodeScratch<I> {
    fn default() -> Self {
        Self { queries: Vec::new(), spare: lsched_util::Pool::new() }
    }
}

impl<I> EncodeScratch<I> {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-query encodings produced by the most recent
    /// [`QueryEncoder::encode_system_on`] call.
    pub fn queries(&self) -> &[QueryEncoding<I>] {
        &self.queries
    }

    /// Retires every per-query encoding into the spare pool, leaving the
    /// scratch as if it had encoded an empty system (its capacity is
    /// kept). The cross-event batch path uses this for events whose
    /// snapshot holds no queries, which never reach the encoder.
    pub fn clear(&mut self) {
        for qe in self.queries.drain(..) {
            self.spare.put((qe.node_emb, qe.edge_emb));
        }
    }
}

/// The Query Encoder network (Figure 6).
#[derive(Debug)]
pub struct QueryEncoder {
    cfg: EncoderConfig,
    node_proj: Linear,
    edge_proj: Linear,
    conv: ConvStack,
    pqe_node_mlp: Mlp,
    pqe_edge_mlp: Mlp,
    pqe_out_mlp: Mlp,
    aqe_in_mlp: Mlp,
    aqe_out_mlp: Mlp,
}

impl QueryEncoder {
    /// Registers all encoder parameters under `"{prefix}.*"`.
    pub fn new(store: &mut ParamStore, seed: u64, prefix: &str, cfg: EncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let opf = cfg.feat.opf_dim();
        let h = cfg.hidden;
        let eh = cfg.edge_hidden;
        let node_proj = Linear::new(store, &mut rng, &format!("{prefix}.node_proj"), opf, h);
        let edge_proj = Linear::new(
            store,
            &mut rng,
            &format!("{prefix}.edge_proj"),
            FeatureConfig::EDF_DIM,
            eh,
        );
        let conv = match cfg.kind {
            EncoderKind::TcnGat | EncoderKind::TcnPlain => ConvStack::Tcn(TreeConvStack::new(
                store,
                &mut rng,
                &format!("{prefix}.tcn"),
                h,
                h,
                FeatureConfig::EDF_DIM,
                cfg.conv_layers,
                cfg.kind == EncoderKind::TcnGat,
            )),
            EncoderKind::SeqGcn => ConvStack::Seq(
                (0..cfg.conv_layers)
                    .map(|l| SeqGcnLayer {
                        w_self: Linear::new(store, &mut rng, &format!("{prefix}.gcn{l}.self"), h, h),
                        w_child: Linear::new(store, &mut rng, &format!("{prefix}.gcn{l}.child"), h, h),
                        w_edge: Linear::new(
                            store,
                            &mut rng,
                            &format!("{prefix}.gcn{l}.edge"),
                            FeatureConfig::EDF_DIM,
                            h,
                        ),
                    })
                    .collect(),
            ),
        };
        let pqe_node_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_node"),
            &[h + opf, h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let pqe_edge_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_edge"),
            &[eh + FeatureConfig::EDF_DIM, h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let pqe_out_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_out"),
            &[h, h, h, cfg.pqe_dim],
            Activation::LeakyRelu,
            Activation::None,
        );
        let aqe_in_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.aqe_in"),
            &[cfg.pqe_dim + cfg.feat.qf_dim(), h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let aqe_out_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.aqe_out"),
            &[h, h, h, cfg.aqe_dim],
            Activation::LeakyRelu,
            Activation::None,
        );
        Self { cfg, node_proj, edge_proj, conv, pqe_node_mlp, pqe_edge_mlp, pqe_out_mlp, aqe_in_mlp, aqe_out_mlp }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Topological (children-first) order of a tree.
    fn topo_order(tree: &TreeSpec) -> Vec<usize> {
        let n = tree.len();
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Roots are nodes that are nobody's child.
        let mut is_child = vec![false; n];
        for slots in &tree.children {
            for s in slots.iter().flatten() {
                is_child[s.0] = true;
            }
        }
        fn dfs(tree: &TreeSpec, node: usize, visited: &mut [bool], order: &mut Vec<usize>) {
            if visited[node] {
                return;
            }
            visited[node] = true;
            for s in tree.children[node].iter().flatten() {
                dfs(tree, s.0, visited, order);
            }
            order.push(node);
        }
        for (root, &child) in is_child.iter().enumerate() {
            if !child {
                dfs(tree, root, &mut visited, &mut order);
            }
        }
        debug_assert_eq!(order.len(), n);
        order
    }

    fn conv_forward_on<B: Backend>(
        &self,
        b: &mut B,
        qs: &QuerySnapshot,
        nodes: &[B::Id],
        raw_edges: &[B::Id],
        out: &mut Vec<B::Id>,
    ) {
        match &self.conv {
            ConvStack::Tcn(stack) => stack.forward_on(b, qs.tree(), nodes, raw_edges, out),
            ConvStack::Seq(layers) => {
                // Sequential message passing: within each layer the
                // embedding of a parent is computed from the *current
                // layer's* child embeddings (children first). This is the
                // ablation path; `topo_order` still allocates.
                let order = Self::topo_order(qs.tree());
                out.clear();
                out.extend_from_slice(nodes);
                let mut next = b.take_ids();
                let mut terms = b.take_ids();
                for layer in layers {
                    next.clear();
                    next.extend_from_slice(out);
                    for &n in &order {
                        let own = b.linear(&layer.w_self, out[n], Activation::None);
                        terms.clear();
                        terms.push(own);
                        for slot in qs.tree().children[n].iter().flatten() {
                            let (c, e) = *slot;
                            terms.push(b.linear(&layer.w_child, next[c], Activation::None));
                            terms.push(b.linear(&layer.w_edge, raw_edges[e], Activation::None));
                        }
                        let sum = b.sum_vec(&terms);
                        next[n] = b.leaky_relu(sum, 0.01);
                    }
                    out.clear();
                    out.extend_from_slice(&next);
                }
                b.recycle_ids(next);
                b.recycle_ids(terms);
            }
        }
    }

    /// Encodes one query on any [`Backend`]: node embeddings (NE) and
    /// edge embeddings (EE) are written into the caller's vectors and the
    /// PQE summary is returned (Figure 6, left and middle).
    pub fn encode_query_on<B: Backend>(
        &self,
        b: &mut B,
        qs: &QuerySnapshot,
        node_emb: &mut Vec<B::Id>,
        edge_emb: &mut Vec<B::Id>,
    ) -> B::Id {
        let opf_dim = self.cfg.feat.opf_dim();
        let mut opf_nodes = b.take_ids();
        for op in 0..qs.num_ops() {
            opf_nodes.push(b.input_with(opf_dim, |buf| qs.opf_write(op, buf)));
        }
        let mut raw_edges = b.take_ids();
        for f in qs.edf() {
            raw_edges.push(b.input(f));
        }

        // Project raw OPF into the hidden space, then convolve.
        let mut projected = b.take_ids();
        for &x in opf_nodes.iter() {
            projected.push(b.linear(&self.node_proj, x, Activation::LeakyRelu));
        }
        self.conv_forward_on(b, qs, &projected, &raw_edges, node_emb);

        // Edge embeddings (EE).
        edge_emb.clear();
        for &e in raw_edges.iter() {
            edge_emb.push(b.linear(&self.edge_proj, e, Activation::LeakyRelu));
        }

        // PQE: false directed edges from all nodes and edges into a dummy
        // summary node — message passing implemented as per-element MLPs
        // followed by a sum and an output MLP. Raw OPF/EDF features are
        // concatenated with the learned embeddings, per Figure 6.
        let mut messages = b.take_ids();
        for (ne, opf) in node_emb.iter().zip(opf_nodes.iter()) {
            let cat = b.concat(&[*ne, *opf]);
            messages.push(b.mlp(&self.pqe_node_mlp, cat));
        }
        for (ee, edf) in edge_emb.iter().zip(raw_edges.iter()) {
            let cat = b.concat(&[*ee, *edf]);
            messages.push(b.mlp(&self.pqe_edge_mlp, cat));
        }
        let summed = b.sum_vec(&messages);
        // Scale by 1/|messages| to keep magnitudes stable across plan sizes.
        let mean = b.scale(summed, 1.0 / messages.len() as f32);
        let pqe = b.mlp(&self.pqe_out_mlp, mean);

        b.recycle_ids(opf_nodes);
        b.recycle_ids(raw_edges);
        b.recycle_ids(projected);
        b.recycle_ids(messages);
        pqe
    }

    /// Encodes one query: node embeddings (NE), edge embeddings (EE) and
    /// the PQE summary (the tape instantiation of
    /// [`QueryEncoder::encode_query_on`]).
    pub fn encode_query(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        qs: &QuerySnapshot,
    ) -> QueryEncoding {
        let mut node_emb = Vec::new();
        let mut edge_emb = Vec::new();
        let pqe = self.encode_query_on(
            &mut TapeBackend::new(g, store),
            qs,
            &mut node_emb,
            &mut edge_emb,
        );
        QueryEncoding { node_emb, edge_emb, pqe }
    }

    /// Encodes the whole system on any [`Backend`]: every query plus the
    /// AQE summary (Figure 6, bottom). Per-query encodings land in
    /// `scratch` (readable via [`EncodeScratch::queries`]); the AQE handle
    /// is returned.
    pub fn encode_system_on<B: Backend>(
        &self,
        b: &mut B,
        snap: &SystemSnapshot,
        scratch: &mut EncodeScratch<B::Id>,
    ) -> B::Id {
        assert!(!snap.queries.is_empty(), "encode_system needs at least one query");
        // Retire last call's per-query vectors so their capacity is reused.
        scratch.clear();
        for qs in &snap.queries {
            let (mut node_emb, mut edge_emb) = scratch.spare.take();
            let pqe = self.encode_query_on(b, qs, &mut node_emb, &mut edge_emb);
            scratch.queries.push(QueryEncoding { node_emb, edge_emb, pqe });
        }
        let mut messages = b.take_ids();
        for (enc, qs) in scratch.queries.iter().zip(&snap.queries) {
            let qf = b.input(&qs.qf);
            let cat = b.concat(&[enc.pqe, qf]);
            messages.push(b.mlp(&self.aqe_in_mlp, cat));
        }
        let summed = b.sum_vec(&messages);
        let mean = b.scale(summed, 1.0 / messages.len() as f32);
        let aqe = b.mlp(&self.aqe_out_mlp, mean);
        b.recycle_ids(messages);
        aqe
    }

    /// Encodes the whole system (the tape instantiation of
    /// [`QueryEncoder::encode_system_on`]).
    pub fn encode_system(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        snap: &SystemSnapshot,
    ) -> SystemEncoding {
        let mut scratch = EncodeScratch::new();
        let aqe = self.encode_system_on(&mut TapeBackend::new(g, store), snap, &mut scratch);
        SystemEncoding { queries: scratch.queries, aqe }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{snapshot, FeatureConfig};
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::{QueryId, QueryRuntime, SchedContext};
    use std::sync::Arc;

    fn snap(n_queries: usize) -> SystemSnapshot {
        let queries: Vec<QueryRuntime> = (0..n_queries)
            .map(|i| {
                let mut b = PlanBuilder::new(format!("q{i}"));
                let s1 = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![1], 100.0, 4, 0.01, 1e5);
                let s2 = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![1], vec![2], 100.0, 4, 0.01, 1e5);
                let bh = b.add_op(OpKind::BuildHash, OpSpec::Synthetic, vec![0], vec![1], 100.0, 4, 0.02, 2e5);
                let ph = b.add_op(OpKind::ProbeHash, OpSpec::Synthetic, vec![0, 1], vec![1, 2], 100.0, 4, 0.02, 2e5);
                b.connect(s1, bh, true);
                b.connect(bh, ph, false);
                b.connect(s2, ph, true);
                QueryRuntime::new(QueryId(i as u64), Arc::new(b.finish(ph)), 0.0, 8)
            })
            .collect();
        let free = [0usize, 1, 2, 3];
        let hot = lsched_engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 8,
            free_threads: 4,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        snapshot(&FeatureConfig::default(), &ctx)
    }

    fn build(kind: EncoderKind) -> (ParamStore, QueryEncoder) {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig { kind, hidden: 16, pqe_dim: 8, aqe_dim: 8, ..Default::default() };
        let enc = QueryEncoder::new(&mut store, 7, "enc", cfg);
        (store, enc)
    }

    #[test]
    fn encodes_expected_shapes() {
        for kind in [EncoderKind::TcnGat, EncoderKind::TcnPlain, EncoderKind::SeqGcn] {
            let (store, enc) = build(kind);
            let s = snap(3);
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &s);
            assert_eq!(sys.queries.len(), 3);
            for qe in &sys.queries {
                assert_eq!(qe.node_emb.len(), 4);
                assert_eq!(qe.edge_emb.len(), 3);
                assert_eq!(g.value(qe.pqe).len(), 8);
                for &ne in &qe.node_emb {
                    assert_eq!(g.value(ne).len(), 16);
                    assert!(g.value(ne).data().iter().all(|v| v.is_finite()));
                }
            }
            assert_eq!(g.value(sys.aqe).len(), 8);
        }
    }

    #[test]
    fn gradients_reach_all_encoder_params() {
        let (mut store, enc) = build(EncoderKind::TcnGat);
        let s = snap(2);
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &s);
        let loss = g.sum_elems(sys.aqe);
        g.backward(loss, &mut store);
        // Every encoder parameter should receive some gradient through
        // the AQE path (node/edge embeddings feed PQE feed AQE).
        let mut nonzero = 0;
        let mut total = 0;
        let ids: Vec<_> = store.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            total += 1;
            if store.grad(id).iter().any(|&v| v != 0.0) {
                nonzero += 1;
            }
        }
        assert!(
            nonzero as f64 > total as f64 * 0.85,
            "only {nonzero}/{total} params got gradient"
        );
    }

    #[test]
    fn deterministic_encoding() {
        let (store, enc) = build(EncoderKind::TcnGat);
        let s = snap(2);
        let mut g1 = Graph::new();
        let e1 = enc.encode_system(&mut g1, &store, &s);
        let mut g2 = Graph::new();
        let e2 = enc.encode_system(&mut g2, &store, &s);
        assert_eq!(g1.value(e1.aqe).data(), g2.value(e2.aqe).data());
    }

    #[test]
    fn variants_differ_in_parameter_sets() {
        let (s1, _) = build(EncoderKind::TcnGat);
        let (s2, _) = build(EncoderKind::TcnPlain);
        let (s3, _) = build(EncoderKind::SeqGcn);
        // GAT adds attention vectors; SeqGcn swaps conv weights entirely.
        assert!(s1.num_scalars() > s2.num_scalars());
        assert!(s3.iter_ids().any(|(_, n)| n.contains("gcn0")));
        assert!(s1.iter_ids().any(|(_, n)| n.contains("tcn.conv0.gat")));
    }

    #[test]
    fn pqe_sensitive_to_progress_features() {
        // Changing a dynamic feature (remaining work orders) must change
        // the PQE — the encoder actually reads its inputs.
        let (store, enc) = build(EncoderKind::TcnGat);
        let mut s = snap(1);
        let mut g1 = Graph::new();
        let pqe1 = enc.encode_query(&mut g1, &store, &s.queries[0]).pqe;
        let before = g1.value(pqe1).clone();
        s.queries[0].opf_dyn[0][0] = 0.0; // zero out O-WO
        let mut g2 = Graph::new();
        let pqe2 = enc.encode_query(&mut g2, &store, &s.queries[0]).pqe;
        let after = g2.value(pqe2).clone();
        assert_ne!(before.data(), after.data());
    }
}
