//! The Query Encoder (Section 4, Figure 6): a single-query encoder
//! combining edge-aware tree convolution with graph attention, plus the
//! high-level Per-Query (PQE) and All-Queries (AQE) summarization
//! networks implemented as message passing to dummy summary nodes.
//!
//! Two ablation variants back Figure 15: `TcnPlain` removes the GAT
//! importance weighting and `SeqGcn` replaces the tree convolution with
//! Decima-style *sequential message passing* graph convolution, whose
//! within-layer child→parent fusion the paper identifies as a source of
//! over-smoothing (Section 4.2.1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use lsched_nn::{
    Activation, Graph, Linear, Mlp, NodeId, ParamStore, Tensor, TreeConvStack, TreeSpec,
};

use crate::features::{FeatureConfig, QuerySnapshot, SystemSnapshot};

/// Which single-query encoder to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Full LSched encoder: tree convolution + GAT (the default).
    TcnGat,
    /// Tree convolution without attention (Figure 15's "w/o Graph
    /// Attention Support").
    TcnPlain,
    /// Sequential message-passing GCN (Figure 15's "w/o Triangle
    /// Convolution"; also the building block of the Decima baseline).
    SeqGcn,
}

/// Encoder hyper-parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Feature dimensions.
    pub feat: FeatureConfig,
    /// Node-embedding width.
    pub hidden: usize,
    /// Edge-embedding width.
    pub edge_hidden: usize,
    /// PQE output width.
    pub pqe_dim: usize,
    /// AQE output width.
    pub aqe_dim: usize,
    /// Convolution depth (≥ 3 leaves an interior layer to freeze during
    /// transfer learning).
    pub conv_layers: usize,
    /// Encoder variant.
    pub kind: EncoderKind,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            feat: FeatureConfig::default(),
            hidden: 32,
            edge_hidden: 8,
            pqe_dim: 16,
            aqe_dim: 16,
            conv_layers: 3,
            kind: EncoderKind::TcnGat,
        }
    }
}

/// Sequential message-passing GCN layer parameters (the Decima-style
/// alternative encoder).
#[derive(Debug, Clone)]
struct SeqGcnLayer {
    w_self: Linear,
    w_child: Linear,
    w_edge: Linear,
}

enum ConvStack {
    Tcn(TreeConvStack),
    Seq(Vec<SeqGcnLayer>),
}

impl std::fmt::Debug for ConvStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvStack::Tcn(_) => write!(f, "ConvStack::Tcn"),
            ConvStack::Seq(_) => write!(f, "ConvStack::Seq"),
        }
    }
}

/// The encodings produced for one query.
#[derive(Debug, Clone)]
pub struct QueryEncoding {
    /// Node embeddings (NE), one per operator.
    pub node_emb: Vec<NodeId>,
    /// Edge embeddings (EE), one per plan edge.
    pub edge_emb: Vec<NodeId>,
    /// The Per-Query Embedding (PQE).
    pub pqe: NodeId,
}

/// Encodings of the whole system at one scheduling event.
#[derive(Debug)]
pub struct SystemEncoding {
    /// Per-query encodings, aligned with the snapshot's query order.
    pub queries: Vec<QueryEncoding>,
    /// The All-Queries Embedding (AQE).
    pub aqe: NodeId,
}

/// The Query Encoder network (Figure 6).
#[derive(Debug)]
pub struct QueryEncoder {
    cfg: EncoderConfig,
    node_proj: Linear,
    edge_proj: Linear,
    conv: ConvStack,
    pqe_node_mlp: Mlp,
    pqe_edge_mlp: Mlp,
    pqe_out_mlp: Mlp,
    aqe_in_mlp: Mlp,
    aqe_out_mlp: Mlp,
}

impl QueryEncoder {
    /// Registers all encoder parameters under `"{prefix}.*"`.
    pub fn new(store: &mut ParamStore, seed: u64, prefix: &str, cfg: EncoderConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let opf = cfg.feat.opf_dim();
        let h = cfg.hidden;
        let eh = cfg.edge_hidden;
        let node_proj = Linear::new(store, &mut rng, &format!("{prefix}.node_proj"), opf, h);
        let edge_proj = Linear::new(
            store,
            &mut rng,
            &format!("{prefix}.edge_proj"),
            FeatureConfig::EDF_DIM,
            eh,
        );
        let conv = match cfg.kind {
            EncoderKind::TcnGat | EncoderKind::TcnPlain => ConvStack::Tcn(TreeConvStack::new(
                store,
                &mut rng,
                &format!("{prefix}.tcn"),
                h,
                h,
                FeatureConfig::EDF_DIM,
                cfg.conv_layers,
                cfg.kind == EncoderKind::TcnGat,
            )),
            EncoderKind::SeqGcn => ConvStack::Seq(
                (0..cfg.conv_layers)
                    .map(|l| SeqGcnLayer {
                        w_self: Linear::new(store, &mut rng, &format!("{prefix}.gcn{l}.self"), h, h),
                        w_child: Linear::new(store, &mut rng, &format!("{prefix}.gcn{l}.child"), h, h),
                        w_edge: Linear::new(
                            store,
                            &mut rng,
                            &format!("{prefix}.gcn{l}.edge"),
                            FeatureConfig::EDF_DIM,
                            h,
                        ),
                    })
                    .collect(),
            ),
        };
        let pqe_node_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_node"),
            &[h + opf, h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let pqe_edge_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_edge"),
            &[eh + FeatureConfig::EDF_DIM, h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let pqe_out_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.pqe_out"),
            &[h, h, h, cfg.pqe_dim],
            Activation::LeakyRelu,
            Activation::None,
        );
        let aqe_in_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.aqe_in"),
            &[cfg.pqe_dim + cfg.feat.qf_dim(), h, h, h],
            Activation::LeakyRelu,
            Activation::LeakyRelu,
        );
        let aqe_out_mlp = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.aqe_out"),
            &[h, h, h, cfg.aqe_dim],
            Activation::LeakyRelu,
            Activation::None,
        );
        Self { cfg, node_proj, edge_proj, conv, pqe_node_mlp, pqe_edge_mlp, pqe_out_mlp, aqe_in_mlp, aqe_out_mlp }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Topological (children-first) order of a tree.
    fn topo_order(tree: &TreeSpec) -> Vec<usize> {
        let n = tree.len();
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Roots are nodes that are nobody's child.
        let mut is_child = vec![false; n];
        for slots in &tree.children {
            for s in slots.iter().flatten() {
                is_child[s.0] = true;
            }
        }
        fn dfs(tree: &TreeSpec, node: usize, visited: &mut [bool], order: &mut Vec<usize>) {
            if visited[node] {
                return;
            }
            visited[node] = true;
            for s in tree.children[node].iter().flatten() {
                dfs(tree, s.0, visited, order);
            }
            order.push(node);
        }
        for (root, &child) in is_child.iter().enumerate() {
            if !child {
                dfs(tree, root, &mut visited, &mut order);
            }
        }
        debug_assert_eq!(order.len(), n);
        order
    }

    fn conv_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        qs: &QuerySnapshot,
        nodes: &[NodeId],
        raw_edges: &[NodeId],
    ) -> Vec<NodeId> {
        match &self.conv {
            ConvStack::Tcn(stack) => stack.forward(g, store, qs.tree(), nodes, raw_edges),
            ConvStack::Seq(layers) => {
                // Sequential message passing: within each layer the
                // embedding of a parent is computed from the *current
                // layer's* child embeddings (children first).
                let order = Self::topo_order(qs.tree());
                let mut h: Vec<NodeId> = nodes.to_vec();
                for layer in layers {
                    let mut next = h.clone();
                    for &n in &order {
                        let own = layer.w_self.forward(g, store, h[n]);
                        let mut terms = vec![own];
                        for slot in qs.tree().children[n].iter().flatten() {
                            let (c, e) = *slot;
                            let cm = layer.w_child.forward(g, store, next[c]);
                            let em = layer.w_edge.forward(g, store, raw_edges[e]);
                            terms.push(cm);
                            terms.push(em);
                        }
                        let sum = g.sum_vec(&terms);
                        next[n] = g.leaky_relu(sum, 0.01);
                    }
                    h = next;
                }
                h
            }
        }
    }

    /// Encodes one query: node embeddings (NE), edge embeddings (EE) and
    /// the PQE summary (Figure 6, left and middle).
    pub fn encode_query(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        qs: &QuerySnapshot,
    ) -> QueryEncoding {
        let opf_nodes: Vec<NodeId> =
            (0..qs.num_ops()).map(|op| g.input(Tensor::vector(qs.opf(op)))).collect();
        let raw_edges: Vec<NodeId> =
            qs.edf().iter().map(|f| g.input(Tensor::vector(f.clone()))).collect();

        // Project raw OPF into the hidden space, then convolve.
        let projected: Vec<NodeId> = opf_nodes
            .iter()
            .map(|&x| {
                let p = self.node_proj.forward(g, store, x);
                g.leaky_relu(p, 0.01)
            })
            .collect();
        let node_emb = self.conv_forward(g, store, qs, &projected, &raw_edges);

        // Edge embeddings (EE).
        let edge_emb: Vec<NodeId> = raw_edges
            .iter()
            .map(|&e| {
                let p = self.edge_proj.forward(g, store, e);
                g.leaky_relu(p, 0.01)
            })
            .collect();

        // PQE: false directed edges from all nodes and edges into a dummy
        // summary node — message passing implemented as per-element MLPs
        // followed by a sum and an output MLP. Raw OPF/EDF features are
        // concatenated with the learned embeddings, per Figure 6.
        let mut messages: Vec<NodeId> = Vec::with_capacity(node_emb.len() + edge_emb.len());
        for (ne, opf) in node_emb.iter().zip(&opf_nodes) {
            let cat = g.concat(&[*ne, *opf]);
            messages.push(self.pqe_node_mlp.forward(g, store, cat));
        }
        for (ee, edf) in edge_emb.iter().zip(&raw_edges) {
            let cat = g.concat(&[*ee, *edf]);
            messages.push(self.pqe_edge_mlp.forward(g, store, cat));
        }
        let summed = g.sum_vec(&messages);
        // Scale by 1/|messages| to keep magnitudes stable across plan sizes.
        let mean = g.scale(summed, 1.0 / messages.len() as f32);
        let pqe = self.pqe_out_mlp.forward(g, store, mean);

        QueryEncoding { node_emb, edge_emb, pqe }
    }

    /// Encodes the whole system: every query plus the AQE summary
    /// (Figure 6, bottom).
    pub fn encode_system(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        snap: &SystemSnapshot,
    ) -> SystemEncoding {
        assert!(!snap.queries.is_empty(), "encode_system needs at least one query");
        let queries: Vec<QueryEncoding> =
            snap.queries.iter().map(|qs| self.encode_query(g, store, qs)).collect();
        let mut messages = Vec::with_capacity(queries.len());
        for (enc, qs) in queries.iter().zip(&snap.queries) {
            let qf = g.input(Tensor::vector(qs.qf.clone()));
            let cat = g.concat(&[enc.pqe, qf]);
            messages.push(self.aqe_in_mlp.forward(g, store, cat));
        }
        let summed = g.sum_vec(&messages);
        let mean = g.scale(summed, 1.0 / messages.len() as f32);
        let aqe = self.aqe_out_mlp.forward(g, store, mean);
        SystemEncoding { queries, aqe }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{snapshot, FeatureConfig};
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::{QueryId, QueryRuntime, SchedContext};
    use std::sync::Arc;

    fn snap(n_queries: usize) -> SystemSnapshot {
        let queries: Vec<QueryRuntime> = (0..n_queries)
            .map(|i| {
                let mut b = PlanBuilder::new(format!("q{i}"));
                let s1 = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![1], 100.0, 4, 0.01, 1e5);
                let s2 = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![1], vec![2], 100.0, 4, 0.01, 1e5);
                let bh = b.add_op(OpKind::BuildHash, OpSpec::Synthetic, vec![0], vec![1], 100.0, 4, 0.02, 2e5);
                let ph = b.add_op(OpKind::ProbeHash, OpSpec::Synthetic, vec![0, 1], vec![1, 2], 100.0, 4, 0.02, 2e5);
                b.connect(s1, bh, true);
                b.connect(bh, ph, false);
                b.connect(s2, ph, true);
                QueryRuntime::new(QueryId(i as u64), Arc::new(b.finish(ph)), 0.0, 8)
            })
            .collect();
        let free = [0usize, 1, 2, 3];
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 8,
            free_threads: 4,
            free_thread_ids: &free,
            queries: &queries,
        };
        snapshot(&FeatureConfig::default(), &ctx)
    }

    fn build(kind: EncoderKind) -> (ParamStore, QueryEncoder) {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig { kind, hidden: 16, pqe_dim: 8, aqe_dim: 8, ..Default::default() };
        let enc = QueryEncoder::new(&mut store, 7, "enc", cfg);
        (store, enc)
    }

    #[test]
    fn encodes_expected_shapes() {
        for kind in [EncoderKind::TcnGat, EncoderKind::TcnPlain, EncoderKind::SeqGcn] {
            let (store, enc) = build(kind);
            let s = snap(3);
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &s);
            assert_eq!(sys.queries.len(), 3);
            for qe in &sys.queries {
                assert_eq!(qe.node_emb.len(), 4);
                assert_eq!(qe.edge_emb.len(), 3);
                assert_eq!(g.value(qe.pqe).len(), 8);
                for &ne in &qe.node_emb {
                    assert_eq!(g.value(ne).len(), 16);
                    assert!(g.value(ne).data().iter().all(|v| v.is_finite()));
                }
            }
            assert_eq!(g.value(sys.aqe).len(), 8);
        }
    }

    #[test]
    fn gradients_reach_all_encoder_params() {
        let (mut store, enc) = build(EncoderKind::TcnGat);
        let s = snap(2);
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &s);
        let loss = g.sum_elems(sys.aqe);
        g.backward(loss, &mut store);
        // Every encoder parameter should receive some gradient through
        // the AQE path (node/edge embeddings feed PQE feed AQE).
        let mut nonzero = 0;
        let mut total = 0;
        let ids: Vec<_> = store.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            total += 1;
            if store.grad(id).iter().any(|&v| v != 0.0) {
                nonzero += 1;
            }
        }
        assert!(
            nonzero as f64 > total as f64 * 0.85,
            "only {nonzero}/{total} params got gradient"
        );
    }

    #[test]
    fn deterministic_encoding() {
        let (store, enc) = build(EncoderKind::TcnGat);
        let s = snap(2);
        let mut g1 = Graph::new();
        let e1 = enc.encode_system(&mut g1, &store, &s);
        let mut g2 = Graph::new();
        let e2 = enc.encode_system(&mut g2, &store, &s);
        assert_eq!(g1.value(e1.aqe).data(), g2.value(e2.aqe).data());
    }

    #[test]
    fn variants_differ_in_parameter_sets() {
        let (s1, _) = build(EncoderKind::TcnGat);
        let (s2, _) = build(EncoderKind::TcnPlain);
        let (s3, _) = build(EncoderKind::SeqGcn);
        // GAT adds attention vectors; SeqGcn swaps conv weights entirely.
        assert!(s1.num_scalars() > s2.num_scalars());
        assert!(s3.iter_ids().any(|(_, n)| n.contains("gcn0")));
        assert!(s1.iter_ids().any(|(_, n)| n.contains("tcn.conv0.gat")));
    }

    #[test]
    fn pqe_sensitive_to_progress_features() {
        // Changing a dynamic feature (remaining work orders) must change
        // the PQE — the encoder actually reads its inputs.
        let (store, enc) = build(EncoderKind::TcnGat);
        let mut s = snap(1);
        let mut g1 = Graph::new();
        let pqe1 = enc.encode_query(&mut g1, &store, &s.queries[0]).pqe;
        let before = g1.value(pqe1).clone();
        s.queries[0].opf_dyn[0][0] = 0.0; // zero out O-WO
        let mut g2 = Graph::new();
        let pqe2 = enc.encode_query(&mut g2, &store, &s.queries[0]).pqe;
        let after = g2.value(pqe2).clone();
        assert_ne!(before.data(), after.data());
    }
}
