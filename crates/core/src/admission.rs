//! Predictive, concurrency-aware admission control.
//!
//! The paper's thesis — learned, workload-aware decisions beat static
//! heuristics — applies to the *front door* as much as to thread
//! placement: a static queue-depth threshold (PR5's hysteresis gate)
//! sheds the same way whether the queued work is ten point lookups or
//! ten scan-heavy joins. [`PredictiveAdmission`] instead scores every
//! arrival **under the current concurrent mix**: a feature row combining
//! the system-wide mix block ([`mix_features`]) with the query's own
//! cost signals ([`admission_features`]) is pushed through a small
//! [`ScoringHead`] served by the tape-free batched inference path, and
//! the score decides admit / defer / shed.
//!
//! ## Decision rule and the starvation bound
//!
//! Let `s ∈ [-1, 1]` be the arrival's predicted contention score
//! (higher = more expensive to admit right now), `t` the admit
//! threshold, `p > 0` the starvation penalty and `a` the number of
//! times this query has already been deferred. The gate admits iff
//!
//! ```text
//! s - p·a <= t
//! ```
//!
//! Because the head's Tanh output bounds `s <= 1`, the left side is
//! `<= 1 - p·a`, which falls below `t` once `a >= (1 - t)/p`. A
//! deferred query is therefore **guaranteed admission within
//! `ceil((1 - t)/p)` deferrals** — [`PredictiveAdmission::max_defer_bound`]
//! — no matter what the predictor says. The constructor clamps `p` so
//! the bound stays below the engine's hard deferral cap.
//!
//! ## Queue reordering
//!
//! When an arrival scores above the threshold, the gate does not give up
//! immediately: it scores the `consider_top_k` most shed-worthy waiting
//! queries **in the same inference batch** and, if one of them predicts
//! strictly worse than the arrival, sheds that victim and admits the
//! arrival in its place — the learned analogue of the hysteresis gate's
//! priority eviction.
//!
//! ## Trust model
//!
//! The gate is deterministic and RNG-free (chaos replay stays
//! bit-identical), but its *scores* are only as good as its weights. A
//! non-finite or out-of-band (`|s| > 1`) score flips the gate's
//! [`PolicyHealth`] to `Degraded` for that verdict; the
//! [`AdmissionStack`](lsched_sched::AdmissionStack) breaker polls health
//! after every call and degrades to the hysteresis gate — never to
//! "admit everything".

use lsched_engine::scheduler::{
    AdmissionResponse, AdmitAction, PolicyHealth, QueryId, QueryRuntime, SchedContext,
};
use lsched_nn::ScoringHead;
use lsched_sched::admission::AdmissionGate;
use lsched_sched::ShedPolicy;

use crate::features::{admission_features, mix_features, ADMIT_DIM};

/// Hard ceiling on the provable defer bound: one below the engine's
/// `MAX_DEFERS = 32`, so the gate's guarantee always fires before the
/// engine's last-resort shed.
const MAX_BOUND: f32 = 31.0;

/// Warm-start output-layer weights, one per [`admission_features`]
/// entry. Positive weight = raises the contention score (shed-worthy);
/// negative = lowers it (admit-worthy). Hand-set, interpretable, and in
/// the same parameter space a trained head would later occupy.
const DEFAULT_WEIGHTS: [f32; ADMIT_DIM] = [
    0.30,  // queued count — the dominant overload signal
    0.10,  // running count
    -0.40, // free pool fraction — idle threads argue for admission
    0.12,  // total WO backlog
    0.15,  // aggregate remaining work
    0.20,  // memory pressure
    0.22,  // this query's remaining work — big queries cost more now
    0.08,  // this query's remaining WOs
    0.05,  // plan size
    0.35,  // priority deficit — low-priority arrivals shed first
    -0.20, // time already waited — favours long-waiting re-arrivals
    -0.45, // deadline urgency — near-SLO queries get in
];

/// Warm-start bias: centres a lightly loaded system comfortably below
/// the admit threshold.
const DEFAULT_BIAS: f32 = -1.1;

/// Tuning knobs for [`PredictiveAdmission`].
#[derive(Debug, Clone)]
pub struct PredictiveAdmissionConfig {
    /// Admit when `score - starve_penalty * attempt <= admit_threshold`.
    /// Must be `< 1` or the gate never sheds (tanh scores reach 1 only
    /// at saturation).
    pub admit_threshold: f32,
    /// Per-deferral score discount; clamped up in the constructor so the
    /// starvation bound stays `<=` [`MAX_BOUND`].
    pub starve_penalty: f32,
    /// How many of the most shed-worthy waiting queries are scored
    /// alongside each above-threshold arrival for displacement.
    pub consider_top_k: usize,
    /// Reject or defer arrivals that lose their own admission check.
    pub policy: ShedPolicy,
    /// Base deferral delay (seconds).
    pub defer_base: f64,
    /// Deferral delay ceiling (seconds).
    pub defer_cap: f64,
    /// Seed for the head's Xavier init (immediately overwritten by the
    /// warm start, but kept so a trained-from-scratch head is seedable).
    pub seed: u64,
}

impl Default for PredictiveAdmissionConfig {
    fn default() -> Self {
        Self {
            admit_threshold: 0.5,
            starve_penalty: 0.1,
            consider_top_k: 4,
            policy: ShedPolicy::Defer,
            defer_base: 0.002,
            defer_cap: 0.05,
            seed: 0x15c4ed,
        }
    }
}

/// Counters describing everything the predictive gate decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictiveStats {
    /// Arrivals scored.
    pub arrivals: u64,
    /// Arrivals admitted (including displacements).
    pub admitted: u64,
    /// Arrivals rejected outright.
    pub rejected: u64,
    /// Arrivals deferred.
    pub deferred: u64,
    /// Admissions that displaced (shed) a worse-scoring waiting query.
    pub reordered: u64,
    /// Verdicts where a score came back non-finite or out of band (the
    /// health poll reports `Degraded` for exactly these).
    pub out_of_band: u64,
}

/// The learned admission gate. See the module docs for semantics.
pub struct PredictiveAdmission {
    cfg: PredictiveAdmissionConfig,
    head: ScoringHead,
    stats: PredictiveStats,
    /// Health of the most recent verdict, polled by the breaker.
    last_verdict_bad: bool,
    // Reused scratch (zero steady-state allocations per verdict).
    rows: Vec<f32>,
    scores: Vec<f32>,
    cand: Vec<usize>,
}

impl PredictiveAdmission {
    /// Builds the gate with the hand-set linear warm start.
    pub fn new(mut cfg: PredictiveAdmissionConfig) -> Self {
        cfg.admit_threshold = cfg.admit_threshold.clamp(-0.99, 0.99);
        // Clamp the penalty so ceil((1 - t)/p) <= MAX_BOUND.
        let min_penalty = (1.0 - cfg.admit_threshold) / MAX_BOUND;
        cfg.starve_penalty = cfg.starve_penalty.max(min_penalty);
        let mut head = ScoringHead::new(ADMIT_DIM, cfg.seed);
        head.warm_start_linear(&DEFAULT_WEIGHTS, DEFAULT_BIAS);
        Self {
            cfg,
            head,
            stats: PredictiveStats::default(),
            last_verdict_bad: false,
            rows: Vec::new(),
            scores: Vec::new(),
            cand: Vec::new(),
        }
    }

    /// The gate's configuration (post-clamping).
    pub fn config(&self) -> &PredictiveAdmissionConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PredictiveStats {
        self.stats
    }

    /// The provable maximum number of deferrals any query can suffer:
    /// `ceil((1 - admit_threshold) / starve_penalty)`. Guaranteed
    /// `<= 31`, strictly below the engine's deferral cap.
    pub fn max_defer_bound(&self) -> u32 {
        ((1.0 - self.cfg.admit_threshold) / self.cfg.starve_penalty).ceil() as u32
    }

    /// Mutable access to the scoring head (for tests that poison the
    /// weights and for future online training).
    pub fn head_mut(&mut self) -> &mut ScoringHead {
        &mut self.head
    }

    /// Capped exponential deferral backoff — same family as the
    /// hysteresis gate's, so defer behaviour is comparable across gates.
    fn defer_delay(&self, attempt: u32) -> f64 {
        (self.cfg.defer_base * 2f64.powi(attempt.min(30) as i32)).min(self.cfg.defer_cap)
    }

    /// Static shed-worthiness order for candidate *selection* (before
    /// scoring): lowest priority first, then youngest arrival, then
    /// highest id — identical to the hysteresis gate's victim order.
    fn static_key(q: &QueryRuntime) -> (i64, i64, i64) {
        (i64::from(q.priority), -(q.arrival_time.to_bits() as i64), -(q.qid.0 as i64))
    }
}

impl AdmissionGate for PredictiveAdmission {
    fn name(&self) -> String {
        "predictive".into()
    }

    fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse {
        self.last_verdict_bad = false;
        self.stats.arrivals += 1;
        let Some(aq) = ctx.query(arriving) else {
            // The engine always places the arrival in the snapshot;
            // admit defensively if it ever does not.
            self.stats.admitted += 1;
            return AdmissionResponse::admit();
        };
        let mix = mix_features(ctx);

        // Candidate victims: waiting queries other than the arrival, the
        // `consider_top_k` statically most shed-worthy ones.
        self.cand.clear();
        for (i, q) in ctx.queries.iter().enumerate() {
            if q.assigned_threads == 0 && q.qid != arriving {
                self.cand.push(i);
            }
        }
        let queries = ctx.queries;
        self.cand.sort_unstable_by_key(|&i| Self::static_key(&queries[i]));
        self.cand.truncate(self.cfg.consider_top_k);

        // One batched inference pass: arrival first, then candidates.
        self.rows.clear();
        self.rows.extend_from_slice(&admission_features(ctx, &mix, aq));
        for &i in &self.cand {
            self.rows.extend_from_slice(&admission_features(ctx, &mix, &queries[i]));
        }
        self.scores.clear();
        self.head.scores_into(&self.rows, &mut self.scores);

        if self.scores.iter().any(|s| !s.is_finite() || s.abs() > 1.0) {
            // Out-of-band prediction: flag the verdict as untrusted and
            // emit a harmless answer — the AdmissionStack breaker polls
            // health, discards this response and consults hysteresis.
            self.stats.out_of_band += 1;
            self.last_verdict_bad = true;
            return AdmissionResponse::admit();
        }

        let eff = self.scores[0] - self.cfg.starve_penalty * attempt as f32;
        if eff <= self.cfg.admit_threshold {
            self.stats.admitted += 1;
            return AdmissionResponse::admit();
        }

        // Overloaded for this arrival: displace the worst-scoring
        // waiting query if it predicts strictly worse than the arrival.
        // Ties break on the static key so the pick is deterministic even
        // with bit-equal scores.
        let victim = self
            .cand
            .iter()
            .zip(&self.scores[1..])
            .filter(|&(_, s)| *s > self.scores[0])
            .max_by(|(ia, sa), (ib, sb)| {
                sa.total_cmp(sb)
                    .then_with(|| Self::static_key(&queries[**ib]).cmp(&Self::static_key(&queries[**ia])))
            })
            .map(|(&i, _)| queries[i].qid);
        if let Some(victim) = victim {
            self.stats.admitted += 1;
            self.stats.reordered += 1;
            return AdmissionResponse { action: AdmitAction::Admit, shed: vec![victim] };
        }

        match self.cfg.policy {
            ShedPolicy::Defer => {
                self.stats.deferred += 1;
                AdmissionResponse {
                    action: AdmitAction::Defer { delay: self.defer_delay(attempt) },
                    shed: Vec::new(),
                }
            }
            ShedPolicy::Reject => {
                self.stats.rejected += 1;
                AdmissionResponse { action: AdmitAction::Reject, shed: Vec::new() }
            }
        }
    }

    fn health(&self) -> PolicyHealth {
        if self.last_verdict_bad {
            PolicyHealth::Degraded
        } else {
            PolicyHealth::Healthy
        }
    }

    fn reset(&mut self) {
        self.stats = PredictiveStats::default();
        self.last_verdict_bad = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::QueryRuntime;
    use std::sync::Arc;

    fn runtime(qid: u64, priority: i32, arrival: f64, threads: usize, wos: u32) -> QueryRuntime {
        let mut b = PlanBuilder::new(&format!("q{qid}"));
        let scan =
            b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e5, wos, 0.01, 1e5);
        let mut q = QueryRuntime::new(QueryId(qid), Arc::new(b.finish(scan)), arrival, 8);
        q.priority = priority;
        q.assigned_threads = threads;
        q
    }

    fn ctx<'a>(queries: &'a [QueryRuntime], free: &'a [usize], time: f64) -> SchedContext<'a> {
        let hot = &*Box::leak(Box::new(lsched_engine::scheduler::QueryHot::from_queries(
            queries,
        )));
        SchedContext {
            time,
            total_threads: 4,
            free_threads: free.len(),
            free_thread_ids: free,
            queries,
            hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        }
    }

    #[test]
    fn idle_system_admits_everything() {
        let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig::default());
        let qs = vec![runtime(0, 0, 0.0, 0, 4)];
        let r = gate.admit(&ctx(&qs, &[0, 1, 2, 3], 0.0), QueryId(0), 0);
        assert_eq!(r, AdmissionResponse::admit());
        assert_eq!(gate.health(), PolicyHealth::Healthy);
    }

    #[test]
    fn heavy_mix_defers_and_the_starve_penalty_forces_admission() {
        let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig {
            consider_top_k: 0, // no displacement: isolate the self check
            ..Default::default()
        });
        // A saturated system: many waiting heavyweights, no free pool.
        let qs: Vec<QueryRuntime> =
            (0..24).map(|i| runtime(i, 0, i as f64 * 0.001, 0, 64)).collect();
        let c = ctx(&qs, &[], 0.1);
        let first = gate.admit(&c, QueryId(23), 0);
        assert!(
            matches!(first.action, AdmitAction::Defer { .. }),
            "a saturated mix must defer: {first:?}"
        );
        // The bound: by max_defer_bound() attempts the penalty dominates
        // any score the head can emit.
        let bound = gate.max_defer_bound();
        assert!(bound <= 31, "bound {bound} must stay under the engine cap");
        let r = gate.admit(&c, QueryId(23), bound);
        assert_eq!(
            r.action,
            AdmitAction::Admit,
            "attempt {bound} must be admitted unconditionally"
        );
        // And every attempt below the bound is deterministic.
        for a in 0..bound {
            let x = gate.admit(&c, QueryId(23), a);
            let y = gate.admit(&c, QueryId(23), a);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn displacement_shed_targets_a_worse_waiting_query() {
        let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig::default());
        // Saturated mix; the arrival is high-priority and deadline-
        // urgent, one waiting query is low-priority and heavy.
        let mut qs: Vec<QueryRuntime> =
            (0..20).map(|i| runtime(i, 0, i as f64 * 0.001, 0, 48)).collect();
        qs.push({
            let mut q = runtime(20, -8, 0.015, 0, 64); // the doomed victim
            q.arrival_time = 0.015;
            q
        });
        qs.push({
            let mut q = runtime(21, 6, 0.02, 0, 2); // the arrival
            q.deadline = Some(0.05);
            q
        });
        let c = ctx(&qs, &[], 0.02);
        let r = gate.admit(&c, QueryId(21), 0);
        if let AdmitAction::Admit = r.action {
            if !r.shed.is_empty() {
                assert_eq!(r.shed, vec![QueryId(20)], "the worst waiter is the victim");
                assert_eq!(gate.stats().reordered, 1);
            }
        } else {
            // Defer is acceptable only if no candidate outscored the
            // arrival — but q20 is strictly worse on priority + size.
            panic!("a high-priority urgent arrival must displace q20: {r:?}");
        }
    }

    #[test]
    fn poisoned_head_reports_degraded_health_and_a_safe_verdict() {
        let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig::default());
        let wid = gate.head_mut().mlp().layers()[1].weight_id();
        gate.head_mut().store_mut().value_mut(wid).data_mut()[0] = f32::NAN;
        let qs = vec![runtime(0, 0, 0.0, 0, 4)];
        let r = gate.admit(&ctx(&qs, &[], 0.0), QueryId(0), 0);
        assert_eq!(gate.health(), PolicyHealth::Degraded, "NaN scores must surface");
        assert_eq!(gate.stats().out_of_band, 1);
        // The placeholder verdict is structurally harmless (no shed, no
        // defer) — the breaker discards it anyway.
        assert_eq!(r, AdmissionResponse::admit());
    }

    #[test]
    fn verdicts_are_bitwise_deterministic() {
        let run = || {
            let mut gate = PredictiveAdmission::new(PredictiveAdmissionConfig::default());
            let qs: Vec<QueryRuntime> =
                (0..12).map(|i| runtime(i, (i % 3) as i32 - 1, i as f64 * 0.002, 0, 16)).collect();
            let c = ctx(&qs, &[0], 0.05);
            let rs: Vec<AdmissionResponse> =
                (0..6).map(|a| gate.admit(&c, QueryId(11), a)).collect();
            (rs, gate.stats())
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn bound_clamps_configs_that_would_starve() {
        let gate = PredictiveAdmission::new(PredictiveAdmissionConfig {
            admit_threshold: 0.9,
            starve_penalty: 1e-9, // absurdly small: would defer ~1e8 times
            ..Default::default()
        });
        assert!(gate.max_defer_bound() <= 31, "constructor must clamp the penalty");
    }
}
