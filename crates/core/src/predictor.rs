//! The Scheduling Predictor (Section 5.3, Figure 7): three
//! fully-connected softmax heads deciding, at every scheduling event,
//! (1) which operator roots a new pipeline and from which query, (2) the
//! pipeline degree from that root, and (3) how many threads the query
//! gets.
//!
//! A single event can admit several pipelines (until threads run out),
//! so the predictor loops: each iteration softmaxes the remaining
//! candidate roots, picks one (sampled during training, argmax at
//! inference), then picks a masked degree and a masked thread count.
//! The log-probability of every choice is accumulated on the graph so
//! REINFORCE can differentiate through the full decision sequence.

use rand::rngs::StdRng;
use rand::Rng;

use lsched_engine::plan::OpId;
use lsched_engine::scheduler::SchedDecision;
use lsched_nn::{softmax_vals, Activation, Graph, Mlp, NodeId, ParamStore, Tensor};

use crate::encoder::SystemEncoding;
use crate::features::SystemSnapshot;

/// Predictor hyper-parameters.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Output width of the pipeline-degree head (degrees 1..=max).
    pub max_degree: usize,
    /// Output width of the parallelism head (thread counts 1..=max).
    pub max_threads: usize,
    /// Hidden width of the head MLPs.
    pub hidden: usize,
    /// Cap on pipelines admitted per scheduling event.
    pub max_picks_per_event: usize,
    /// Figure 15 ablation: ignore the pipeline-degree prediction and
    /// always schedule the root alone.
    pub ablate_pipelining: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            max_degree: 8,
            max_threads: 128,
            hidden: 32,
            max_picks_per_event: 4,
            ablate_pipelining: false,
        }
    }
}

/// How choices are made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionMode {
    /// Argmax (inference).
    Greedy,
    /// Categorical sampling (training exploration).
    Sample,
}

/// One recorded sub-decision: which candidate root, which degree, which
/// thread count. Enough to replay the event deterministically for the
/// REINFORCE backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickTrace {
    /// Index into the snapshot's flattened candidate list.
    pub cand_idx: usize,
    /// Chosen pipeline degree (≥ 1).
    pub degree: usize,
    /// Chosen thread grant (≥ 1).
    pub threads: usize,
}

/// The three-headed predictor network.
#[derive(Debug)]
pub struct SchedulingPredictor {
    cfg: PredictorConfig,
    root_head: Mlp,
    degree_head: Mlp,
    threads_head: Mlp,
}

impl SchedulingPredictor {
    /// Registers the predictor's parameters under `"{prefix}.*"`.
    /// `node_dim`/`edge_dim`/`pqe_dim`/`aqe_dim`/`qf_dim` must match the
    /// encoder's output dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        seed: u64,
        prefix: &str,
        cfg: PredictorConfig,
        node_dim: usize,
        edge_dim: usize,
        pqe_dim: usize,
        aqe_dim: usize,
        qf_dim: usize,
    ) -> Self {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let h = cfg.hidden;
        // Execution Roots Predictor: NE ‖ EE ‖ PQE → score.
        let root_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.root"),
            &[node_dim + edge_dim + pqe_dim, h, h, 1],
            Activation::LeakyRelu,
            Activation::None,
        );
        // Pipeline Degree Predictor: NE ‖ EE ‖ PQE ‖ EDFagg → degree logits.
        let degree_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.degree"),
            &[node_dim + edge_dim + pqe_dim + 2, h, h, cfg.max_degree],
            Activation::LeakyRelu,
            Activation::None,
        );
        // Parallelism Degree Predictor: AQE ‖ PQE ‖ QF → thread logits.
        let threads_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.threads"),
            &[aqe_dim + pqe_dim + qf_dim, h, h, cfg.max_threads],
            Activation::LeakyRelu,
            Activation::None,
        );
        Self { cfg, root_head, degree_head, threads_head }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Aggregated edge embedding incident to `op` (mean of EE vectors),
    /// or zeros when the operator has no edges.
    fn edge_agg(
        g: &mut Graph,
        enc: &crate::encoder::QueryEncoding,
        endpoints: &[(usize, usize)],
        op: usize,
        edge_dim: usize,
    ) -> NodeId {
        let incident: Vec<NodeId> = endpoints
            .iter()
            .enumerate()
            .filter(|(_, (c, p))| *c == op || *p == op)
            .map(|(ei, _)| enc.edge_emb[ei])
            .collect();
        if incident.is_empty() {
            g.input(Tensor::zero_vector(edge_dim))
        } else {
            let s = g.sum_vec(&incident);
            g.scale(s, 1.0 / incident.len() as f32)
        }
    }

    /// Mean raw EDF of edges incident to `op` (the extra input of the
    /// pipeline head, Figure 7).
    fn edf_agg(g: &mut Graph, qs: &crate::features::QuerySnapshot, op: usize) -> NodeId {
        let incident: Vec<&Vec<f32>> = qs
            .edge_endpoints()
            .iter()
            .zip(qs.edf())
            .filter(|((c, p), _)| *c == op || *p == op)
            .map(|(_, f)| f)
            .collect();
        let mut mean = vec![0.0f32; 2];
        if !incident.is_empty() {
            for f in &incident {
                mean[0] += f[0];
                mean[1] += f[1];
            }
            mean[0] /= incident.len() as f32;
            mean[1] /= incident.len() as f32;
        }
        g.input(Tensor::vector(mean))
    }

    fn choose(
        g: &Graph,
        logits_sm: NodeId,
        valid: &[usize],
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        forced: Option<usize>,
    ) -> usize {
        if let Some(f) = forced {
            return f;
        }
        let log_probs = g.value(logits_sm).data();
        match mode {
            DecisionMode::Greedy => *valid
                .iter()
                .max_by(|&&a, &&b| log_probs[a].total_cmp(&log_probs[b]))
                .expect("non-empty valid set"),
            DecisionMode::Sample => {
                let rng = rng.expect("sampling requires an RNG");
                let probs = softmax_vals(
                    &valid.iter().map(|&i| log_probs[i]).collect::<Vec<_>>(),
                );
                let mut u: f32 = rng.gen();
                for (k, p) in probs.iter().enumerate() {
                    u -= p;
                    if u <= 0.0 {
                        return valid[k];
                    }
                }
                *valid.last().expect("non-empty valid set")
            }
        }
    }

    /// Runs the full decision pass for one scheduling event.
    ///
    /// With `forced` picks (training replay) the same choices are
    /// re-taken and their log-probability is rebuilt on `g`; otherwise
    /// choices follow `mode`. Returns the decisions, the pick traces,
    /// and the total log-probability node.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        snap: &SystemSnapshot,
        enc: &SystemEncoding,
        mode: DecisionMode,
        mut rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
    ) -> (Vec<SchedDecision>, Vec<PickTrace>, NodeId) {
        let candidates = snap.candidates();
        let mut available: Vec<bool> = vec![true; candidates.len()];
        let mut free = snap.free_threads;
        let mut decisions = Vec::new();
        let mut picks: Vec<PickTrace> = Vec::new();
        let mut logprob_terms: Vec<NodeId> = Vec::new();

        // Precompute per-candidate head inputs (reused across picks).
        let edge_dim = if snap.queries.iter().all(|q| q.edf().is_empty()) {
            // Degenerate single-op plans: derive from encoder width.
            enc.queries
                .first()
                .and_then(|qe| qe.edge_emb.first())
                .map(|&e| g.value(e).len())
                .unwrap_or(8)
        } else {
            enc.queries
                .iter()
                .find_map(|qe| qe.edge_emb.first().map(|&e| g.value(e).len()))
                .unwrap_or(8)
        };
        let cand_inputs: Vec<(NodeId, NodeId)> = candidates
            .iter()
            .map(|&(qi, si)| {
                let qs = &snap.queries[qi];
                let qe = &enc.queries[qi];
                let op = qs.schedulable[si];
                let ee = Self::edge_agg(g, qe, qs.edge_endpoints(), op, edge_dim);
                let root_in = g.concat(&[qe.node_emb[op], ee, qe.pqe]);
                let edf = Self::edf_agg(g, qs, op);
                let pipe_in = g.concat(&[qe.node_emb[op], ee, qe.pqe, edf]);
                (root_in, pipe_in)
            })
            .collect();
        let cand_scores: Vec<NodeId> = cand_inputs
            .iter()
            .map(|&(root_in, _)| self.root_head.forward(g, store, root_in))
            .collect();

        let max_iters = if let Some(f) = forced { f.len() } else { self.cfg.max_picks_per_event };
        for it in 0..max_iters {
            if free == 0 {
                break;
            }
            let valid: Vec<usize> =
                (0..candidates.len()).filter(|&i| available[i]).collect();
            if valid.is_empty() {
                break;
            }

            // --- Execution root (softmax over available candidates).
            let stacked = g.concat(&cand_scores);
            let mask: Vec<f32> = available
                .iter()
                .map(|&a| if a { 0.0 } else { -1e9 })
                .collect();
            let mask_node = g.input(Tensor::vector(mask));
            let masked = g.add(stacked, mask_node);
            let root_lsm = g.log_softmax(masked);
            let forced_pick = forced.map(|f| f[it]);
            let cand_idx = Self::choose(
                g,
                root_lsm,
                &valid,
                mode,
                rng.as_deref_mut(),
                forced_pick.map(|p| p.cand_idx),
            );
            logprob_terms.push(g.gather(root_lsm, cand_idx));

            let (qi, si) = candidates[cand_idx];
            let qs = &snap.queries[qi];
            let op = qs.schedulable[si];

            // --- Pipeline degree.
            let max_deg = qs.max_degree[si].min(self.cfg.max_degree).max(1);
            let degree = if self.cfg.ablate_pipelining {
                1
            } else {
                let logits = self.degree_head.forward(g, store, cand_inputs[cand_idx].1);
                let dmask: Vec<f32> = (0..self.cfg.max_degree)
                    .map(|d| if d < max_deg { 0.0 } else { -1e9 })
                    .collect();
                let dmask_node = g.input(Tensor::vector(dmask));
                let dmasked = g.add(logits, dmask_node);
                let dlsm = g.log_softmax(dmasked);
                let dvalid: Vec<usize> = (0..max_deg).collect();
                let didx = Self::choose(
                    g,
                    dlsm,
                    &dvalid,
                    mode,
                    rng.as_deref_mut(),
                    forced_pick.map(|p| p.degree - 1),
                );
                logprob_terms.push(g.gather(dlsm, didx));
                didx + 1
            };

            // --- Parallelism degree (threads for this query).
            let max_thr = free.min(self.cfg.max_threads).max(1);
            let qf = g.input(Tensor::vector(qs.qf.clone()));
            let tin = g.concat(&[enc.aqe, enc.queries[qi].pqe, qf]);
            let tlogits = self.threads_head.forward(g, store, tin);
            let tmask: Vec<f32> = (0..self.cfg.max_threads)
                .map(|t| if t < max_thr { 0.0 } else { -1e9 })
                .collect();
            let tmask_node = g.input(Tensor::vector(tmask));
            let tmasked = g.add(tlogits, tmask_node);
            let tlsm = g.log_softmax(tmasked);
            let tvalid: Vec<usize> = (0..max_thr).collect();
            let tidx = Self::choose(
                g,
                tlsm,
                &tvalid,
                mode,
                rng.as_deref_mut(),
                forced_pick.map(|p| p.threads - 1),
            );
            logprob_terms.push(g.gather(tlsm, tidx));
            let threads = tidx + 1;

            decisions.push(SchedDecision {
                query: qs.qid,
                root: OpId(op),
                pipeline_degree: degree,
                threads,
            });
            picks.push(PickTrace { cand_idx, degree, threads });
            free -= threads;
            // The chosen operator can't root another pipeline this event.
            available[cand_idx] = false;
        }

        let logprob = if logprob_terms.is_empty() {
            g.input(Tensor::scalar(0.0))
        } else {
            let s = g.concat(&logprob_terms);
            g.sum_elems(s)
        };
        (decisions, picks, logprob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, EncoderKind, QueryEncoder};
    use crate::features::{snapshot, FeatureConfig};
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::{QueryId, QueryRuntime, SchedContext};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (ParamStore, QueryEncoder, SchedulingPredictor, SystemSnapshot) {
        let mut store = ParamStore::new();
        let ecfg = EncoderConfig {
            hidden: 16,
            edge_hidden: 8,
            pqe_dim: 8,
            aqe_dim: 8,
            kind: EncoderKind::TcnGat,
            ..Default::default()
        };
        let qf_dim = ecfg.feat.qf_dim();
        let enc = QueryEncoder::new(&mut store, 3, "enc", ecfg);
        let pcfg = PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() };
        let pred = SchedulingPredictor::new(&mut store, 4, "pred", pcfg, 16, 8, 8, 8, qf_dim);

        let queries: Vec<QueryRuntime> = (0..2)
            .map(|i| {
                let mut b = PlanBuilder::new(format!("q{i}"));
                let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 100.0, 4, 0.01, 1e5);
                let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![1], 50.0, 4, 0.01, 1e5);
                let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 4, 0.01, 1e5);
                let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 1, 0.01, 1e4);
                b.connect(scan, sel, true);
                b.connect(sel, agg, true);
                b.connect(agg, fin, false);
                QueryRuntime::new(QueryId(i as u64), Arc::new(b.finish(fin)), 0.0, 8)
            })
            .collect();
        let free = [0usize, 1, 2, 3, 4, 5];
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 8,
            free_threads: 6,
            free_thread_ids: &free,
            queries: &queries,
        };
        let snap = snapshot(&FeatureConfig::default(), &ctx);
        (store, enc, pred, snap)
    }

    #[test]
    fn greedy_decisions_are_valid() {
        let (store, enc, pred, snap) = setup();
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, picks, lp) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        assert!(!decisions.is_empty());
        assert_eq!(decisions.len(), picks.len());
        let total_threads: usize = decisions.iter().map(|d| d.threads).sum();
        assert!(total_threads <= 6);
        for d in &decisions {
            assert!(d.pipeline_degree >= 1 && d.pipeline_degree <= 4);
            assert!(d.threads >= 1);
        }
        assert!(g.value(lp).item() <= 0.0, "log-prob must be ≤ 0");
    }

    #[test]
    fn sampling_is_reproducible_with_seed() {
        let (store, enc, pred, snap) = setup();
        let run = |seed: u64| {
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &snap);
            let mut rng = StdRng::seed_from_u64(seed);
            let (d, _, _) = pred.decide(
                &mut g,
                &store,
                &snap,
                &sys,
                DecisionMode::Sample,
                Some(&mut rng),
                None,
            );
            d
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn replay_reproduces_logprob() {
        let (mut store, enc, pred, snap) = setup();
        let (picks, lp_act) = {
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &snap);
            let mut rng = StdRng::seed_from_u64(9);
            let (_, picks, lp) = pred.decide(
                &mut g,
                &store,
                &snap,
                &sys,
                DecisionMode::Sample,
                Some(&mut rng),
                None,
            );
            (picks, g.value(lp).item())
        };
        // Replay with forced picks must land on the same log-prob, and
        // gradients must flow.
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, picks2, lp) = pred.decide(
            &mut g,
            &store,
            &snap,
            &sys,
            DecisionMode::Greedy,
            None,
            Some(&picks),
        );
        assert_eq!(picks, picks2);
        assert!((g.value(lp).item() - lp_act).abs() < 1e-5);
        assert!(!decisions.is_empty());
        let loss = g.scale(lp, -1.0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn ablated_pipelining_forces_degree_one() {
        let (mut store, _, _, snap) = setup();
        // Rebuild predictor with ablation on (fresh params to avoid
        // name clashes).
        let pcfg = PredictorConfig {
            max_degree: 4,
            max_threads: 16,
            ablate_pipelining: true,
            ..Default::default()
        };
        let ecfg = EncoderConfig {
            hidden: 16,
            edge_hidden: 8,
            pqe_dim: 8,
            aqe_dim: 8,
            ..Default::default()
        };
        let qf_dim = ecfg.feat.qf_dim();
        let enc = QueryEncoder::new(&mut store, 13, "enc2", ecfg);
        let pred =
            SchedulingPredictor::new(&mut store, 14, "pred2", pcfg, 16, 8, 8, 8, qf_dim);
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, _, _) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        assert!(decisions.iter().all(|d| d.pipeline_degree == 1));
    }

    #[test]
    fn thread_mask_respects_free_threads() {
        let (store, enc, pred, mut snap) = setup();
        snap.free_threads = 2;
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, _, _) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        let total: usize = decisions.iter().map(|d| d.threads).sum();
        assert!(total <= 2);
    }
}
