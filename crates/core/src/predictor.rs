//! The Scheduling Predictor (Section 5.3, Figure 7): three
//! fully-connected softmax heads deciding, at every scheduling event,
//! (1) which operator roots a new pipeline and from which query, (2) the
//! pipeline degree from that root, and (3) how many threads the query
//! gets.
//!
//! A single event can admit several pipelines (until threads run out),
//! so the predictor loops: each iteration softmaxes the remaining
//! candidate roots, picks one (sampled during training, argmax at
//! inference), then picks a masked degree and a masked thread count.
//! The log-probability of every choice is accumulated on the graph so
//! REINFORCE can differentiate through the full decision sequence.

use rand::rngs::StdRng;
use rand::Rng;

use lsched_engine::plan::OpId;
use lsched_engine::scheduler::SchedDecision;
use lsched_nn::{Activation, Backend, Graph, Mlp, NodeId, ParamStore, TapeBackend};

use crate::encoder::{EncodeScratch, QueryEncoding, SystemEncoding};
use crate::features::{QuerySnapshot, SystemSnapshot};

/// Predictor hyper-parameters.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Output width of the pipeline-degree head (degrees 1..=max).
    pub max_degree: usize,
    /// Output width of the parallelism head (thread counts 1..=max).
    pub max_threads: usize,
    /// Hidden width of the head MLPs.
    pub hidden: usize,
    /// Cap on pipelines admitted per scheduling event.
    pub max_picks_per_event: usize,
    /// Figure 15 ablation: ignore the pipeline-degree prediction and
    /// always schedule the root alone.
    pub ablate_pipelining: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            max_degree: 8,
            max_threads: 128,
            hidden: 32,
            max_picks_per_event: 4,
            ablate_pipelining: false,
        }
    }
}

/// How choices are made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionMode {
    /// Argmax (inference).
    Greedy,
    /// Categorical sampling (training exploration).
    Sample,
}

/// One recorded sub-decision: which candidate root, which degree, which
/// thread count. Enough to replay the event deterministically for the
/// REINFORCE backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickTrace {
    /// Index into the snapshot's flattened candidate list.
    pub cand_idx: usize,
    /// Chosen pipeline degree (≥ 1).
    pub degree: usize,
    /// Chosen thread grant (≥ 1).
    pub threads: usize,
}

/// Reusable per-call storage for [`SchedulingPredictor::decide_on`]. The
/// inference path keeps one alive across scheduling decisions so the
/// candidate bookkeeping vectors retain their capacity.
#[derive(Debug)]
pub struct PredictScratch<I> {
    cands: Vec<(usize, usize)>,
    available: Vec<bool>,
    root_inputs: Vec<I>,
    pipe_inputs: Vec<I>,
    logprob_terms: Vec<I>,
}

impl<I> Default for PredictScratch<I> {
    fn default() -> Self {
        Self {
            cands: Vec::new(),
            available: Vec::new(),
            root_inputs: Vec::new(),
            pipe_inputs: Vec::new(),
            logprob_terms: Vec::new(),
        }
    }
}

impl<I> PredictScratch<I> {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable storage for [`SchedulingPredictor::decide_batch_on`]: the
/// flat cross-event candidate tables (offset table into the shared
/// candidate list, per-segment lengths for the fused GEMM, per-segment
/// score handles) plus the per-event bookkeeping vectors.
#[derive(Debug)]
pub struct BatchPredictScratch<I> {
    cands: Vec<(usize, usize)>,
    /// `cands[cand_offsets[e]..cand_offsets[e + 1]]` is event `e`'s slice.
    cand_offsets: Vec<usize>,
    /// Candidate counts of the *non-empty* events, in event order — the
    /// segment-length table handed to [`Backend::mlp_scores_batched`].
    seg_lens: Vec<usize>,
    seg_scores: Vec<I>,
    available: Vec<bool>,
    root_inputs: Vec<I>,
    pipe_inputs: Vec<I>,
    logprob_terms: Vec<I>,
}

impl<I> Default for BatchPredictScratch<I> {
    fn default() -> Self {
        Self {
            cands: Vec::new(),
            cand_offsets: Vec::new(),
            seg_lens: Vec::new(),
            seg_scores: Vec::new(),
            available: Vec::new(),
            root_inputs: Vec::new(),
            pipe_inputs: Vec::new(),
            logprob_terms: Vec::new(),
        }
    }
}

impl<I> BatchPredictScratch<I> {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A borrowed list of system snapshots for
/// [`SchedulingPredictor::decide_batch_on`].
///
/// The serving path naturally holds a `&[&SystemSnapshot]`; the training
/// replay holds recorded episode steps plus a subsample index list.
/// Abstracting the event list lets the replay hand the predictor an
/// *indirect* view over `(steps, selected)` instead of materializing a
/// fresh `Vec<&SystemSnapshot>` every gradient step — the last
/// steady-state heap allocation on the fused training path.
pub trait SnapshotList {
    /// Number of events.
    fn len(&self) -> usize;
    /// The snapshot of event `i`.
    fn get(&self, i: usize) -> &SystemSnapshot;
    /// Whether there are no events.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SnapshotList for [&SystemSnapshot] {
    fn len(&self) -> usize {
        <[&SystemSnapshot]>::len(self)
    }
    fn get(&self, i: usize) -> &SystemSnapshot {
        self[i]
    }
}

/// Per-event span of [`SchedulingPredictor::decide_batch_on`]'s flat
/// output: how many decisions/picks belong to this event (they always
/// count the same, one pick trace per decision) and the backend handle
/// of the event's total log-probability.
#[derive(Debug, Clone, Copy)]
pub struct EventOutcome<I> {
    /// Number of decisions (= pick traces) this event contributed.
    pub n_decisions: usize,
    /// Handle of the event's summed log-probability.
    pub logprob: I,
}

/// Picks an index among the valid entries of a log-softmax vector.
/// Greedy takes the argmax; sampling renormalizes the valid log-probs
/// without allocating, arithmetic-identical to `softmax_vals` over the
/// gathered valid entries (same shift-max, same sequential exp-sum, same
/// cumulative draw), so tape- and inference-path decisions match bit for
/// bit.
///
/// Invariants (the `expect`s below): every caller masks against a
/// schedulable-op set the scheduler already checked to be non-empty
/// before invoking the predictor, and `Sample` mode is only reachable
/// through the sampling constructors of `LSchedScheduler`, which always
/// carry an RNG.
fn choose_on<B: Backend>(
    b: &B,
    logits_sm: B::Id,
    is_valid: impl Fn(usize) -> bool,
    n: usize,
    mode: DecisionMode,
    rng: Option<&mut StdRng>,
    forced: Option<usize>,
) -> usize {
    if let Some(f) = forced {
        return f;
    }
    let log_probs = b.value(logits_sm);
    match mode {
        DecisionMode::Greedy => (0..n)
            .filter(|&i| is_valid(i))
            .max_by(|&a, &c| log_probs[a].total_cmp(&log_probs[c]))
            .expect("non-empty valid set"),
        DecisionMode::Sample => {
            let rng = rng.expect("sampling requires an RNG");
            let mut m = f32::NEG_INFINITY;
            for (i, &lp) in log_probs.iter().enumerate().take(n) {
                if is_valid(i) {
                    m = f32::max(m, lp);
                }
            }
            let mut z = 0.0f32;
            for (i, &lp) in log_probs.iter().enumerate().take(n) {
                if is_valid(i) {
                    z += (lp - m).exp();
                }
            }
            let mut u: f32 = rng.gen();
            let mut last = None;
            for (i, &lp) in log_probs.iter().enumerate().take(n) {
                if !is_valid(i) {
                    continue;
                }
                last = Some(i);
                u -= (lp - m).exp() / z;
                if u <= 0.0 {
                    return i;
                }
            }
            last.expect("non-empty valid set")
        }
    }
}

/// The three-headed predictor network.
#[derive(Debug)]
pub struct SchedulingPredictor {
    cfg: PredictorConfig,
    root_head: Mlp,
    degree_head: Mlp,
    threads_head: Mlp,
}

impl SchedulingPredictor {
    /// Registers the predictor's parameters under `"{prefix}.*"`.
    /// `node_dim`/`edge_dim`/`pqe_dim`/`aqe_dim`/`qf_dim` must match the
    /// encoder's output dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        seed: u64,
        prefix: &str,
        cfg: PredictorConfig,
        node_dim: usize,
        edge_dim: usize,
        pqe_dim: usize,
        aqe_dim: usize,
        qf_dim: usize,
    ) -> Self {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let h = cfg.hidden;
        // Execution Roots Predictor: NE ‖ EE ‖ PQE → score.
        let root_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.root"),
            &[node_dim + edge_dim + pqe_dim, h, h, 1],
            Activation::LeakyRelu,
            Activation::None,
        );
        // Pipeline Degree Predictor: NE ‖ EE ‖ PQE ‖ EDFagg → degree logits.
        let degree_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.degree"),
            &[node_dim + edge_dim + pqe_dim + 2, h, h, cfg.max_degree],
            Activation::LeakyRelu,
            Activation::None,
        );
        // Parallelism Degree Predictor: AQE ‖ PQE ‖ QF → thread logits.
        let threads_head = Mlp::new(
            store,
            &mut rng,
            &format!("{prefix}.threads"),
            &[aqe_dim + pqe_dim + qf_dim, h, h, cfg.max_threads],
            Activation::LeakyRelu,
            Activation::None,
        );
        Self { cfg, root_head, degree_head, threads_head }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Aggregated edge embedding incident to `op` (mean of EE vectors),
    /// or zeros when the operator has no edges.
    fn edge_agg_on<B: Backend>(
        b: &mut B,
        enc: &QueryEncoding<B::Id>,
        endpoints: &[(usize, usize)],
        op: usize,
        edge_dim: usize,
    ) -> B::Id {
        let mut incident = b.take_ids();
        for (ei, (c, p)) in endpoints.iter().enumerate() {
            if *c == op || *p == op {
                incident.push(enc.edge_emb[ei]);
            }
        }
        let out = if incident.is_empty() {
            b.input_with(edge_dim, |_| {})
        } else {
            let s = b.sum_vec(&incident);
            b.scale(s, 1.0 / incident.len() as f32)
        };
        b.recycle_ids(incident);
        out
    }

    /// Mean raw EDF of edges incident to `op` (the extra input of the
    /// pipeline head, Figure 7).
    fn edf_agg_on<B: Backend>(b: &mut B, qs: &QuerySnapshot, op: usize) -> B::Id {
        b.input_with(2, |mean| {
            let mut n = 0usize;
            for ((c, p), f) in qs.edge_endpoints().iter().zip(qs.edf()) {
                if *c == op || *p == op {
                    mean[0] += f[0];
                    mean[1] += f[1];
                    n += 1;
                }
            }
            if n > 0 {
                mean[0] /= n as f32;
                mean[1] /= n as f32;
            }
        })
    }

    /// Runs the full decision pass for one scheduling event on any
    /// [`Backend`].
    ///
    /// With `forced` picks (training replay) the same choices are
    /// re-taken and their log-probability is rebuilt; otherwise choices
    /// follow `mode`. Decisions and pick traces land in the caller's
    /// vectors (cleared first); the total log-probability handle is
    /// returned. All candidate root scores are produced by one
    /// [`Backend::mlp_scores`] call — a single batched GEMM per layer on
    /// the inference path.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_on<B: Backend>(
        &self,
        b: &mut B,
        snap: &SystemSnapshot,
        enc_queries: &[QueryEncoding<B::Id>],
        aqe: B::Id,
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
        scratch: &mut PredictScratch<B::Id>,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<PickTrace>,
    ) -> B::Id {
        decisions.clear();
        picks.clear();
        let PredictScratch { cands, available, root_inputs, pipe_inputs, logprob_terms } =
            scratch;
        snap.candidates_into(cands);
        logprob_terms.clear();
        root_inputs.clear();
        pipe_inputs.clear();
        Self::build_head_inputs_on(b, snap, enc_queries, cands, root_inputs, pipe_inputs);

        let max_iters = if let Some(f) = forced { f.len() } else { self.cfg.max_picks_per_event };
        if !cands.is_empty() {
            // All candidate scores in one batched pass; on the tape this
            // decomposes per candidate, keeping gradients unchanged.
            let cand_scores = b.mlp_scores(&self.root_head, root_inputs);
            self.run_picks_on(
                b,
                snap,
                enc_queries,
                aqe,
                cand_scores,
                cands,
                pipe_inputs,
                available,
                mode,
                rng,
                forced,
                max_iters,
                logprob_terms,
                decisions,
                picks,
            );
        }

        if logprob_terms.is_empty() {
            b.scalar(0.0)
        } else {
            let s = b.concat(logprob_terms);
            b.sum_elems(s)
        }
    }

    /// Builds the per-candidate root-head and pipeline-head inputs for
    /// one event's candidate list, appending to `root_inputs` /
    /// `pipe_inputs` (not cleared — the cross-event batch path
    /// accumulates several events' rows into one flat table).
    fn build_head_inputs_on<B: Backend>(
        b: &mut B,
        snap: &SystemSnapshot,
        enc_queries: &[QueryEncoding<B::Id>],
        cands: &[(usize, usize)],
        root_inputs: &mut Vec<B::Id>,
        pipe_inputs: &mut Vec<B::Id>,
    ) {
        let edge_dim = if snap.queries.iter().all(|q| q.edf().is_empty()) {
            // Degenerate single-op plans: derive from encoder width.
            enc_queries
                .first()
                .and_then(|qe| qe.edge_emb.first())
                .map(|&e| b.value(e).len())
                .unwrap_or(8)
        } else {
            enc_queries
                .iter()
                .find_map(|qe| qe.edge_emb.first().map(|&e| b.value(e).len()))
                .unwrap_or(8)
        };
        for &(qi, si) in cands.iter() {
            let qs = &snap.queries[qi];
            let qe = &enc_queries[qi];
            let op = qs.schedulable[si];
            let ee = Self::edge_agg_on(b, qe, qs.edge_endpoints(), op, edge_dim);
            root_inputs.push(b.concat(&[qe.node_emb[op], ee, qe.pqe]));
            let edf = Self::edf_agg_on(b, qs, op);
            pipe_inputs.push(b.concat(&[qe.node_emb[op], ee, qe.pqe, edf]));
        }
    }

    /// The masked sequential-pick loop shared by [`decide_on`] and
    /// [`decide_batch_on`]: given the precomputed candidate score vector
    /// for one event, repeatedly picks an execution root, a pipeline
    /// degree and a thread grant until the pick budget, the free pool or
    /// the candidate set is exhausted. `cands`/`pipe_inputs` are the
    /// event-local candidate slice; pushed [`PickTrace::cand_idx`]
    /// values index into that slice.
    ///
    /// [`decide_on`]: SchedulingPredictor::decide_on
    /// [`decide_batch_on`]: SchedulingPredictor::decide_batch_on
    #[allow(clippy::too_many_arguments)]
    fn run_picks_on<B: Backend>(
        &self,
        b: &mut B,
        snap: &SystemSnapshot,
        enc_queries: &[QueryEncoding<B::Id>],
        aqe: B::Id,
        cand_scores: B::Id,
        cands: &[(usize, usize)],
        pipe_inputs: &[B::Id],
        available: &mut Vec<bool>,
        mode: DecisionMode,
        mut rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
        max_iters: usize,
        logprob_terms: &mut Vec<B::Id>,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<PickTrace>,
    ) {
        available.clear();
        available.resize(cands.len(), true);
        let mut free = snap.free_threads;
        for it in 0..max_iters {
            if free == 0 {
                break;
            }
            if !available.iter().any(|&a| a) {
                break;
            }

            // --- Execution root (softmax over available candidates).
            let mask_node = b.input_with(cands.len(), |buf| {
                for (m, &a) in buf.iter_mut().zip(available.iter()) {
                    *m = if a { 0.0 } else { -1e9 };
                }
            });
            let masked = b.add(cand_scores, mask_node);
            let root_lsm = b.log_softmax(masked);
            let forced_pick = forced.map(|f| f[it]);
            let cand_idx = choose_on(
                b,
                root_lsm,
                |i| available[i],
                cands.len(),
                mode,
                rng.as_deref_mut(),
                forced_pick.map(|p| p.cand_idx),
            );
            logprob_terms.push(b.gather(root_lsm, cand_idx));

            let (qi, si) = cands[cand_idx];
            let qs = &snap.queries[qi];
            let op = qs.schedulable[si];

            // --- Pipeline degree.
            let max_deg = qs.max_degree[si].min(self.cfg.max_degree).max(1);
            let degree = if self.cfg.ablate_pipelining {
                1
            } else {
                let logits = b.mlp(&self.degree_head, pipe_inputs[cand_idx]);
                let dmask_node = b.input_with(self.cfg.max_degree, |buf| {
                    for (d, m) in buf.iter_mut().enumerate() {
                        *m = if d < max_deg { 0.0 } else { -1e9 };
                    }
                });
                let dmasked = b.add(logits, dmask_node);
                let dlsm = b.log_softmax(dmasked);
                let didx = choose_on(
                    b,
                    dlsm,
                    |i| i < max_deg,
                    self.cfg.max_degree,
                    mode,
                    rng.as_deref_mut(),
                    forced_pick.map(|p| p.degree - 1),
                );
                logprob_terms.push(b.gather(dlsm, didx));
                didx + 1
            };

            // --- Parallelism degree (threads for this query).
            let max_thr = free.min(self.cfg.max_threads).max(1);
            let qf = b.input(&qs.qf);
            let tin = b.concat(&[aqe, enc_queries[qi].pqe, qf]);
            let tlogits = b.mlp(&self.threads_head, tin);
            let tmask_node = b.input_with(self.cfg.max_threads, |buf| {
                for (t, m) in buf.iter_mut().enumerate() {
                    *m = if t < max_thr { 0.0 } else { -1e9 };
                }
            });
            let tmasked = b.add(tlogits, tmask_node);
            let tlsm = b.log_softmax(tmasked);
            let tidx = choose_on(
                b,
                tlsm,
                |i| i < max_thr,
                self.cfg.max_threads,
                mode,
                rng.as_deref_mut(),
                forced_pick.map(|p| p.threads - 1),
            );
            logprob_terms.push(b.gather(tlsm, tidx));
            let threads = tidx + 1;

            decisions.push(SchedDecision {
                query: qs.qid,
                root: OpId(op),
                pipeline_degree: degree,
                threads,
            });
            picks.push(PickTrace { cand_idx, degree, threads });
            free -= threads;
            // The chosen operator can't root another pipeline this event.
            available[cand_idx] = false;
        }
    }

    /// Runs independent decision passes for several same-tick scheduling
    /// events in one fused inference call.
    ///
    /// Each event sees its own snapshot/encoding/AQE. All events'
    /// candidate root scores are produced by a single
    /// [`Backend::mlp_scores_batched`] call — one fused GEMM per layer
    /// over every event's candidate matrix — after which the per-event
    /// masked pick loops run exactly as in
    /// [`SchedulingPredictor::decide_on`], consuming `rng` in event
    /// order. Per-event results are bit-identical to calling `decide_on`
    /// sequentially on each event with a fresh rng stream in the same
    /// order.
    ///
    /// With `forced` (training replay), event `e` re-takes exactly the
    /// pick sequence `forced(e)` — `max_picks_per_event` and the rng are
    /// not consulted — and its log-probability is rebuilt on the tape.
    /// This is how the REINFORCE trainer replays a whole rollout's
    /// sampled decisions as *one* recorded graph, so the backward pass
    /// runs the per-layer gradient GEMMs batched across all events.
    ///
    /// Decisions and pick traces accumulate *flat* in event order
    /// (cleared first); `per_event[e]` records how many of them belong
    /// to event `e` plus the handle of that event's total
    /// log-probability.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_batch_on<'p, B: Backend, S: SnapshotList + ?Sized>(
        &self,
        b: &mut B,
        snaps: &S,
        encs: &[EncodeScratch<B::Id>],
        aqes: &[B::Id],
        mode: DecisionMode,
        mut rng: Option<&mut StdRng>,
        max_picks_per_event: usize,
        forced: Option<&dyn Fn(usize) -> &'p [PickTrace]>,
        scratch: &mut BatchPredictScratch<B::Id>,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<PickTrace>,
        per_event: &mut Vec<EventOutcome<B::Id>>,
    ) {
        assert_eq!(snaps.len(), encs.len(), "one encoding scratch per event");
        assert_eq!(snaps.len(), aqes.len(), "one AQE handle per event");
        decisions.clear();
        picks.clear();
        per_event.clear();
        let BatchPredictScratch {
            cands,
            cand_offsets,
            seg_lens,
            seg_scores,
            available,
            root_inputs,
            pipe_inputs,
            logprob_terms,
        } = scratch;
        cands.clear();
        cand_offsets.clear();
        seg_lens.clear();
        root_inputs.clear();
        pipe_inputs.clear();

        // Pack every event's candidate table and head inputs into one
        // flat row list; `cand_offsets` delimits the per-event slices.
        cand_offsets.push(0);
        for (e, enc) in encs.iter().enumerate().take(snaps.len()) {
            let snap = snaps.get(e);
            let start = cands.len();
            snap.candidates_into_append(cands);
            Self::build_head_inputs_on(
                b,
                snap,
                enc.queries(),
                &cands[start..],
                root_inputs,
                pipe_inputs,
            );
            if cands.len() > start {
                seg_lens.push(cands.len() - start);
            }
            cand_offsets.push(cands.len());
        }

        // One fused GEMM per layer across every non-empty event.
        seg_scores.clear();
        if !seg_lens.is_empty() {
            b.mlp_scores_batched(&self.root_head, root_inputs, seg_lens, seg_scores);
        }

        // Per-event masked pick loops, rng consumed in event order.
        let mut seg = 0usize;
        for e in 0..snaps.len() {
            let snap = snaps.get(e);
            let (lo, hi) = (cand_offsets[e], cand_offsets[e + 1]);
            logprob_terms.clear();
            let before = decisions.len();
            let forced_event = forced.map(|f| f(e));
            let max_iters =
                forced_event.map_or(max_picks_per_event, <[PickTrace]>::len);
            if hi > lo {
                let cand_scores = seg_scores[seg];
                seg += 1;
                self.run_picks_on(
                    b,
                    snap,
                    encs[e].queries(),
                    aqes[e],
                    cand_scores,
                    &cands[lo..hi],
                    &pipe_inputs[lo..hi],
                    available,
                    mode,
                    rng.as_deref_mut(),
                    forced_event,
                    max_iters,
                    logprob_terms,
                    decisions,
                    picks,
                );
            }
            let logprob = if logprob_terms.is_empty() {
                b.scalar(0.0)
            } else {
                let s = b.concat(logprob_terms);
                b.sum_elems(s)
            };
            per_event.push(EventOutcome { n_decisions: decisions.len() - before, logprob });
        }
    }

    /// Runs the full decision pass for one scheduling event (the tape
    /// instantiation of [`SchedulingPredictor::decide_on`]). Returns the
    /// decisions, the pick traces, and the total log-probability node.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        snap: &SystemSnapshot,
        enc: &SystemEncoding,
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
    ) -> (Vec<SchedDecision>, Vec<PickTrace>, NodeId) {
        let mut scratch = PredictScratch::new();
        let mut decisions = Vec::new();
        let mut picks = Vec::new();
        let lp = self.decide_on(
            &mut TapeBackend::new(g, store),
            snap,
            &enc.queries,
            enc.aqe,
            mode,
            rng,
            forced,
            &mut scratch,
            &mut decisions,
            &mut picks,
        );
        (decisions, picks, lp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{EncoderConfig, EncoderKind, QueryEncoder};
    use crate::features::{snapshot, FeatureConfig};
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::{QueryId, QueryRuntime, SchedContext};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (ParamStore, QueryEncoder, SchedulingPredictor, SystemSnapshot) {
        let mut store = ParamStore::new();
        let ecfg = EncoderConfig {
            hidden: 16,
            edge_hidden: 8,
            pqe_dim: 8,
            aqe_dim: 8,
            kind: EncoderKind::TcnGat,
            ..Default::default()
        };
        let qf_dim = ecfg.feat.qf_dim();
        let enc = QueryEncoder::new(&mut store, 3, "enc", ecfg);
        let pcfg = PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() };
        let pred = SchedulingPredictor::new(&mut store, 4, "pred", pcfg, 16, 8, 8, 8, qf_dim);

        let queries: Vec<QueryRuntime> = (0..2)
            .map(|i| {
                let mut b = PlanBuilder::new(format!("q{i}"));
                let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 100.0, 4, 0.01, 1e5);
                let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![1], 50.0, 4, 0.01, 1e5);
                let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 4, 0.01, 1e5);
                let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::Synthetic, vec![0], vec![1], 10.0, 1, 0.01, 1e4);
                b.connect(scan, sel, true);
                b.connect(sel, agg, true);
                b.connect(agg, fin, false);
                QueryRuntime::new(QueryId(i as u64), Arc::new(b.finish(fin)), 0.0, 8)
            })
            .collect();
        let free = [0usize, 1, 2, 3, 4, 5];
        let hot = lsched_engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 8,
            free_threads: 6,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let snap = snapshot(&FeatureConfig::default(), &ctx);
        (store, enc, pred, snap)
    }

    #[test]
    fn greedy_decisions_are_valid() {
        let (store, enc, pred, snap) = setup();
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, picks, lp) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        assert!(!decisions.is_empty());
        assert_eq!(decisions.len(), picks.len());
        let total_threads: usize = decisions.iter().map(|d| d.threads).sum();
        assert!(total_threads <= 6);
        for d in &decisions {
            assert!(d.pipeline_degree >= 1 && d.pipeline_degree <= 4);
            assert!(d.threads >= 1);
        }
        assert!(g.value(lp).item() <= 0.0, "log-prob must be ≤ 0");
    }

    #[test]
    fn sampling_is_reproducible_with_seed() {
        let (store, enc, pred, snap) = setup();
        let run = |seed: u64| {
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &snap);
            let mut rng = StdRng::seed_from_u64(seed);
            let (d, _, _) = pred.decide(
                &mut g,
                &store,
                &snap,
                &sys,
                DecisionMode::Sample,
                Some(&mut rng),
                None,
            );
            d
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn replay_reproduces_logprob() {
        let (mut store, enc, pred, snap) = setup();
        let (picks, lp_act) = {
            let mut g = Graph::new();
            let sys = enc.encode_system(&mut g, &store, &snap);
            let mut rng = StdRng::seed_from_u64(9);
            let (_, picks, lp) = pred.decide(
                &mut g,
                &store,
                &snap,
                &sys,
                DecisionMode::Sample,
                Some(&mut rng),
                None,
            );
            (picks, g.value(lp).item())
        };
        // Replay with forced picks must land on the same log-prob, and
        // gradients must flow.
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, picks2, lp) = pred.decide(
            &mut g,
            &store,
            &snap,
            &sys,
            DecisionMode::Greedy,
            None,
            Some(&picks),
        );
        assert_eq!(picks, picks2);
        assert!((g.value(lp).item() - lp_act).abs() < 1e-5);
        assert!(!decisions.is_empty());
        let loss = g.scale(lp, -1.0);
        g.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn ablated_pipelining_forces_degree_one() {
        let (mut store, _, _, snap) = setup();
        // Rebuild predictor with ablation on (fresh params to avoid
        // name clashes).
        let pcfg = PredictorConfig {
            max_degree: 4,
            max_threads: 16,
            ablate_pipelining: true,
            ..Default::default()
        };
        let ecfg = EncoderConfig {
            hidden: 16,
            edge_hidden: 8,
            pqe_dim: 8,
            aqe_dim: 8,
            ..Default::default()
        };
        let qf_dim = ecfg.feat.qf_dim();
        let enc = QueryEncoder::new(&mut store, 13, "enc2", ecfg);
        let pred =
            SchedulingPredictor::new(&mut store, 14, "pred2", pcfg, 16, 8, 8, 8, qf_dim);
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, _, _) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        assert!(decisions.iter().all(|d| d.pipeline_degree == 1));
    }

    #[test]
    fn thread_mask_respects_free_threads() {
        let (store, enc, pred, mut snap) = setup();
        snap.free_threads = 2;
        let mut g = Graph::new();
        let sys = enc.encode_system(&mut g, &store, &snap);
        let (decisions, _, _) =
            pred.decide(&mut g, &store, &snap, &sys, DecisionMode::Greedy, None, None);
        let total: usize = decisions.iter().map(|d| d.threads).sum();
        assert!(total <= 2);
    }
}
