//! Transfer learning (Section 6): reuse a model trained on one workload
//! as the starting point for another, freezing every *interior*
//! convolution/hidden layer and retraining only the layers adjacent to
//! each network's input and output.
//!
//! Freezing is driven purely by parameter names: layers register as
//! `"{net}.l{i}.*"` (MLPs) or `"{net}.conv{i}.*"` / `"{net}.gcn{i}.*"`
//! (convolution stacks); within each `{net}` group the minimum and
//! maximum layer indices stay trainable and everything in between is
//! frozen. This is valid across workloads because the feature widths —
//! and hence every layer shape — are workload-independent (see
//! `features::FeatureConfig`).

use std::collections::HashMap;

use lsched_nn::ParamStore;

use crate::agent::LSchedModel;

/// What a transfer did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// Parameters copied from the source model.
    pub copied: usize,
    /// Parameters frozen for retraining.
    pub frozen: usize,
}

/// Parses `"{net}.(l|conv|gcn){i}.rest"` into `(net, i)`.
fn layer_of(name: &str) -> Option<(String, usize)> {
    for (pos, part) in name.split('.').enumerate() {
        for prefix in ["l", "conv", "gcn"] {
            if let Some(num) = part.strip_prefix(prefix) {
                if !num.is_empty() && num.chars().all(|c| c.is_ascii_digit()) {
                    let net: Vec<&str> = name.split('.').take(pos).collect();
                    return Some((net.join("."), num.parse().ok()?));
                }
            }
        }
    }
    None
}

/// Freezes every interior layer of every layered network in `store`
/// (layers strictly between each network's minimum and maximum index).
/// Returns the number of parameters frozen.
pub fn freeze_interior(store: &mut ParamStore) -> usize {
    // Group layer indices per network.
    let mut nets: HashMap<String, (usize, usize)> = HashMap::new();
    let named: Vec<(String, Option<(String, usize)>)> = store
        .iter_ids()
        .map(|(_, n)| (n.to_string(), layer_of(n)))
        .collect();
    for (_, parsed) in &named {
        if let Some((net, i)) = parsed {
            let e = nets.entry(net.clone()).or_insert((*i, *i));
            e.0 = e.0.min(*i);
            e.1 = e.1.max(*i);
        }
    }
    let mut frozen = 0;
    for (name, parsed) in &named {
        if let Some((net, i)) = parsed {
            let (lo, hi) = nets[net];
            if *i > lo && *i < hi {
                frozen += store.set_frozen_where(true, |n| n == name);
            }
        }
    }
    frozen
}

/// Unfreezes every parameter (undo a transfer, train everything).
pub fn unfreeze_all(store: &mut ParamStore) -> usize {
    store.set_frozen_where(false, |_| true)
}

/// Applies transfer learning: copies all matching parameters from
/// `source` into `model` and freezes the interior layers.
pub fn transfer_from(model: &mut LSchedModel, source: &ParamStore) -> TransferReport {
    let copied = model.store.load_matching(source);
    let frozen = freeze_interior(&mut model.store);
    TransferReport { copied, frozen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{LSchedConfig, LSchedModel};
    use crate::encoder::EncoderConfig;
    use crate::predictor::PredictorConfig;

    fn model(seed: u64) -> LSchedModel {
        LSchedModel::new(
            LSchedConfig {
                encoder: EncoderConfig {
                    hidden: 8,
                    edge_hidden: 4,
                    pqe_dim: 6,
                    aqe_dim: 6,
                    conv_layers: 3,
                    ..Default::default()
                },
                predictor: PredictorConfig { max_degree: 4, max_threads: 8, ..Default::default() },
            },
            seed,
        )
    }

    #[test]
    fn layer_name_parsing() {
        assert_eq!(layer_of("enc.tcn.conv1.w_self"), Some(("enc.tcn".into(), 1)));
        assert_eq!(layer_of("pred.root.l2.w"), Some(("pred.root".into(), 2)));
        assert_eq!(layer_of("enc.gcn0.self.w"), Some(("enc".into(), 0)));
        assert_eq!(layer_of("enc.node_proj.w"), None);
    }

    #[test]
    fn interior_layers_frozen_boundaries_trainable() {
        let mut m = model(1);
        let frozen = freeze_interior(&mut m.store);
        assert!(frozen > 0);
        // conv stack has 3 layers: conv0/conv2 trainable, conv1 frozen.
        let check = |name: &str, expect_frozen: bool| {
            let id = m.store.id(name).unwrap_or_else(|| panic!("param {name} missing"));
            assert_eq!(m.store.is_frozen(id), expect_frozen, "{name}");
        };
        check("enc.tcn.conv0.w_self", false);
        check("enc.tcn.conv1.w_self", true);
        check("enc.tcn.conv2.w_self", false);
        // MLPs are [in, h, h, out] = 3 linear layers: l1 interior.
        check("pred.root.l0.w", false);
        check("pred.root.l1.w", true);
        check("pred.root.l2.w", false);
        // Non-layered params stay trainable.
        check("enc.node_proj.w", false);
    }

    #[test]
    fn transfer_copies_and_freezes() {
        let src = model(10);
        let mut dst = model(20);
        let before_names: usize = dst.store.len();
        let report = transfer_from(&mut dst, &src.store);
        assert_eq!(report.copied, before_names, "identical architectures copy fully");
        assert!(report.frozen > 0);
        // Values actually copied.
        let id = dst.store.id("enc.tcn.conv1.w_self").unwrap();
        let sid = src.store.id("enc.tcn.conv1.w_self").unwrap();
        assert_eq!(dst.store.value(id).data(), src.store.value(sid).data());
    }

    #[test]
    fn unfreeze_restores_training() {
        let mut m = model(2);
        let frozen = freeze_interior(&mut m.store);
        let unfrozen = unfreeze_all(&mut m.store);
        assert_eq!(frozen, unfrozen);
        let ids: Vec<_> = m.store.iter_ids().map(|(id, _)| id).collect();
        assert!(ids.iter().all(|&id| !m.store.is_frozen(id)));
    }

    #[test]
    fn frozen_params_survive_training_step() {
        use lsched_nn::Adam;
        let mut m = model(3);
        freeze_interior(&mut m.store);
        let fid = m.store.id("enc.tcn.conv1.w_self").unwrap();
        let before = m.store.value(fid).clone();
        // Fake a gradient step.
        let ids: Vec<_> = m.store.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            let g: Vec<f32> = vec![1.0; m.store.value(id).len()];
            m.store.accumulate_grad(id, &g);
        }
        let mut opt = Adam::new(0.1);
        opt.step(&mut m.store);
        assert_eq!(m.store.value(fid).data(), before.data());
        // And an unfrozen one moved.
        let tid = m.store.id("enc.tcn.conv0.w_self").unwrap();
        let moved = m.store.value(tid).data().iter().any(|&v| v != 0.0);
        assert!(moved);
    }
}
