//! The LSched scheduling agent: the model bundle (parameters + Query
//! Encoder + Scheduling Predictor) and the [`Scheduler`] implementation
//! that plugs it into the engine (Figure 2).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use lsched_engine::scheduler::{
    PolicyHealth, QueryId, SchedContext, SchedDecision, SchedEvent, Scheduler,
};
use lsched_nn::{Backend, Graph, InferCtx, ParamStore, ValId};

use crate::encoder::{EncodeScratch, EncoderConfig, QueryEncoder};
use crate::features::{snapshot_cached, FeatureConfig, SnapshotCache, SystemSnapshot};
use crate::predictor::{
    BatchPredictScratch, DecisionMode, EventOutcome, PickTrace, PredictScratch, PredictorConfig,
    SchedulingPredictor,
};

/// Full agent configuration.
#[derive(Debug, Clone, Default)]
pub struct LSchedConfig {
    /// Encoder settings.
    pub encoder: EncoderConfig,
    /// Predictor settings.
    pub predictor: PredictorConfig,
}

/// The model bundle: one [`ParamStore`] shared by the encoder and the
/// predictor heads.
#[derive(Debug)]
pub struct LSchedModel {
    /// All trainable parameters.
    pub store: ParamStore,
    /// The Query Encoder (Figure 6).
    pub encoder: QueryEncoder,
    /// The Scheduling Predictor (Figure 7).
    pub predictor: SchedulingPredictor,
    /// The configuration the model was built with.
    pub cfg: LSchedConfig,
}

impl LSchedModel {
    /// Builds a fresh model with seeded initialization.
    pub fn new(cfg: LSchedConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let encoder = QueryEncoder::new(&mut store, seed, "enc", cfg.encoder.clone());
        let e = &cfg.encoder;
        let predictor = SchedulingPredictor::new(
            &mut store,
            seed.wrapping_add(1),
            "pred",
            cfg.predictor.clone(),
            e.hidden,
            e.edge_hidden,
            e.pqe_dim,
            e.aqe_dim,
            e.feat.qf_dim(),
        );
        Self { store, encoder, predictor, cfg }
    }

    /// The feature configuration in use.
    pub fn feature_config(&self) -> &FeatureConfig {
        &self.cfg.encoder.feat
    }

    /// Runs encoder + predictor on a snapshot. With `forced` picks the
    /// same choices are replayed (training backward pass); otherwise
    /// choices follow `mode`. Returns the graph (kept alive so callers
    /// can backprop through the returned log-prob node).
    pub fn decide_snapshot(
        &self,
        snap: &SystemSnapshot,
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
    ) -> (Graph, Vec<SchedDecision>, Vec<PickTrace>, lsched_nn::NodeId) {
        let mut g = Graph::new();
        let (decisions, picks, logprob) = self.decide_snapshot_in(&mut g, snap, mode, rng, forced);
        (g, decisions, picks, logprob)
    }

    /// Like [`decide_snapshot`](Self::decide_snapshot) but builds the
    /// forward pass on a caller-provided graph, which hot paths reset
    /// and reuse between decisions to keep the tape's allocation alive.
    pub fn decide_snapshot_in(
        &self,
        g: &mut Graph,
        snap: &SystemSnapshot,
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        forced: Option<&[PickTrace]>,
    ) -> (Vec<SchedDecision>, Vec<PickTrace>, lsched_nn::NodeId) {
        if snap.queries.is_empty() {
            let zero = g.input(lsched_nn::Tensor::scalar(0.0));
            return (Vec::new(), Vec::new(), zero);
        }
        let enc = self.encoder.encode_system(g, &self.store, snap);
        self.predictor.decide(g, &self.store, snap, &enc, mode, rng, forced)
    }

    /// Runs encoder + predictor on the tape-free inference path: values
    /// are evaluated straight into `scratch`'s bump arena (no autodiff
    /// nodes, no parameter clones) and candidate scoring is batched into
    /// one GEMM per head layer. Decisions and picks land in the caller's
    /// vectors (cleared first); the decision-sequence log-probability is
    /// returned as a plain float. Steady-state calls allocate nothing.
    ///
    /// Decisions are bit-identical to the tape path
    /// ([`decide_snapshot`](Self::decide_snapshot)): both executors share
    /// the same accumulation kernels and the same sampling arithmetic.
    pub fn decide_infer(
        &self,
        snap: &SystemSnapshot,
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        scratch: &mut InferScratch,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<PickTrace>,
    ) -> f32 {
        decisions.clear();
        picks.clear();
        if snap.queries.is_empty() {
            return 0.0;
        }
        let InferScratch { ctx, enc, pred } = scratch;
        let mut b = ctx.session(&self.store);
        let aqe = self.encoder.encode_system_on(&mut b, snap, enc);
        let lp = self.predictor.decide_on(
            &mut b,
            snap,
            enc.queries(),
            aqe,
            mode,
            rng,
            None,
            pred,
            decisions,
            picks,
        );
        b.value(lp)[0]
    }

    /// Runs encoder + predictor for several independent same-tick
    /// snapshots in one fused inference call (the cross-event batch
    /// path). Every event's candidate root scores come out of a single
    /// [`lsched_nn::Backend::mlp_scores_batched`] call — one GEMM per
    /// layer across all events — and the per-event pick loops consume
    /// `rng` in event order, so results are bit-identical to calling
    /// [`decide_infer`](Self::decide_infer) per snapshot in the same
    /// order with the same rng stream and pick budget.
    ///
    /// Decisions and picks accumulate flat in event order (cleared
    /// first); `per_event[e]` receives `(decision count, log-prob)` for
    /// event `e`. Steady-state calls allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_infer_batch(
        &self,
        snaps: &[&SystemSnapshot],
        mode: DecisionMode,
        rng: Option<&mut StdRng>,
        max_picks_per_event: usize,
        scratch: &mut BatchInferScratch,
        decisions: &mut Vec<SchedDecision>,
        picks: &mut Vec<PickTrace>,
        per_event: &mut Vec<(usize, f32)>,
    ) {
        decisions.clear();
        picks.clear();
        per_event.clear();
        if snaps.is_empty() {
            return;
        }
        let BatchInferScratch { ctx, encs, pred, aqes, outcomes } = scratch;
        while encs.len() < snaps.len() {
            encs.push(EncodeScratch::new());
        }
        let mut b = ctx.session(&self.store);
        aqes.clear();
        for (e, &snap) in snaps.iter().enumerate() {
            let aqe = if snap.queries.is_empty() {
                // Nothing to encode; the pick loop never runs for this
                // event, so any valid handle stands in for the AQE.
                encs[e].clear();
                b.scalar(0.0)
            } else {
                self.encoder.encode_system_on(&mut b, snap, &mut encs[e])
            };
            aqes.push(aqe);
        }
        self.predictor.decide_batch_on(
            &mut b,
            snaps,
            &encs[..snaps.len()],
            aqes,
            mode,
            rng,
            max_picks_per_event,
            None,
            pred,
            decisions,
            picks,
            outcomes,
        );
        for o in outcomes.iter() {
            per_event.push((o.n_decisions, b.value(o.logprob)[0]));
        }
    }

    /// Serializes the parameters to JSON (checkpointing).
    pub fn params_json(&self) -> String {
        self.store.to_json()
    }

    /// Loads parameters with matching names from a JSON checkpoint.
    /// Returns how many parameters were restored.
    pub fn load_params_json(&mut self, json: &str) -> Result<usize, serde_json::Error> {
        let other = ParamStore::from_json(json)?;
        Ok(self.store.load_matching(&other))
    }
}

/// All reusable state of the tape-free decision path: the evaluation
/// arena plus the encoder/predictor scratch vectors. Kept alive across
/// decisions so every buffer retains its capacity — after warm-up,
/// [`LSchedModel::decide_infer`] performs zero heap allocations.
#[derive(Debug, Default)]
pub struct InferScratch {
    ctx: InferCtx,
    enc: EncodeScratch<ValId>,
    pred: PredictScratch<ValId>,
}

impl InferScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity of the value arena in `f32` slots (diagnostics).
    pub fn arena_capacity(&self) -> usize {
        self.ctx.arena_capacity()
    }
}

/// Reusable state of the cross-event batched decision path
/// ([`LSchedModel::decide_infer_batch`]): one evaluation arena shared by
/// all events of a tick, one [`EncodeScratch`] per event slot, and the
/// flat batch predictor scratch. After warm-up at a given event count,
/// batched decisions perform zero heap allocations.
#[derive(Debug, Default)]
pub struct BatchInferScratch {
    ctx: InferCtx,
    encs: Vec<EncodeScratch<ValId>>,
    pred: BatchPredictScratch<ValId>,
    aqes: Vec<ValId>,
    outcomes: Vec<EventOutcome<ValId>>,
}

impl BatchInferScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity of the value arena in `f32` slots (diagnostics).
    pub fn arena_capacity(&self) -> usize {
        self.ctx.arena_capacity()
    }
}

/// One recorded scheduling event of an episode (state + actions), the
/// unit the REINFORCE trainer replays.
#[derive(Debug, Clone)]
pub struct EpisodeStep {
    /// The state snapshot the decision was taken in.
    pub snapshot: SystemSnapshot,
    /// The sub-decisions taken.
    pub picks: Vec<PickTrace>,
    /// Engine clock at the event.
    pub time: f64,
    /// Number of existing queries at the event (the `Q_d` of Section 6).
    pub num_queries: usize,
}

/// The LSched scheduler.
///
/// The model is held behind an [`Arc`] so parallel rollout workers can
/// share one immutable parameter snapshot without cloning the weights;
/// single-owner callers keep the by-value API via [`finish`]
/// (LSchedScheduler::finish).
pub struct LSchedScheduler {
    model: Arc<LSchedModel>,
    mode: DecisionMode,
    rng: StdRng,
    recording: bool,
    steps: Vec<EpisodeStep>,
    /// Per-plan static encoding memo (tentpole: incremental encoding).
    cache: SnapshotCache,
    /// Reusable tape-free evaluation state (arena + id pools); decisions
    /// run through [`LSchedModel::decide_infer`], not the autodiff tape.
    infer: InferScratch,
    /// Reusable state of the tick-batch path ([`Scheduler::on_tick`]).
    batch: BatchInferScratch,
    /// Per-event `(decision count, log-prob)` scratch for the tick path.
    tick_outcomes: Vec<(usize, f32)>,
    /// Whether the last forward pass produced a non-finite log-prob —
    /// the signature of NaN logits. Polled by guarding wrappers via
    /// [`Scheduler::health`].
    degraded: bool,
}

impl LSchedScheduler {
    fn with_mode(model: Arc<LSchedModel>, mode: DecisionMode, seed: u64, recording: bool) -> Self {
        Self {
            model,
            mode,
            rng: StdRng::seed_from_u64(seed),
            recording,
            steps: Vec::new(),
            cache: SnapshotCache::new(),
            infer: InferScratch::new(),
            batch: BatchInferScratch::new(),
            tick_outcomes: Vec::new(),
            degraded: false,
        }
    }

    /// Inference-mode scheduler (greedy decisions, no recording).
    pub fn greedy(model: LSchedModel) -> Self {
        Self::with_mode(Arc::new(model), DecisionMode::Greedy, 0, false)
    }

    /// Stochastic inference: decisions are sampled from the learned
    /// policy (no recording). The policy is a distribution; sampling at
    /// inference avoids the instability of committing to the argmax of
    /// a stochastically trained policy.
    pub fn stochastic(model: LSchedModel, seed: u64) -> Self {
        Self::with_mode(Arc::new(model), DecisionMode::Sample, seed, false)
    }

    /// Training-mode scheduler: samples decisions and records every step
    /// for the episode replay.
    pub fn sampling(model: LSchedModel, seed: u64) -> Self {
        Self::with_mode(Arc::new(model), DecisionMode::Sample, seed, true)
    }

    /// Training-mode scheduler over a shared model snapshot — the
    /// parallel-rollout entry point: every worker gets its own scheduler
    /// (own RNG, own step recording) against the same frozen parameters.
    pub fn sampling_shared(model: Arc<LSchedModel>, seed: u64) -> Self {
        Self::with_mode(model, DecisionMode::Sample, seed, true)
    }

    /// Consumes the scheduler, returning the model and recorded steps.
    ///
    /// Panics if the model is still shared (use [`into_steps`]
    /// (LSchedScheduler::into_steps) from parallel rollout workers).
    pub fn finish(self) -> (LSchedModel, Vec<EpisodeStep>) {
        let model = Arc::try_unwrap(self.model)
            .expect("finish() requires exclusive model ownership; shared rollouts use into_steps()");
        (model, self.steps)
    }

    /// Consumes the scheduler, returning only the recorded steps (the
    /// shared model stays with its other owners).
    pub fn into_steps(self) -> Vec<EpisodeStep> {
        self.steps
    }

    /// Takes the recorded steps out of a live scheduler, leaving it
    /// recording into an empty buffer. The online-correction loop uses
    /// this to harvest a window without tearing the scheduler down.
    pub fn take_steps(&mut self) -> Vec<EpisodeStep> {
        std::mem::take(&mut self.steps)
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &LSchedModel {
        &self.model
    }

    /// Mutable access to the model, available only while no parallel
    /// rollout worker shares the snapshot (`None` otherwise). In-place
    /// updates through this handle keep the parameter tensors' `Arc`s
    /// uniquely owned, so the optimizer never COW-clones them.
    pub fn model_mut(&mut self) -> Option<&mut LSchedModel> {
        Arc::get_mut(&mut self.model)
    }

    /// Restarts the decision RNG and the per-run caches for a fresh
    /// episode window while keeping every scratch arena's capacity
    /// alive. Equivalent to rebuilding the scheduler with this seed,
    /// minus the reallocation.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.cache.clear();
        self.degraded = false;
    }

    /// Static-encoding cache hit/miss counters (for diagnostics/tests).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }
}

impl Scheduler for LSchedScheduler {
    fn name(&self) -> String {
        "lsched".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let snap = snapshot_cached(self.model.feature_config(), ctx, &mut self.cache);
        let rng = match self.mode {
            DecisionMode::Sample => Some(&mut self.rng),
            DecisionMode::Greedy => None,
        };
        let mut decisions = Vec::new();
        let mut picks = Vec::new();
        let lp_value = self.model.decide_infer(
            &snap,
            self.mode,
            rng,
            &mut self.infer,
            &mut decisions,
            &mut picks,
        );
        // The episode log-prob sums every pick's logit: one NaN anywhere
        // in the forward pass surfaces here. Refuse to emit decisions
        // built on a poisoned pass and report Degraded so a guarding
        // wrapper can fall back.
        self.degraded = !lp_value.is_finite();
        if self.degraded {
            return Vec::new();
        }
        if self.recording && !picks.is_empty() {
            self.steps.push(EpisodeStep {
                snapshot: snap,
                picks,
                time: ctx.time,
                num_queries: ctx.queries.len(),
            });
        }
        decisions
    }

    fn on_tick(
        &mut self,
        ctx: &SchedContext<'_>,
        events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        if events.is_empty() {
            return Some(Vec::new());
        }
        // Every event of a tick fires at the same instant against the
        // same post-tick state, so one snapshot + one encode serve the
        // whole batch; the pick budget scales with the event count so
        // the batch can admit as many pipelines as the events could
        // have sequentially, capped to keep worst-case tick latency
        // bounded under bursty arrivals.
        const MAX_TICK_PICKS: usize = 32;
        let per_event = self.model.cfg.predictor.max_picks_per_event;
        let budget = (events.len() * per_event).min(MAX_TICK_PICKS.max(per_event));
        let snap = snapshot_cached(self.model.feature_config(), ctx, &mut self.cache);
        let rng = match self.mode {
            DecisionMode::Sample => Some(&mut self.rng),
            DecisionMode::Greedy => None,
        };
        let mut decisions = Vec::new();
        let mut picks = Vec::new();
        self.model.decide_infer_batch(
            &[&snap],
            self.mode,
            rng,
            budget,
            &mut self.batch,
            &mut decisions,
            &mut picks,
            &mut self.tick_outcomes,
        );
        let lp_value = self.tick_outcomes.first().map_or(0.0, |&(_, lp)| lp);
        self.degraded = !lp_value.is_finite();
        if self.degraded {
            return Some(Vec::new());
        }
        if self.recording && !picks.is_empty() {
            self.steps.push(EpisodeStep {
                snapshot: snap,
                picks,
                time: ctx.time,
                num_queries: ctx.queries.len(),
            });
        }
        Some(decisions)
    }

    fn on_query_finished(&mut self, _time: f64, query: QueryId) {
        // The plan's static encoding can never be referenced again once
        // the query leaves the system; drop it so long sessions don't
        // accumulate dead entries.
        self.cache.evict(query);
    }

    fn on_query_cancelled(&mut self, _time: f64, query: QueryId) {
        // Same lifecycle end as completion from the cache's perspective.
        self.cache.evict(query);
    }

    fn health(&self) -> PolicyHealth {
        if self.degraded {
            PolicyHealth::Degraded
        } else {
            PolicyHealth::Healthy
        }
    }

    fn reset(&mut self) {
        self.steps.clear();
        self.degraded = false;
        // Query ids restart per run, so cached statics would alias new
        // plans; the cache guards by plan pointer but a reset run should
        // start cold regardless.
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    fn small_model() -> LSchedModel {
        let cfg = LSchedConfig {
            encoder: EncoderConfig {
                hidden: 12,
                edge_hidden: 4,
                pqe_dim: 8,
                aqe_dim: 8,
                conv_layers: 2,
                ..Default::default()
            },
            predictor: PredictorConfig { max_degree: 6, max_threads: 32, ..Default::default() },
        };
        LSchedModel::new(cfg, 42)
    }

    #[test]
    fn untrained_agent_completes_workloads() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 1);
        let mut sched = LSchedScheduler::greedy(small_model());
        let res = simulate(SimConfig { num_threads: 8, ..Default::default() }, &wl, &mut sched);
        assert_eq!(res.outcomes.len(), 6);
        assert!(res.sched_decisions > 0);
    }

    #[test]
    fn sampling_mode_records_steps() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 4, ArrivalPattern::Streaming { lambda: 50.0 }, 2);
        let mut sched = LSchedScheduler::sampling(small_model(), 7);
        let res = simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut sched);
        assert_eq!(res.outcomes.len(), 4);
        let (_model, steps) = sched.finish();
        assert!(!steps.is_empty());
        for s in &steps {
            assert!(!s.picks.is_empty());
            assert!(s.num_queries >= 1);
        }
        // Steps are time-ordered.
        for w in steps.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn nan_model_reports_degraded_and_emits_nothing() {
        let mut model = small_model();
        let ids: Vec<_> = model.store.iter_ids().map(|(id, _)| id).collect();
        for id in ids {
            for v in model.store.value_mut(id).data_mut() {
                *v = f32::NAN;
            }
        }
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 3, ArrivalPattern::Batch, 8);
        let mut sched = LSchedScheduler::greedy(model);
        // The sim's progress guard carries the run; the agent must not
        // emit garbage decisions and must self-report Degraded.
        let res = simulate(SimConfig { num_threads: 4, ..Default::default() }, &wl, &mut sched);
        assert_eq!(res.outcomes.len(), 3);
        assert_eq!(sched.health(), PolicyHealth::Degraded);
        assert_eq!(res.sched_decisions, 0, "a poisoned model must emit no decisions");
        assert!(res.fallback_decisions > 0);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_behavior() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 4, ArrivalPattern::Batch, 3);
        let cfgd = SimConfig { num_threads: 6, ..Default::default() };

        let model = small_model();
        let json = model.params_json();
        let mut s1 = LSchedScheduler::greedy(model);
        let r1 = simulate(cfgd.clone(), &wl, &mut s1);

        let mut restored = small_model();
        // Perturb then restore.
        let ids: Vec<_> = restored.store.iter_ids().map(|(id, _)| id).collect();
        for id in &ids {
            for v in restored.store.value_mut(*id).data_mut() {
                *v += 0.5;
            }
        }
        let n = restored.load_params_json(&json).unwrap();
        assert_eq!(n, ids.len());
        let mut s2 = LSchedScheduler::greedy(restored);
        let r2 = simulate(cfgd, &wl, &mut s2);
        assert_eq!(r1.avg_duration(), r2.avg_duration());
    }
}
