//! Physical-plan feature extraction (Section 4.1): Operator Features
//! (OPF), Edge Features (EDF) and Query Features (QF), plus the
//! state-snapshot structure the encoder and trainer operate on.
//!
//! Feature dimensions are *workload-independent* (tables and columns are
//! folded into fixed-width one-hot slots) so a model trained on one
//! benchmark can be transferred to another with the same layer shapes —
//! the precondition for Section 6's transfer learning ("the dimensions
//! of these layers remain the same among different workloads").

use lsched_engine::plan::{OpKind, PhysicalPlan, PlanEdge};
use lsched_engine::scheduler::{QueryId, QueryRuntime, SchedContext};
use lsched_nn::TreeSpec;
use std::collections::HashMap;
use std::sync::Arc;

/// Fixed feature dimensions.
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// One-hot slots for input relations (O-IN); table indices fold in
    /// modulo this width.
    pub max_tables: usize,
    /// One-hot slots for columns (O-COLS); global column ids fold in
    /// modulo this width.
    pub max_columns: usize,
    /// Downsampled block-bitmap width (Eq. 1's `|d|`).
    pub blocks_dim: usize,
    /// Q-LOC width: the maximum thread-pool size supported.
    pub max_threads: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self { max_tables: 32, max_columns: 160, blocks_dim: 8, max_threads: 128 }
    }
}

impl FeatureConfig {
    /// Dimension of one operator's OPF vector:
    /// O-TY ‖ O-IN ‖ O-COLS ‖ O-BLCKS ‖ O-WO ‖ O-DUR ‖ O-MEM.
    /// (O-CON, the operator connectivity, is consumed structurally as
    /// the tree the convolution slides over rather than as a vector.)
    pub fn opf_dim(&self) -> usize {
        OpKind::COUNT + self.max_tables + self.max_columns + self.blocks_dim + 3
    }

    /// Dimension of one edge's EDF vector: E-NPB ‖ E-DIR.
    pub const EDF_DIM: usize = 2;

    /// Dimension of one query's QF vector: Q-ATH ‖ Q-FTH ‖ Q-LOC.
    pub fn qf_dim(&self) -> usize {
        2 + self.max_threads
    }
}

/// Equation 1: moving-average downsampling of a block bitmap `b` to a
/// fixed-size array of `d_len` entries:
///
/// ```text
/// d_j = (|d|/|b|) * Σ_{k=j·|b|/|d|}^{(j+1)·|b|/|d|} b_k
/// ```
///
/// Bounds are inclusive with out-of-range entries contributing zero,
/// matching the paper's worked example `b = {1,1,0,1,1,0} → d = {1,1,0.5}`.
pub fn downsample_blocks(bitmap: &[bool], d_len: usize) -> Vec<f32> {
    assert!(d_len > 0);
    if bitmap.is_empty() {
        return vec![0.0; d_len];
    }
    let b_len = bitmap.len() as f64;
    let ratio = b_len / d_len as f64;
    (0..d_len)
        .map(|j| {
            let lo = (j as f64 * ratio).floor() as usize;
            let hi = ((j + 1) as f64 * ratio).floor() as usize; // inclusive
            let mut sum = 0.0;
            for k in lo..=hi {
                if k < bitmap.len() && bitmap[k] {
                    sum += 1.0;
                }
            }
            ((d_len as f64 / b_len) * sum) as f32
        })
        .collect()
}

fn one_hot_fold(slots: usize, indices: &[usize]) -> Vec<f32> {
    let mut v = vec![0.0f32; slots];
    for &i in indices {
        v[i % slots] = 1.0;
    }
    v
}

/// Log-compresses a non-negative magnitude into a small feature value.
pub fn squash(x: f64) -> f32 {
    (x.max(0.0) + 1.0).ln() as f32
}

/// Number of *dynamic* (per-event) trailing entries in an OPF vector:
/// O-WO, O-DUR, O-MEM. Everything before them is a function of the plan
/// alone and is memoized per query in [`PlanStatics`].
pub const OPF_DYN_DIM: usize = 3;

/// Extracts the static (plan-only) OPF prefix of operator `op`:
/// O-TY ‖ O-IN ‖ O-COLS ‖ O-BLCKS.
pub fn op_static_features(cfg: &FeatureConfig, plan: &PhysicalPlan, op: usize) -> Vec<f32> {
    let plan_op = &plan.ops[op];
    let mut v = Vec::with_capacity(cfg.opf_dim() - OPF_DYN_DIM);
    // O-TY: operator type one-hot.
    let mut ty = vec![0.0f32; OpKind::COUNT];
    ty[plan_op.kind.index()] = 1.0;
    v.extend(ty);
    // O-IN: input relations one-hot (base + transitive).
    v.extend(one_hot_fold(cfg.max_tables, &plan_op.input_tables));
    // O-COLS: used columns one-hot.
    v.extend(one_hot_fold(cfg.max_columns, &plan_op.columns_used));
    // O-BLCKS: Eq. 1 downsampled block bitmap.
    v.extend(downsample_blocks(&plan_op.block_bitmap, cfg.blocks_dim));
    v
}

/// Extracts the dynamic OPF tail of operator `op` in query `q`:
/// O-WO ‖ O-DUR ‖ O-MEM, recomputed at every scheduling event.
pub fn op_dynamic_features(q: &QueryRuntime, op: usize) -> [f32; OPF_DYN_DIM] {
    let rt = &q.ops[op];
    [
        // O-WO: remaining work orders.
        squash(rt.remaining_work_orders() as f64),
        // O-DUR: regression-estimated remaining duration.
        squash(rt.est_remaining_duration()),
        // O-MEM: regression-estimated remaining memory (MB scale).
        squash(rt.est_remaining_memory() / 1e6),
    ]
}

/// Extracts the full OPF vector of operator `op` in query `q`
/// (Section 4.1): the static prefix followed by the dynamic tail.
pub fn op_features(cfg: &FeatureConfig, q: &QueryRuntime, op: usize) -> Vec<f32> {
    let mut v = op_static_features(cfg, &q.plan, op);
    v.extend(op_dynamic_features(q, op));
    v
}

/// Extracts the EDF vector of a plan edge: E-NPB (1 = non-pipeline-
/// breaking) and E-DIR (pipeline direction; the producer/child is the
/// source, so a 1 marks child→parent flow on pipelined edges and 0
/// marks a blocked edge where no pipelining direction exists).
pub fn edge_features(edge: &PlanEdge) -> Vec<f32> {
    let npb = if edge.non_pipeline_breaking { 1.0 } else { 0.0 };
    vec![npb, npb]
}

/// Extracts the QF vector of query `q` given the current context
/// (Section 4.1): assigned threads, free threads, per-thread locality.
pub fn query_features(cfg: &FeatureConfig, ctx: &SchedContext<'_>, q: &QueryRuntime) -> Vec<f32> {
    let mut v = Vec::with_capacity(cfg.qf_dim());
    let total = ctx.total_threads.max(1) as f32;
    // Q-ATH.
    v.push(q.assigned_threads as f32 / total);
    // Q-FTH.
    v.push(ctx.free_threads as f32 / total);
    // Q-LOC: for each *available* thread, whether it ran this query.
    let mut loc = vec![0.0f32; cfg.max_threads];
    for &t in ctx.free_thread_ids {
        if q.executed_on.get(t).copied().unwrap_or(false) {
            loc[t % cfg.max_threads] = 1.0;
        }
    }
    v.extend(loc);
    v
}

/// Dimension of the concurrent-mix feature block shared by every
/// candidate scored for one admission decision.
pub const MIX_DIM: usize = 6;

/// Dimension of one admission candidate's full feature row: the
/// concurrent-mix block followed by the per-query block.
pub const ADMIT_DIM: usize = MIX_DIM + 6;

/// Extracts the concurrent-mix feature block from a context snapshot:
/// what the system as a whole looks like at this arrival. Every entry is
/// non-negative (so a ReLU identity layer passes it through unchanged)
/// and log-compressed where unbounded:
///
/// 0. queued — thread-less (waiting) query count
/// 1. running — query count holding at least one thread
/// 2. free fraction of the worker pool
/// 3. total undispatched work-order backlog
/// 4. aggregate estimated remaining work (TrailingRegressor-driven)
/// 5. memory pressure ([`SchedContext::mem_pressure`])
pub fn mix_features(ctx: &SchedContext<'_>) -> [f32; MIX_DIM] {
    let mut queued = 0u64;
    let mut running = 0u64;
    let mut backlog = 0u64;
    let mut agg_work = 0.0f64;
    for q in ctx.queries {
        if q.assigned_threads == 0 {
            queued += 1;
        } else {
            running += 1;
        }
        backlog += q.ops.iter().map(|o| u64::from(o.undispatched_work_orders())).sum::<u64>();
        agg_work += q.est_remaining_work();
    }
    [
        squash(queued as f64),
        squash(running as f64),
        ctx.free_threads as f32 / ctx.total_threads.max(1) as f32,
        squash(backlog as f64),
        squash(agg_work),
        ctx.mem_pressure() as f32,
    ]
}

/// Extracts one admission candidate's feature row: the shared `mix`
/// block followed by the per-query block (all non-negative):
///
/// 6. estimated remaining work of `q` ([`PlanStatics`]-era regression
///    estimates via `TrailingRegressor`)
/// 7. remaining work orders of `q`
/// 8. operator count of `q`'s plan
/// 9. priority deficit — `max(0, -priority)`, so low-priority queries
///    stand out as shed candidates while the default priority 0 is
///    neutral
/// 10. time spent waiting since arrival
/// 11. deadline urgency — `1/(1 + slack)`, 0 when no deadline is set
pub fn admission_features(
    ctx: &SchedContext<'_>,
    mix: &[f32; MIX_DIM],
    q: &QueryRuntime,
) -> [f32; ADMIT_DIM] {
    let urgency = match q.deadline {
        Some(d) => {
            let slack = (d - ctx.time).max(0.0);
            (1.0 / (1.0 + slack)) as f32
        }
        None => 0.0,
    };
    [
        mix[0],
        mix[1],
        mix[2],
        mix[3],
        mix[4],
        mix[5],
        squash(q.est_remaining_work()),
        squash(f64::from(q.ops.iter().map(|o| o.remaining_work_orders()).sum::<u32>())),
        squash(q.plan.num_ops() as f64),
        squash(f64::from((-q.priority).max(0))),
        squash((ctx.time - q.arrival_time).max(0.0)),
        urgency,
    ]
}

/// Dimension of the shard-local routing feature block the serving
/// router maintains per shard.
pub const ROUTE_DIM: usize = 5;

/// Deterministic, plan-only cost estimate used by the serving router's
/// load model: the optimizer's total estimated work for the whole plan.
/// A pure function of the plan (no clocks, no RNG), so routing stays
/// bit-reproducible.
pub fn plan_est_cost(plan: &PhysicalPlan) -> f64 {
    plan.total_estimated_work()
}

/// Extracts one shard's routing feature block from the router's local
/// load model — the serving-layer analogue of [`mix_features`], computed
/// *before* simulation from deterministic estimates rather than from a
/// live [`SchedContext`]. All entries are non-negative and
/// log-compressed where unbounded:
///
/// 0. backlog seconds — estimated work queued ahead on the shard
/// 1. queue depth — items routed to the shard and not yet estimated done
/// 2. estimated cost of the arriving item ([`plan_est_cost`])
/// 3. estimated memory pressure — in-flight estimate over the budget
/// 4. projected backlog after placing the item here
pub fn route_features(
    backlog_seconds: f64,
    queue_depth: u64,
    est_cost: f64,
    mem_estimate: f64,
    mem_budget: f64,
) -> [f32; ROUTE_DIM] {
    let pressure = if mem_budget.is_finite() && mem_budget > 0.0 {
        (mem_estimate / mem_budget).min(4.0) as f32
    } else {
        0.0
    };
    [
        squash(backlog_seconds),
        squash(queue_depth as f64),
        squash(est_cost),
        pressure,
        squash(backlog_seconds + est_cost),
    ]
}

/// The plan-derived, event-invariant part of a query's features: nothing
/// in here changes after the query is admitted, so it is computed once per
/// query and shared by every subsequent snapshot via [`SnapshotCache`].
#[derive(Debug, Clone)]
pub struct PlanStatics {
    /// Static OPF prefixes (O-TY ‖ O-IN ‖ O-COLS ‖ O-BLCKS), one per
    /// operator.
    pub opf_static: Vec<Vec<f32>>,
    /// EDF vectors, one per plan edge (fully static).
    pub edf: Vec<Vec<f32>>,
    /// Binary-tree structure for the tree convolution (O-CON).
    pub tree: TreeSpec,
    /// `(child, parent)` endpoints per edge, aligned with `edf`.
    pub edge_endpoints: Vec<(usize, usize)>,
    /// Longest non-pipeline-breaking chain rooted at each operator — the
    /// max pipeline degree of a decision rooted there.
    pub npb_chain: Vec<usize>,
}

/// Computes the event-invariant feature block of `plan`.
pub fn plan_statics(cfg: &FeatureConfig, plan: &PhysicalPlan) -> PlanStatics {
    let (tree, edge_endpoints) = tree_of(plan);
    PlanStatics {
        opf_static: (0..plan.num_ops()).map(|op| op_static_features(cfg, plan, op)).collect(),
        edf: plan.edges.iter().map(edge_features).collect(),
        tree,
        edge_endpoints,
        npb_chain: (0..plan.num_ops())
            .map(|o| plan.longest_npb_chain(lsched_engine::plan::OpId(o)))
            .collect(),
    }
}

/// The per-query slice of a [`SystemSnapshot`]: a shared handle to the
/// memoized static block plus the small per-event dynamic state.
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    /// The query's id.
    pub qid: QueryId,
    /// Event-invariant plan features, shared across snapshots.
    pub statics: Arc<PlanStatics>,
    /// Dynamic OPF tails (O-WO ‖ O-DUR ‖ O-MEM), one per operator.
    pub opf_dyn: Vec<[f32; OPF_DYN_DIM]>,
    /// QF vector.
    pub qf: Vec<f32>,
    /// Indices of currently schedulable operators (candidate roots).
    pub schedulable: Vec<usize>,
    /// Max pipeline degree per schedulable operator (aligned with
    /// `schedulable`).
    pub max_degree: Vec<usize>,
}

impl QuerySnapshot {
    /// Number of operators in the query's plan.
    pub fn num_ops(&self) -> usize {
        self.statics.opf_static.len()
    }

    /// The full OPF vector of operator `op` (static prefix ‖ dynamic tail).
    pub fn opf(&self, op: usize) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.statics.opf_static[op].len() + OPF_DYN_DIM);
        v.extend_from_slice(&self.statics.opf_static[op]);
        v.extend_from_slice(&self.opf_dyn[op]);
        v
    }

    /// Writes the full OPF vector of operator `op` into `out` without
    /// allocating (the inference hot path writes straight into the
    /// evaluator's arena). `out` must be exactly `opf_dim` long.
    pub fn opf_write(&self, op: usize, out: &mut [f32]) {
        let st = &self.statics.opf_static[op];
        let (head, tail) = out.split_at_mut(st.len());
        head.copy_from_slice(st);
        tail.copy_from_slice(&self.opf_dyn[op]);
    }

    /// EDF vectors, one per plan edge.
    pub fn edf(&self) -> &[Vec<f32>] {
        &self.statics.edf
    }

    /// The plan's tree-convolution structure.
    pub fn tree(&self) -> &TreeSpec {
        &self.statics.tree
    }

    /// `(child, parent)` endpoints per edge, aligned with [`Self::edf`].
    pub fn edge_endpoints(&self) -> &[(usize, usize)] {
        &self.statics.edge_endpoints
    }
}

/// A self-contained snapshot of the scheduling state at one event —
/// everything the encoder, predictor and REINFORCE trainer need, with no
/// references back into the engine (so episodes can be replayed for the
/// backward pass after the fact).
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    /// Engine clock at the event.
    pub time: f64,
    /// Worker-pool size.
    pub total_threads: usize,
    /// Idle threads.
    pub free_threads: usize,
    /// Active queries.
    pub queries: Vec<QuerySnapshot>,
}

impl SystemSnapshot {
    /// Flattened (query index, schedulable-list index) candidate pairs.
    pub fn candidates(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.candidates_into(&mut out);
        out
    }

    /// [`SystemSnapshot::candidates`] into a caller-owned vector (cleared
    /// first), so the inference hot path can reuse its capacity.
    pub fn candidates_into(&self, out: &mut Vec<(usize, usize)>) {
        out.clear();
        self.candidates_into_append(out);
    }

    /// [`SystemSnapshot::candidates_into`] without the clear: appends
    /// this snapshot's pairs, so the cross-event batch path can pack
    /// several events' candidate tables into one flat vector.
    pub fn candidates_into_append(&self, out: &mut Vec<(usize, usize)>) {
        for (qi, q) in self.queries.iter().enumerate() {
            for si in 0..q.schedulable.len() {
                out.push((qi, si));
            }
        }
    }
}

/// Builds the binary [`TreeSpec`] of a plan (its O-CON connectivity) and
/// the aligned edge-endpoint list.
pub fn tree_of(plan: &lsched_engine::plan::PhysicalPlan) -> (TreeSpec, Vec<(usize, usize)>) {
    let mut tree = TreeSpec::with_nodes(plan.num_ops());
    let mut endpoints = Vec::with_capacity(plan.edges.len());
    for (ei, e) in plan.edges.iter().enumerate() {
        tree.attach(e.parent.0, e.child.0, ei);
        endpoints.push((e.child.0, e.parent.0));
    }
    (tree, endpoints)
}

/// Builds one [`QuerySnapshot`] from a query runtime and its (shared or
/// freshly computed) static feature block.
fn query_snapshot_with(
    cfg: &FeatureConfig,
    ctx: &SchedContext<'_>,
    q: &QueryRuntime,
    statics: Arc<PlanStatics>,
) -> QuerySnapshot {
    let schedulable: Vec<usize> = q.schedulable_ops().iter().map(|o| o.0).collect();
    let max_degree = schedulable.iter().map(|&o| statics.npb_chain[o]).collect();
    QuerySnapshot {
        qid: q.qid,
        opf_dyn: (0..q.plan.num_ops()).map(|op| op_dynamic_features(q, op)).collect(),
        qf: query_features(cfg, ctx, q),
        statics,
        schedulable,
        max_degree,
    }
}

/// Captures a full [`SystemSnapshot`] from a scheduling context,
/// recomputing every feature from scratch (no memoization). This is the
/// reference path; [`snapshot_cached`] must produce identical output.
pub fn snapshot(cfg: &FeatureConfig, ctx: &SchedContext<'_>) -> SystemSnapshot {
    let queries = ctx
        .queries
        .iter()
        .map(|q| query_snapshot_with(cfg, ctx, q, Arc::new(plan_statics(cfg, &q.plan))))
        .collect();
    SystemSnapshot {
        time: ctx.time,
        total_threads: ctx.total_threads,
        free_threads: ctx.free_threads,
        queries,
    }
}

/// Memoizes [`PlanStatics`] per active query so each scheduling event
/// only recomputes the dynamic feature delta.
///
/// Entries are keyed by query id and guarded by the plan's `Arc` pointer:
/// query ids restart from zero in every simulation, so a stale entry
/// whose id was reused by a different plan instance is detected and
/// recomputed rather than served.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    entries: HashMap<u64, (usize, Arc<PlanStatics>)>,
    hits: u64,
    misses: u64,
}

impl SnapshotCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized static block for `q`, computing it on miss.
    pub fn statics_for(&mut self, cfg: &FeatureConfig, q: &QueryRuntime) -> Arc<PlanStatics> {
        let plan_ptr = Arc::as_ptr(&q.plan) as usize;
        match self.entries.get(&q.qid.0) {
            Some((ptr, statics)) if *ptr == plan_ptr => {
                self.hits += 1;
                Arc::clone(statics)
            }
            _ => {
                self.misses += 1;
                let statics = Arc::new(plan_statics(cfg, &q.plan));
                self.entries.insert(q.qid.0, (plan_ptr, Arc::clone(&statics)));
                statics
            }
        }
    }

    /// Drops the entry for a finished query, bounding the cache by the
    /// number of concurrently active queries.
    pub fn evict(&mut self, qid: QueryId) {
        self.entries.remove(&qid.0);
    }

    /// Clears all entries (e.g. when a scheduler is reset between runs).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (fresh computations).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Captures a full [`SystemSnapshot`], reusing memoized per-plan statics
/// from `cache`. Element-wise identical to [`snapshot`] (property-tested).
pub fn snapshot_cached(
    cfg: &FeatureConfig,
    ctx: &SchedContext<'_>,
    cache: &mut SnapshotCache,
) -> SystemSnapshot {
    let queries = ctx
        .queries
        .iter()
        .map(|q| {
            let statics = cache.statics_for(cfg, q);
            query_snapshot_with(cfg, ctx, q, statics)
        })
        .collect();
    SystemSnapshot {
        time: ctx.time,
        total_threads: ctx.total_threads,
        free_threads: ctx.free_threads,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::plan::{OpId, OpKind, OpSpec, PlanBuilder};
    use std::sync::Arc;

    #[test]
    fn eq1_worked_example() {
        // The paper's example: b = {1,1,0,1,1,0} downsized to 3 gives
        // {1, 1, 0.5}.
        let b = [true, true, false, true, true, false];
        assert_eq!(downsample_blocks(&b, 3), vec![1.0, 1.0, 0.5]);
    }

    #[test]
    fn eq1_empty_and_full() {
        assert_eq!(downsample_blocks(&[], 4), vec![0.0; 4]);
        let all = vec![true; 8];
        let d = downsample_blocks(&all, 4);
        // Inclusive windows overlap, so interior entries may exceed 1
        // slightly; mass should stay close to fully-touched.
        assert!(d.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn eq1_preserves_rough_mass() {
        let b: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let d = downsample_blocks(&b, 8);
        let mean = d.iter().sum::<f32>() / 8.0;
        assert!((mean - 0.5).abs() < 0.2, "mean {mean}");
    }

    fn demo_query() -> QueryRuntime {
        let mut b = PlanBuilder::new("f");
        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![2], vec![5, 9], 100.0, 4, 0.01, 2e6);
        let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![2], vec![5], 50.0, 4, 0.005, 1e6);
        b.connect(scan, sel, true);
        b.set_block_bitmap(scan, vec![true, true, false, false]);
        let plan = Arc::new(b.finish(sel));
        QueryRuntime::new(QueryId(0), plan, 0.0, 8)
    }

    #[test]
    fn opf_has_configured_dim_and_onehots() {
        let cfg = FeatureConfig::default();
        let q = demo_query();
        let v = op_features(&cfg, &q, 0);
        assert_eq!(v.len(), cfg.opf_dim());
        // O-TY: TableScan is index 0.
        assert_eq!(v[OpKind::TableScan.index()], 1.0);
        assert_eq!(v.iter().take(OpKind::COUNT).sum::<f32>(), 1.0);
        // O-IN: table 2 set.
        assert_eq!(v[OpKind::COUNT + 2], 1.0);
        // O-COLS: columns 5 and 9 set.
        let cols_base = OpKind::COUNT + cfg.max_tables;
        assert_eq!(v[cols_base + 5], 1.0);
        assert_eq!(v[cols_base + 9], 1.0);
    }

    #[test]
    fn opf_dynamic_features_shrink_with_progress() {
        let cfg = FeatureConfig::default();
        let mut q = demo_query();
        let before = op_features(&cfg, &q, 0);
        q.ops[0].dispatched_work_orders = 2;
        q.ops[0].observe_completion(&lsched_engine::stats::WorkOrderStats {
            duration: 0.01,
            memory: 1e6,
            output_rows: 5,
            completed_at: 0.1,
        });
        let after = op_features(&cfg, &q, 0);
        let d = cfg.opf_dim();
        // O-WO (third from the end) decreased.
        assert!(after[d - 3] < before[d - 3]);
    }

    #[test]
    fn edge_features_encode_npb() {
        let q = demo_query();
        let e = edge_features(&q.plan.edges[0]);
        assert_eq!(e, vec![1.0, 1.0]);
        let blocked = lsched_engine::plan::PlanEdge {
            child: OpId(0),
            parent: OpId(1),
            non_pipeline_breaking: false,
        };
        assert_eq!(edge_features(&blocked), vec![0.0, 0.0]);
    }

    #[test]
    fn snapshot_captures_structure() {
        let cfg = FeatureConfig::default();
        let q = demo_query();
        let queries = vec![q];
        let free = [0usize, 1, 2];
        let hot = lsched_engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 1.5,
            total_threads: 8,
            free_threads: 3,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let snap = snapshot(&cfg, &ctx);
        assert_eq!(snap.queries.len(), 1);
        let qs = &snap.queries[0];
        assert_eq!(qs.num_ops(), 2);
        assert_eq!(qs.edf().len(), 1);
        assert_eq!(qs.qf.len(), cfg.qf_dim());
        assert_eq!(qs.schedulable, vec![0]); // only the scan is schedulable
        assert_eq!(qs.max_degree, vec![2]);
        assert_eq!(snap.candidates(), vec![(0, 0)]);
        // QF: q-fth = 3/8.
        assert!((qs.qf[1] - 3.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn route_features_are_finite_and_monotone_in_backlog() {
        let lo = route_features(1.0, 2, 0.5, 1e6, 1e7);
        let hi = route_features(10.0, 2, 0.5, 1e6, 1e7);
        assert_eq!(lo.len(), ROUTE_DIM);
        assert!(lo.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(hi[0] > lo[0] && hi[4] > lo[4]);
        // An unbounded memory budget reads as zero pressure.
        assert_eq!(route_features(0.0, 0, 0.0, 1e9, f64::INFINITY)[3], 0.0);
        // plan_est_cost is the optimizer total: deterministic per plan.
        let q = demo_query();
        assert_eq!(plan_est_cost(&q.plan), q.plan.total_estimated_work());
    }

    #[test]
    fn split_opf_matches_monolithic_extraction() {
        let cfg = FeatureConfig::default();
        let q = demo_query();
        let statics = plan_statics(&cfg, &q.plan);
        for op in 0..q.plan.num_ops() {
            let mut assembled = statics.opf_static[op].clone();
            assembled.extend(op_dynamic_features(&q, op));
            assert_eq!(assembled, op_features(&cfg, &q, op));
        }
    }

    #[test]
    fn cached_snapshot_matches_fresh_and_counts_hits() {
        let cfg = FeatureConfig::default();
        let queries = vec![demo_query()];
        let free = [0usize, 1];
        let hot = lsched_engine::scheduler::QueryHot::from_queries(&queries);
        let ctx = SchedContext {
            time: 0.5,
            total_threads: 8,
            free_threads: 2,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let mut cache = SnapshotCache::new();
        let fresh = snapshot(&cfg, &ctx);
        let cached1 = snapshot_cached(&cfg, &ctx, &mut cache);
        let cached2 = snapshot_cached(&cfg, &ctx, &mut cache);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        for (a, b) in fresh.queries.iter().zip(&cached2.queries) {
            for op in 0..a.num_ops() {
                assert_eq!(a.opf(op), b.opf(op));
            }
            assert_eq!(a.edf(), b.edf());
            assert_eq!(a.qf, b.qf);
            assert_eq!(a.schedulable, b.schedulable);
            assert_eq!(a.max_degree, b.max_degree);
        }
        assert_eq!(cached1.queries[0].statics.npb_chain, fresh.queries[0].statics.npb_chain);
        // Eviction forces a recompute on the next lookup.
        cache.evict(QueryId(0));
        let _ = snapshot_cached(&cfg, &ctx, &mut cache);
        assert_eq!(cache.misses(), 2);
    }
}
