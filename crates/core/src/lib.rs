//! # lsched-core
//!
//! LSched — the fully learned, workload-aware query scheduler of the
//! paper (SIGMOD 2022). This crate contains the paper's primary
//! contribution:
//!
//! * [`features`] — the OPF/EDF/QF physical-plan features of Section 4.1,
//!   including the Eq. 1 block-bitmap downsampling;
//! * [`encoder`] — the Query Encoder of Figure 6 (tree convolution with
//!   edge support + graph attention; PQE and AQE summarizers);
//! * [`predictor`] — the Scheduling Predictor of Figure 7 (execution
//!   roots, pipeline degree, parallelism degree heads);
//! * [`agent`] — the scheduling agent that plugs into the engine's
//!   [`lsched_engine::Scheduler`] interface;
//! * [`rl`] and [`train`] — REINFORCE with the average+tail reward of
//!   Section 6 and time-indexed baselines;
//! * [`experience`] — the Experience Manager of Figure 2;
//! * [`online`] — online self-correction at checkpoints (Figure 2);
//! * [`transfer`] — transfer learning by interior-layer freezing;
//! * [`ablation`] — the Figure 15 variants.

#![warn(missing_docs)]

pub mod ablation;
pub mod admission;
pub mod agent;
pub mod encoder;
pub mod experience;
pub mod online;
pub mod features;
pub mod predictor;
pub mod rl;
pub mod train;
pub mod transfer;

pub use ablation::{config_for_variant, model_for_variant, LSchedVariant};
pub use admission::{PredictiveAdmission, PredictiveAdmissionConfig, PredictiveStats};
pub use agent::{
    BatchInferScratch, EpisodeStep, InferScratch, LSchedConfig, LSchedModel, LSchedScheduler,
};
pub use encoder::{EncoderConfig, EncoderKind, QueryEncoder};
pub use experience::{ExperienceManager, ExperienceSource, RewardExperience};
pub use online::{guarded_step, OnlineConfig, OnlineLSched, UpdateOutcome};
pub use features::{
    downsample_blocks, plan_est_cost, route_features, snapshot, FeatureConfig, SystemSnapshot,
    ROUTE_DIM,
};
pub use predictor::{
    DecisionMode, PickTrace, PredictorConfig, SchedulingPredictor, SnapshotList,
};
pub use rl::RewardConfig;
pub use train::{
    accumulate_rollout_gradients, accumulate_rollout_gradients_with, rollout_returns, train,
    train_with_checkpoints, train_with_validation, CheckpointPolicy, GradScratch,
    TrainCheckpoint, TrainConfig, TrainStats,
};
pub use transfer::{freeze_interior, transfer_from, unfreeze_all, TransferReport};
