//! The Experience Manager (Figure 2): a bounded store of reward
//! experiences from both training episodes and online execution, used to
//! monitor convergence and to self-correct the predictor at checkpoints.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Where an experience came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperienceSource {
    /// Offline training episode.
    Training,
    /// Online (production) execution feedback.
    Online,
}

/// One episode's reward experience.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewardExperience {
    /// Episode counter.
    pub episode: usize,
    /// Origin of the experience.
    pub source: ExperienceSource,
    /// Sum of per-decision rewards (Section 6's `r_d`).
    pub total_reward: f64,
    /// Number of scheduling decisions taken.
    pub decisions: usize,
    /// The episode's average query duration.
    pub avg_duration: f64,
    /// The episode's 90th-percentile query duration.
    pub p90_duration: f64,
}

/// A bounded FIFO store of experiences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperienceManager {
    capacity: usize,
    experiences: VecDeque<RewardExperience>,
    next_episode: usize,
}

impl ExperienceManager {
    /// Creates a manager keeping the last `capacity` experiences.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { capacity, experiences: VecDeque::with_capacity(capacity), next_episode: 0 }
    }

    /// Records an experience, assigning it the next episode number.
    pub fn record(
        &mut self,
        source: ExperienceSource,
        total_reward: f64,
        decisions: usize,
        avg_duration: f64,
        p90_duration: f64,
    ) -> usize {
        let episode = self.next_episode;
        self.next_episode += 1;
        if self.experiences.len() == self.capacity {
            self.experiences.pop_front();
        }
        self.experiences.push_back(RewardExperience {
            episode,
            source,
            total_reward,
            decisions,
            avg_duration,
            p90_duration,
        });
        episode
    }

    /// Number of stored experiences.
    pub fn len(&self) -> usize {
        self.experiences.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.experiences.is_empty()
    }

    /// Total episodes ever recorded (including evicted ones).
    pub fn episodes_recorded(&self) -> usize {
        self.next_episode
    }

    /// The most recent `n` experiences, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&RewardExperience> {
        let skip = self.experiences.len().saturating_sub(n);
        self.experiences.iter().skip(skip).collect()
    }

    /// Mean total reward over the most recent `n` experiences.
    pub fn mean_recent_reward(&self, n: usize) -> f64 {
        let r = self.recent(n);
        if r.is_empty() {
            return 0.0;
        }
        r.iter().map(|e| e.total_reward).sum::<f64>() / r.len() as f64
    }

    /// Mean average-duration over the most recent `n` experiences.
    pub fn mean_recent_duration(&self, n: usize) -> f64 {
        let r = self.recent(n);
        if r.is_empty() {
            return 0.0;
        }
        r.iter().map(|e| e.avg_duration).sum::<f64>() / r.len() as f64
    }

    /// Whether the reward has converged: the relative improvement of the
    /// last `window` episodes over the preceding `window` is below
    /// `threshold` (the "improvement procedure continues until the
    /// predictor converges" check of Section 1).
    pub fn converged(&self, window: usize, threshold: f64) -> bool {
        if self.experiences.len() < 2 * window {
            return false;
        }
        let all: Vec<f64> = self.experiences.iter().map(|e| e.total_reward).collect();
        let n = all.len();
        let older: f64 = all[n - 2 * window..n - window].iter().sum::<f64>() / window as f64;
        let newer: f64 = all[n - window..].iter().sum::<f64>() / window as f64;
        // Rewards are negative; improvement means newer > older.
        let improvement = newer - older;
        improvement.abs() <= threshold * older.abs().max(1e-9)
    }

    /// Serializes the store to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("experience serialization cannot fail")
    }

    /// Restores a store from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_evict() {
        let mut m = ExperienceManager::new(3);
        for i in 0..5 {
            m.record(ExperienceSource::Training, -(i as f64), 10, 1.0, 2.0);
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.episodes_recorded(), 5);
        let recent = m.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].episode, 4);
    }

    #[test]
    fn mean_recent_reward() {
        let mut m = ExperienceManager::new(10);
        m.record(ExperienceSource::Training, -10.0, 1, 1.0, 1.0);
        m.record(ExperienceSource::Online, -20.0, 1, 1.0, 1.0);
        assert_eq!(m.mean_recent_reward(2), -15.0);
        assert_eq!(m.mean_recent_reward(1), -20.0);
    }

    #[test]
    fn convergence_detection() {
        let mut m = ExperienceManager::new(100);
        // Steadily improving: not converged.
        for i in 0..20 {
            m.record(ExperienceSource::Training, -100.0 + i as f64 * 4.0, 1, 1.0, 1.0);
        }
        assert!(!m.converged(10, 0.05));
        // Flat: converged.
        let mut flat = ExperienceManager::new(100);
        for _ in 0..20 {
            flat.record(ExperienceSource::Training, -50.0, 1, 1.0, 1.0);
        }
        assert!(flat.converged(10, 0.05));
    }

    #[test]
    fn json_roundtrip() {
        let mut m = ExperienceManager::new(4);
        m.record(ExperienceSource::Training, -1.5, 3, 0.5, 0.9);
        let j = m.to_json();
        let m2 = ExperienceManager::from_json(&j).unwrap();
        assert_eq!(m2.len(), 1);
        assert_eq!(m2.recent(1)[0].total_reward, -1.5);
    }
}
