//! Online self-correction (Section 3): "In the online mode, the
//! completely executed scheduling decisions are also rewarded and used
//! for self-correcting the predictor either on a query-by-query basis or
//! at checkpoints (controlled by the user)."
//!
//! [`OnlineLSched`] wraps a trained model, keeps sampling decisions in
//! production, records every executed decision, and applies a small
//! REINFORCE update at each checkpoint (every `checkpoint_queries`
//! completed queries). Online updates have no second rollout to baseline
//! against, so the window's mean return serves as the baseline — a
//! deliberately conservative correction signal.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lsched_engine::scheduler::{
    PolicyHealth, QueryId, SchedContext, SchedDecision, SchedEvent, Scheduler,
};
use lsched_nn::{Adam, ParamStore};

use crate::agent::{LSchedModel, LSchedScheduler};
use crate::experience::{ExperienceManager, ExperienceSource};
use crate::rl::RewardConfig;
use crate::train::{
    accumulate_rollout_gradients_with, rollout_returns, GradScratch, TrainConfig,
};

/// Online-correction settings.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Apply a correction after this many completed queries
    /// (1 = query-by-query, larger = checkpoints).
    pub checkpoint_queries: usize,
    /// Learning rate of online updates (smaller than offline training).
    pub lr: f32,
    /// Max decisions replayed per correction.
    pub sample_cap: usize,
    /// Reward configuration.
    pub reward: RewardConfig,
    /// Gradient clipping norm.
    pub max_grad_norm: f32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            checkpoint_queries: 8,
            lr: 2e-4,
            sample_cap: 16,
            reward: RewardConfig::default(),
            max_grad_norm: 2.0,
        }
    }
}

/// What became of one guarded online update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The optimizer step was applied and the parameters stayed finite.
    Applied,
    /// The accumulated gradients were non-finite: the step was skipped
    /// entirely (gradients zeroed, parameters untouched).
    SkippedNonFiniteGrads,
    /// The step produced non-finite parameters: the pre-step checkpoint
    /// was restored and the optimizer state reset.
    RolledBack,
}

/// Applies `step` to the model under finite-guards: refuses non-finite
/// gradients up front, and rolls the parameters back to a pre-step
/// checkpoint if the step itself poisons them. Returns what happened so
/// the caller can reset optimizer state on a rollback.
pub fn guarded_step(
    model: &mut LSchedModel,
    step: impl FnOnce(&mut ParamStore),
) -> UpdateOutcome {
    if !model.store.grads_are_finite() {
        model.store.zero_grads();
        return UpdateOutcome::SkippedNonFiniteGrads;
    }
    // Copy-on-write checkpoint: one Arc refcount bump per parameter.
    // Tensor data is only duplicated for parameters the step actually
    // writes, and the snapshot is dropped for free on the happy path.
    let checkpoint = model.store.snapshot_values();
    step(&mut model.store);
    if !model.store.values_are_finite() {
        model.store.restore_values(&checkpoint);
        return UpdateOutcome::RolledBack;
    }
    UpdateOutcome::Applied
}

/// A production scheduler that keeps improving from its own executed
/// decisions.
pub struct OnlineLSched {
    inner: LSchedScheduler,
    cfg: OnlineConfig,
    opt: Adam,
    rng: StdRng,
    completed_since_checkpoint: usize,
    corrections: usize,
    skipped_updates: usize,
    rollbacks: usize,
    experience: ExperienceManager,
    /// Replay scratch reused across checkpoints, so steady-state online
    /// corrections run in recycled arena capacity.
    scratch: GradScratch,
}

impl OnlineLSched {
    /// Wraps a (typically pre-trained) model for online operation.
    pub fn new(model: LSchedModel, cfg: OnlineConfig, seed: u64) -> Self {
        Self {
            inner: LSchedScheduler::sampling(model, seed),
            opt: Adam::new(cfg.lr),
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x0411),
            completed_since_checkpoint: 0,
            corrections: 0,
            skipped_updates: 0,
            rollbacks: 0,
            experience: ExperienceManager::new(256),
            scratch: GradScratch::new(),
        }
    }

    /// Number of corrections applied so far.
    pub fn corrections(&self) -> usize {
        self.corrections
    }

    /// Updates skipped because the gradients were non-finite.
    pub fn skipped_updates(&self) -> usize {
        self.skipped_updates
    }

    /// Updates rolled back because the stepped parameters went
    /// non-finite.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// The accumulated online reward experiences.
    pub fn experience(&self) -> &ExperienceManager {
        &self.experience
    }

    /// Consumes the scheduler, returning the (self-corrected) model.
    pub fn into_model(self) -> LSchedModel {
        self.inner.finish().0
    }

    fn checkpoint(&mut self, now: f64) {
        // Harvest the window's recorded steps in place; the scheduler
        // (and the model behind it) stays alive, so no placeholder
        // scheduler or model rebuild is needed and every scratch arena
        // keeps its capacity across checkpoints.
        let steps = self.inner.take_steps();
        if steps.len() >= 2 {
            let returns = rollout_returns(&self.cfg.reward, &steps, now);
            let mean = returns.iter().sum::<f64>() / returns.len() as f64;
            let advantages: Vec<f64> = returns.iter().map(|g| g - mean).collect();
            let tcfg = TrainConfig {
                decision_sample_cap: self.cfg.sample_cap,
                reward: self.cfg.reward,
                ..Default::default()
            };
            let model = self
                .inner
                .model_mut()
                .expect("the online scheduler owns its model exclusively");
            model.store.zero_grads();
            accumulate_rollout_gradients_with(
                model,
                &steps,
                &advantages,
                &tcfg,
                &mut self.rng,
                &mut self.scratch,
            );
            model.store.clip_grad_norm(self.cfg.max_grad_norm);
            let opt = &mut self.opt;
            match guarded_step(model, |store| opt.step(store)) {
                UpdateOutcome::Applied => {
                    self.corrections += 1;
                    self.experience.record(
                        ExperienceSource::Online,
                        returns.first().copied().unwrap_or(0.0),
                        steps.len(),
                        0.0,
                        0.0,
                    );
                }
                UpdateOutcome::SkippedNonFiniteGrads => self.skipped_updates += 1,
                UpdateOutcome::RolledBack => {
                    // Poisoned optimizer moments would re-poison the next
                    // step; restart the optimizer alongside the params.
                    self.opt = Adam::new(self.cfg.lr);
                    self.rollbacks += 1;
                }
            }
        }
        let seed: u64 = rand::Rng::gen(&mut self.rng);
        self.inner.reseed(seed);
    }
}

impl Scheduler for OnlineLSched {
    fn name(&self) -> String {
        "lsched_online".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, ev: &SchedEvent) -> Vec<SchedDecision> {
        self.inner.on_event(ctx, ev)
    }

    fn on_query_finished(&mut self, time: f64, query: QueryId) {
        self.inner.on_query_finished(time, query);
        self.completed_since_checkpoint += 1;
        if self.completed_since_checkpoint >= self.cfg.checkpoint_queries {
            self.completed_since_checkpoint = 0;
            self.checkpoint(time);
        }
    }

    fn on_query_cancelled(&mut self, time: f64, query: QueryId) {
        // A cancelled query produces no completion reward; just let the
        // inner agent drop its cached state. It does not advance the
        // checkpoint counter.
        self.inner.on_query_cancelled(time, query);
    }

    fn health(&self) -> PolicyHealth {
        self.inner.health()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.completed_since_checkpoint = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::LSchedConfig;
    use crate::encoder::EncoderConfig;
    use crate::predictor::PredictorConfig;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    fn small_model() -> LSchedModel {
        LSchedModel::new(
            LSchedConfig {
                encoder: EncoderConfig {
                    hidden: 10,
                    edge_hidden: 4,
                    pqe_dim: 6,
                    aqe_dim: 6,
                    conv_layers: 2,
                    ..Default::default()
                },
                predictor: PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() },
            },
            9,
        )
    }

    #[test]
    fn online_mode_applies_corrections() {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 12, ArrivalPattern::Streaming { lambda: 60.0 }, 4);
        let cfg = OnlineConfig { checkpoint_queries: 4, ..Default::default() };
        let mut online = OnlineLSched::new(small_model(), cfg, 5);
        let before = online.inner.model().params_json();
        let res = simulate(SimConfig { num_threads: 8, ..Default::default() }, &wl, &mut online);
        assert_eq!(res.outcomes.len(), 12);
        assert!(online.corrections() >= 2, "expected checkpoints, got {}", online.corrections());
        assert!(!online.experience().is_empty());
        let model = online.into_model();
        assert_ne!(model.params_json(), before, "online corrections must move parameters");
    }

    #[test]
    fn guarded_step_skips_nonfinite_grads() {
        let mut model = small_model();
        let before = model.params_json();
        let id = model.store.iter_ids().next().map(|(i, _)| i).unwrap();
        let n = model.store.grad(id).len();
        model.store.accumulate_grad(id, &vec![f32::NAN; n]);
        let out = guarded_step(&mut model, |_| panic!("step must not run on poisoned grads"));
        assert_eq!(out, UpdateOutcome::SkippedNonFiniteGrads);
        assert_eq!(model.params_json(), before, "parameters must be untouched");
        assert!(model.store.grads_are_finite(), "poisoned grads must be flushed");
    }

    #[test]
    fn guarded_step_rolls_back_poisoned_params() {
        let mut model = small_model();
        let before = model.params_json();
        let out = guarded_step(&mut model, |store| {
            let id = store.iter_ids().next().map(|(i, _)| i).unwrap();
            store.value_mut(id).data_mut()[0] = f32::NAN;
        });
        assert_eq!(out, UpdateOutcome::RolledBack);
        assert!(model.store.values_are_finite());
        assert_eq!(model.params_json(), before, "rollback must restore the checkpoint");
    }

    #[test]
    fn guarded_step_applies_clean_updates() {
        let mut model = small_model();
        let before = model.params_json();
        let id = model.store.iter_ids().next().map(|(i, _)| i).unwrap();
        let n = model.store.grad(id).len();
        model.store.accumulate_grad(id, &vec![0.5; n]);
        let mut opt = Adam::new(1e-3);
        let out = guarded_step(&mut model, |store| opt.step(store));
        assert_eq!(out, UpdateOutcome::Applied);
        assert!(model.store.values_are_finite());
        assert_ne!(model.params_json(), before, "a clean step must move parameters");
    }

    #[test]
    fn query_by_query_mode() {
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 5);
        let cfg = OnlineConfig { checkpoint_queries: 1, ..Default::default() };
        let mut online = OnlineLSched::new(small_model(), cfg, 6);
        let res = simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut online);
        assert_eq!(res.outcomes.len(), 6);
        assert!(online.corrections() >= 3);
    }
}
