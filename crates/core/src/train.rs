//! The REINFORCE training loop (Section 6): episodes are simulated with
//! a sampling agent, every scheduling decision is rewarded with the
//! average+tail objective, and the policy gradient is accumulated by
//! replaying recorded decisions with their advantages.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use lsched_engine::scheduler::SchedDecision;
use lsched_engine::sim::{simulate, SimConfig};
use lsched_nn::{
    Adam, AdamState, Backend, CheckpointError, CheckpointManager, Graph, NodeId, RefTape,
    RefTapeBackend, TapeBackend,
};
use lsched_workloads::EpisodeSampler;

use crate::agent::{EpisodeStep, LSchedModel, LSchedScheduler};
use crate::encoder::EncodeScratch;
use crate::experience::{ExperienceManager, ExperienceSource};
use crate::features::SystemSnapshot;
use crate::predictor::{BatchPredictScratch, DecisionMode, EventOutcome, PickTrace, SnapshotList};
use crate::rl::{
    episode_rewards, latency_approximations, suffix_returns_in_place, RewardConfig,
};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Reward weighting (Section 6).
    pub reward: RewardConfig,
    /// Gradient clipping norm.
    pub max_grad_norm: f32,
    /// Max decisions replayed for the gradient per episode (a uniform
    /// subsample keeps per-episode cost bounded; gradients are rescaled
    /// to stay unbiased).
    pub decision_sample_cap: usize,
    /// Simulator configuration for episodes.
    pub sim: SimConfig,
    /// Baseline EMA momentum.
    pub baseline_momentum: f64,
    /// RNG seed.
    pub seed: u64,
    /// Exploration rollouts per sampled workload (the input-dependent
    /// baseline averages across them; 2 is Decima's setting).
    pub rollouts_per_episode: usize,
    /// Worker threads for collecting exploration rollouts (0 = all
    /// available cores). Rollouts are embarrassingly parallel against a
    /// frozen parameter snapshot and every rollout's RNG is seeded only
    /// by `(seed, episode, rollout index)`, so any thread count produces
    /// bit-identical training to a sequential run.
    pub rollout_threads: usize,
    /// Replay gradients on the retained per-node reference tape instead
    /// of the arena tape. The reference tape records the same replay
    /// structure decomposed op by op and is roughly an order of
    /// magnitude slower — it exists as the in-process oracle the fused
    /// arena backward is gated against bit for bit (see
    /// `tests/grad_equivalence.rs`), not as a production path.
    pub reference_tape: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            episodes: 50,
            lr: 1e-3,
            reward: RewardConfig::default(),
            max_grad_norm: 5.0,
            decision_sample_cap: 32,
            sim: SimConfig { num_threads: 16, ..Default::default() },
            baseline_momentum: 0.9,
            seed: 0,
            rollouts_per_episode: 2,
            rollout_threads: 0,
            reference_tape: false,
        }
    }
}

/// The deterministic per-rollout simulator seed: a pure function of the
/// training seed, the episode index and the rollout index (the paper's
/// `seed ⊕ episode ⊕ rollout` requirement). Because no shared RNG state
/// is consumed per rollout, parallel and sequential collection produce
/// identical streams.
pub fn rollout_seed(seed: u64, episode: usize, rollout: usize) -> u64 {
    seed.wrapping_add(episode as u64 * 7919 + rollout as u64 * 131)
}

/// Everything one exploration rollout produces, collected in rollout
/// order so downstream gradient accumulation is order-stable.
struct RolloutOutcome {
    steps: Vec<EpisodeStep>,
    returns: Vec<f64>,
    avg_duration: f64,
    p90_duration: f64,
    fallbacks: u64,
}

/// Per-episode training statistics.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// Average query duration achieved.
    pub avg_duration: f64,
    /// Sum of decision rewards.
    pub total_reward: f64,
    /// Decisions recorded.
    pub decisions: usize,
    /// Progress-guard fallbacks the simulator had to apply.
    pub fallbacks: u64,
}

/// Full training run statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// One entry per episode, in order.
    pub episodes: Vec<EpisodeStats>,
}

impl TrainStats {
    /// Mean avg-duration over the last `n` episodes.
    pub fn recent_avg_duration(&self, n: usize) -> f64 {
        let skip = self.episodes.len().saturating_sub(n);
        let slice = &self.episodes[skip..];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|e| e.avg_duration).sum::<f64>() / slice.len() as f64
    }

    /// Mean total reward over the last `n` episodes.
    pub fn recent_reward(&self, n: usize) -> f64 {
        let skip = self.episodes.len().saturating_sub(n);
        let slice = &self.episodes[skip..];
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|e| e.total_reward).sum::<f64>() / slice.len() as f64
    }
}

/// Per-decision returns of one recorded rollout.
pub fn rollout_returns(cfg: &RewardConfig, steps: &[EpisodeStep], makespan: f64) -> Vec<f64> {
    if steps.is_empty() {
        return Vec::new();
    }
    let times: Vec<f64> = steps.iter().map(|s| s.time).collect();
    let counts: Vec<usize> = steps.iter().map(|s| s.num_queries).collect();
    let h = latency_approximations(&times, &counts, makespan);
    let mut returns = episode_rewards(cfg, &h);
    suffix_returns_in_place(&mut returns);
    returns.truncate(steps.len());
    returns
}

/// Input-dependent baseline over a set of same-workload rollouts: the
/// mean return at each decision index across the rollouts that reach it.
/// Retained for reference/tests; prefer [`time_aligned_baseline`] —
/// index alignment is biased when rollouts take different numbers of
/// decisions (a policy that schedules more often is compared at index
/// `d` against a rollout that is further along in wall-clock time, so
/// the gradient systematically favours lazy scheduling).
pub fn cross_rollout_baseline(returns: &[Vec<f64>]) -> Vec<f64> {
    let max_len = returns.iter().map(Vec::len).max().unwrap_or(0);
    (0..max_len)
        .map(|d| {
            let vals: Vec<f64> =
                returns.iter().filter_map(|r| r.get(d)).copied().collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        })
        .collect()
}

/// The return-to-go of a rollout at wall-clock time `t`: the suffix
/// return of its first decision at or after `t` (0 past the end). The
/// rollout is given as time-ordered `(time, return)` pairs.
pub fn return_at(rollout: &[(f64, f64)], t: f64) -> f64 {
    match rollout.iter().find(|(td, _)| *td >= t) {
        Some((_, g)) => *g,
        None => 0.0,
    }
}

/// Decima's input-dependent baseline, aligned by *wall-clock time*: the
/// baseline for a decision taken at time `t` is the mean return-to-go of
/// all same-workload rollouts evaluated at time `t`. This is the
/// variance-reduction technique of Weaver & Tao that Section 6 cites,
/// and the alignment matters: comparing by decision index instead
/// systematically penalizes policies that make more (finer-grained)
/// decisions per unit time.
pub fn time_aligned_baseline(rollouts: &[Vec<(f64, f64)>], t: f64) -> f64 {
    if rollouts.is_empty() {
        return 0.0;
    }
    rollouts.iter().map(|r| return_at(r, t)).sum::<f64>() / rollouts.len() as f64
}

/// Every reusable buffer of the batched gradient replay: the arena tape
/// plus the encoder/predictor scratch vectors
/// [`accumulate_rollout_gradients_with`] records into. One `GradScratch`
/// lives across all rollouts and episodes of a training run, so after
/// warm-up each replay runs entirely in recycled capacity — the training
/// counterpart of the inference path's `InferScratch`.
#[derive(Default)]
pub struct GradScratch {
    g: Graph,
    encs: Vec<EncodeScratch<NodeId>>,
    pred: BatchPredictScratch<NodeId>,
    aqes: Vec<NodeId>,
    outcomes: Vec<EventOutcome<NodeId>>,
    decisions: Vec<SchedDecision>,
    picks: Vec<PickTrace>,
    loss_terms: Vec<NodeId>,
    order: Vec<usize>,
}

impl GradScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity of the tape's value arena in `f32` slots —
    /// stable once warmed up (diagnostics/benchmarks).
    pub fn arena_capacity(&self) -> usize {
        self.g.arena_capacity()
    }
}

/// Records the REINFORCE replay of the selected decisions as *one*
/// graph on `b` and returns the total loss node
/// `Σ_e −Â_e · log π(a_e | s_e)`.
///
/// All selected events' candidate root scores flow through a single
/// [`Backend::mlp_scores_batched`] segment table, so on the arena tape
/// the backward pass runs each head layer's gradient GEMM once across
/// the whole rollout instead of once per decision. Generic over the
/// backend: the production path instantiates it with the arena
/// [`TapeBackend`], the oracle with the decomposed [`RefTapeBackend`] —
/// identical replay structure, bit-identical gradients.
/// Indirect [`SnapshotList`] view over the replay's selected decisions:
/// event `e` is `steps[selected[e]].snapshot`. Handing this view to
/// [`SchedulingPredictor::decide_batch_on`] (instead of collecting a
/// `Vec<&SystemSnapshot>` per call) keeps the steady-state gradient step
/// free of heap allocations.
struct SelectedSnaps<'a> {
    steps: &'a [EpisodeStep],
    selected: &'a [usize],
}

impl SnapshotList for SelectedSnaps<'_> {
    fn len(&self) -> usize {
        self.selected.len()
    }
    fn get(&self, i: usize) -> &SystemSnapshot {
        &self.steps[self.selected[i]].snapshot
    }
}

#[allow(clippy::too_many_arguments)]
fn record_replay_loss<B: Backend>(
    b: &mut B,
    model: &LSchedModel,
    steps: &[EpisodeStep],
    selected: &[usize],
    advantages: &[f64],
    std: f64,
    scale: f64,
    encs: &mut Vec<EncodeScratch<B::Id>>,
    pred: &mut BatchPredictScratch<B::Id>,
    aqes: &mut Vec<B::Id>,
    outcomes: &mut Vec<EventOutcome<B::Id>>,
    decisions: &mut Vec<SchedDecision>,
    picks: &mut Vec<PickTrace>,
    loss_terms: &mut Vec<B::Id>,
) -> B::Id {
    let snaps = SelectedSnaps { steps, selected };
    while encs.len() < snaps.len() {
        encs.push(EncodeScratch::new());
    }
    aqes.clear();
    for (e, enc) in encs.iter_mut().enumerate().take(snaps.len()) {
        let snap = snaps.get(e);
        let aqe = if snap.queries.is_empty() {
            // Nothing to encode; the forced pick list is necessarily
            // empty too, so any valid handle stands in for the AQE.
            enc.clear();
            b.scalar(0.0)
        } else {
            model.encoder.encode_system_on(b, snap, enc)
        };
        aqes.push(aqe);
    }
    let forced = |e: usize| steps[selected[e]].picks.as_slice();
    model.predictor.decide_batch_on(
        b,
        &snaps,
        &encs[..snaps.len()],
        aqes,
        DecisionMode::Greedy,
        None,
        0, // pick budget unused: the forced traces bound every event
        Some(&forced),
        pred,
        decisions,
        picks,
        outcomes,
    );
    // REINFORCE loss per event: -A_e * log π(a_e | s_e), summed.
    loss_terms.clear();
    for (e, o) in outcomes.iter().enumerate() {
        let adv = (advantages[selected[e]] / std) * scale;
        loss_terms.push(b.scale(o.logprob, -(adv as f32)));
    }
    let cat = b.concat(loss_terms);
    b.sum_elems(cat)
}

/// Accumulates one rollout's REINFORCE gradients into the model's
/// parameter store (no optimizer step). Exposed for reuse by the Decima
/// baseline's trainer structure.
///
/// Convenience wrapper over [`accumulate_rollout_gradients_with`] that
/// pays for a fresh [`GradScratch`]; hot loops hold one scratch across
/// rollouts instead.
pub fn accumulate_rollout_gradients(
    model: &mut LSchedModel,
    steps: &[EpisodeStep],
    advantages: &[f64],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) {
    let mut scratch = GradScratch::new();
    accumulate_rollout_gradients_with(model, steps, advantages, cfg, rng, &mut scratch);
}

/// Accumulates one rollout's REINFORCE gradients into the model's
/// parameter store using caller-provided scratch (no optimizer step).
///
/// The sampled decisions replay as a single batched graph — one fused
/// gradient GEMM per head layer across the whole rollout, one backward
/// sweep — and the graph's parameter pins are released afterwards so
/// the optimizer step that follows updates tensors in place. With
/// [`TrainConfig::reference_tape`] the identical replay structure runs
/// on the retained reference tape instead (the bit-exactness oracle).
///
/// The only RNG consumption is the decision subsample shuffle, which is
/// shared by both tapes, so toggling `reference_tape` cannot shift the
/// training RNG stream.
pub fn accumulate_rollout_gradients_with(
    model: &mut LSchedModel,
    steps: &[EpisodeStep],
    advantages: &[f64],
    cfg: &TrainConfig,
    rng: &mut StdRng,
    scratch: &mut GradScratch,
) {
    if steps.is_empty() {
        return;
    }
    // Scale-normalize advantages for a stable gradient magnitude.
    let var = advantages.iter().map(|a| a * a).sum::<f64>() / advantages.len() as f64;
    let std = var.sqrt().max(1e-6);

    let GradScratch { g, encs, pred, aqes, outcomes, decisions, picks, loss_terms, order } =
        scratch;
    order.clear();
    order.extend(0..steps.len());
    order.shuffle(rng);
    let take = order.len().min(cfg.decision_sample_cap);
    let scale = order.len() as f64 / take as f64;
    let selected = &order[..take];

    if cfg.reference_tape {
        // Oracle path: same replay, decomposed recording on the
        // per-node-owned reference tape. Fresh buffers every call — the
        // oracle is a correctness gate, not a hot path.
        let mut tape = RefTape::new();
        let loss = {
            let m: &LSchedModel = model;
            let mut b = RefTapeBackend::new(&mut tape, &m.store);
            record_replay_loss(
                &mut b,
                m,
                steps,
                selected,
                advantages,
                std,
                scale,
                &mut Vec::new(),
                &mut BatchPredictScratch::new(),
                &mut Vec::new(),
                &mut Vec::new(),
                decisions,
                picks,
                &mut Vec::new(),
            )
        };
        tape.backward(loss, &mut model.store);
    } else {
        g.reset();
        let loss = {
            let m: &LSchedModel = model;
            let mut b = TapeBackend::new(g, &m.store);
            record_replay_loss(
                &mut b, m, steps, selected, advantages, std, scale, encs, pred, aqes, outcomes,
                decisions, picks, loss_terms,
            )
        };
        g.backward(loss, &mut model.store);
        // Unpin the parameter Arcs so the optimizer step that follows
        // updates every tensor in place instead of COW-cloning it.
        g.release_params();
    }
}

/// Trains `model` on episodes drawn from `sampler`, recording each
/// episode into `experience`. Returns the trained model and stats.
///
/// Each training episode samples one workload and runs
/// `rollouts_per_episode` exploration rollouts on it; the per-decision
/// baseline is the cross-rollout mean return (input-dependent baseline),
/// so the gradient reflects how a rollout's *decisions* compared against
/// the other rollouts of the *same* workload.
pub fn train(
    model: LSchedModel,
    sampler: &EpisodeSampler,
    cfg: &TrainConfig,
    experience: &mut ExperienceManager,
) -> (LSchedModel, TrainStats) {
    let rng = StdRng::seed_from_u64(cfg.seed);
    let opt = Adam::new(cfg.lr);
    match train_loop(model, sampler, cfg, experience, 0, opt, rng, &mut |_, _, _, _| Ok(())) {
        Ok(out) => out,
        // Invariant: the no-op episode callback above never fails, and
        // `train_loop` has no other error source.
        Err(e) => unreachable!("train without checkpointing cannot fail: {e}"),
    }
}

/// Serializable snapshot of the training loop at an episode boundary —
/// everything needed to resume bit-identically: parameters, optimizer
/// moments, and the training RNG stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Episodes fully completed when the snapshot was taken.
    pub episode: u64,
    /// Model parameters, as [`crate::agent::LSchedModel::params_json`].
    pub params_json: String,
    /// Full Adam state (step counter + both moments).
    pub adam: AdamState,
    /// xoshiro256++ state of the training RNG; 4 words, stored as a
    /// `Vec` because the vendored serde shim has no fixed-size arrays.
    pub rng_state: Vec<u64>,
}

/// Where and how often [`train_with_checkpoints`] persists its state.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory + retention window (keep-last-K) for the snapshots.
    pub manager: CheckpointManager,
    /// Save every this many completed episodes (minimum 1); the final
    /// episode is always saved regardless.
    pub every: usize,
}

/// Like [`train`], but crash-safe: resumes from the newest readable
/// checkpoint in `policy.manager` (falling back past corrupt
/// generations) and snapshots parameters, optimizer, and RNG at episode
/// boundaries. A run killed at any point and restarted produces
/// bit-identical final parameters to an uninterrupted run, because a
/// checkpoint captures the complete training state and episodes are the
/// only unit of progress. Returns the episode index training resumed
/// from (0 for a fresh run); `stats` covers only episodes run by this
/// call.
pub fn train_with_checkpoints(
    mut model: LSchedModel,
    sampler: &EpisodeSampler,
    cfg: &TrainConfig,
    experience: &mut ExperienceManager,
    policy: &CheckpointPolicy,
) -> Result<(LSchedModel, TrainStats, usize), CheckpointError> {
    let every = policy.every.max(1);
    let (start_ep, opt, rng) = match policy.manager.load_latest() {
        Ok((_, payload)) => {
            let text = String::from_utf8(payload)
                .map_err(|e| CheckpointError::Corrupt(format!("payload is not UTF-8: {e}")))?;
            let ckpt: TrainCheckpoint = serde_json::from_str(&text)
                .map_err(|e| CheckpointError::Corrupt(format!("payload does not parse: {e}")))?;
            let words: [u64; 4] = ckpt.rng_state.as_slice().try_into().map_err(|_| {
                CheckpointError::Corrupt(format!(
                    "RNG state has {} words, expected 4",
                    ckpt.rng_state.len()
                ))
            })?;
            model.load_params_json(&ckpt.params_json).map_err(|e| {
                CheckpointError::Corrupt(format!("parameters do not load: {e}"))
            })?;
            (ckpt.episode as usize, Adam::from_state(ckpt.adam), StdRng::from_state(words))
        }
        Err(CheckpointError::NoCheckpoint) => {
            (0, Adam::new(cfg.lr), StdRng::seed_from_u64(cfg.seed))
        }
        Err(e) => return Err(e),
    };
    let manager = &policy.manager;
    let total = cfg.episodes;
    let (model, stats) = train_loop(
        model,
        sampler,
        cfg,
        experience,
        start_ep,
        opt,
        rng,
        &mut |done, model, opt, rng| {
            if done % every == 0 || done == total {
                let ckpt = TrainCheckpoint {
                    episode: done as u64,
                    params_json: model.params_json(),
                    adam: opt.to_state(),
                    rng_state: rng.state().to_vec(),
                };
                let json = serde_json::to_string(&ckpt).map_err(|e| {
                    CheckpointError::Corrupt(format!("snapshot serialization failed: {e}"))
                })?;
                manager.save(done as u64, json.as_bytes())?;
            }
            Ok(())
        },
    )?;
    Ok((model, stats, start_ep))
}

/// Episode-boundary callback of [`train_loop`]: receives the number of
/// completed episodes and the live training state.
type EpisodeHook<'a> =
    &'a mut dyn FnMut(usize, &LSchedModel, &Adam, &StdRng) -> Result<(), CheckpointError>;

/// The episode loop shared by [`train`] and [`train_with_checkpoints`]:
/// runs episodes `start_ep..cfg.episodes`, invoking `after_episode` with
/// the number of *completed* episodes and the live training state after
/// each one.
#[allow(clippy::too_many_arguments)]
fn train_loop(
    mut model: LSchedModel,
    sampler: &EpisodeSampler,
    cfg: &TrainConfig,
    experience: &mut ExperienceManager,
    start_ep: usize,
    mut opt: Adam,
    mut rng: StdRng,
    after_episode: EpisodeHook<'_>,
) -> Result<(LSchedModel, TrainStats), CheckpointError> {
    let mut stats = TrainStats::default();
    let rollouts = cfg.rollouts_per_episode.max(1);
    // One replay scratch for the whole run: after the first episode the
    // arena tape and every bookkeeping vector replay rollouts in
    // recycled capacity.
    let mut grad_scratch = GradScratch::new();
    // Invariant: building a rayon pool only fails when the OS refuses to
    // spawn threads, which is unrecoverable for a training run anyway.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.rollout_threads)
        .build()
        .expect("OS must allow spawning the rollout thread pool");

    for ep in start_ep..cfg.episodes {
        let workload = sampler.sample(&mut rng);

        // Freeze the parameters for the episode and fan the exploration
        // rollouts out across the pool. Each rollout owns its scheduler
        // (RNG, step recording, encoding cache); only the parameter
        // snapshot is shared. Collection preserves rollout order and all
        // floating-point accumulation below stays sequential, so the
        // result is bit-identical at any thread count.
        let shared = Arc::new(model);
        let outcomes: Vec<RolloutOutcome> = pool.install(|| {
            (0..rollouts)
                .into_par_iter()
                .map(|r| {
                    let mut sim_cfg = cfg.sim.clone();
                    sim_cfg.seed = rollout_seed(cfg.seed, ep, r);
                    let mut sched =
                        LSchedScheduler::sampling_shared(Arc::clone(&shared), sim_cfg.seed ^ 0x5eed);
                    let res = simulate(sim_cfg, &workload, &mut sched);
                    let steps = sched.into_steps();
                    let returns = rollout_returns(&cfg.reward, &steps, res.makespan);
                    RolloutOutcome {
                        steps,
                        returns,
                        avg_duration: res.avg_duration(),
                        p90_duration: res.quantile_duration(0.9),
                        fallbacks: res.fallback_decisions,
                    }
                })
                .collect()
        });
        model = Arc::try_unwrap(shared).expect("rollout workers release the model snapshot");

        let mut all_steps: Vec<Vec<EpisodeStep>> = Vec::with_capacity(rollouts);
        let mut all_returns: Vec<Vec<f64>> = Vec::with_capacity(rollouts);
        let mut avg_dur = 0.0;
        let mut p90_dur = 0.0;
        let mut fallbacks = 0;
        for o in outcomes {
            all_returns.push(o.returns);
            all_steps.push(o.steps);
            avg_dur += o.avg_duration / rollouts as f64;
            p90_dur += o.p90_duration / rollouts as f64;
            fallbacks += o.fallbacks;
        }

        // Time-aligned return curves per rollout.
        let curves: Vec<Vec<(f64, f64)>> = all_steps
            .iter()
            .zip(&all_returns)
            .map(|(steps, returns)| {
                steps.iter().map(|s| s.time).zip(returns.iter().copied()).collect()
            })
            .collect();
        model.store.zero_grads();
        for (steps, returns) in all_steps.iter().zip(&all_returns) {
            let advantages: Vec<f64> = steps
                .iter()
                .zip(returns)
                .map(|(s, g)| g - time_aligned_baseline(&curves, s.time))
                .collect();
            accumulate_rollout_gradients_with(
                &mut model,
                steps,
                &advantages,
                cfg,
                &mut rng,
                &mut grad_scratch,
            );
        }
        model.store.clip_grad_norm(cfg.max_grad_norm);
        opt.step(&mut model.store);

        // Episode bookkeeping: the first rollout's reward (G_0 is the
        // sum of all decision rewards).
        let total_reward = all_returns.first().and_then(|r| r.first()).copied().unwrap_or(0.0);
        let decisions = all_steps.first().map_or(0, Vec::len);
        experience.record(
            ExperienceSource::Training,
            total_reward,
            decisions,
            avg_dur,
            p90_dur,
        );
        stats.episodes.push(EpisodeStats {
            episode: ep,
            avg_duration: avg_dur,
            total_reward,
            decisions,
            fallbacks,
        });
        after_episode(ep + 1, &model, &opt, &rng)?;
    }
    Ok((model, stats))
}

/// Trains with periodic validation-based checkpoint selection: every
/// `chunk` episodes the model is evaluated greedily on `val_workload`
/// and the best-scoring parameters are kept. This tames REINFORCE's
/// evaluation variance — the sampled policy improves noisily, and
/// committing to the last iterate rather than the best one routinely
/// discards the gains.
pub fn train_with_validation(
    mut model: LSchedModel,
    sampler: &EpisodeSampler,
    cfg: &TrainConfig,
    chunk: usize,
    val_workload: &[lsched_engine::sim::WorkloadItem],
    val_sim: &SimConfig,
    experience: &mut ExperienceManager,
) -> (LSchedModel, TrainStats, f64) {
    let chunk = chunk.max(1);
    let mut best_json = model.params_json();
    // Score the starting parameters too: selection can then never end
    // below the initial model on the validation workload.
    let mut best_score = {
        let mut probe = LSchedModel::new(model.cfg.clone(), 0);
        let _ = probe.load_params_json(&best_json);
        simulate(val_sim.clone(), val_workload, &mut LSchedScheduler::greedy(probe))
            .avg_duration()
    };
    let mut stats = TrainStats::default();
    let mut done = 0;
    while done < cfg.episodes {
        let n = chunk.min(cfg.episodes - done);
        let mut sub = cfg.clone();
        sub.episodes = n;
        sub.seed = cfg.seed.wrapping_add(done as u64 * 7717);
        let (m, s) = train(model, sampler, &sub, experience);
        model = m;
        for mut e in s.episodes {
            e.episode += done;
            stats.episodes.push(e);
        }
        done += n;

        let json = model.params_json();
        let mut probe = LSchedModel::new(model.cfg.clone(), 0);
        let _ = probe.load_params_json(&json);
        let score = simulate(
            val_sim.clone(),
            val_workload,
            &mut LSchedScheduler::greedy(probe),
        )
        .avg_duration();
        if score < best_score {
            best_score = score;
            best_json = json;
        }
    }
    let _ = model.load_params_json(&best_json);
    (model, stats, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::LSchedConfig;
    use crate::encoder::EncoderConfig;
    use crate::predictor::PredictorConfig;
    use lsched_workloads::tpch;
    use lsched_workloads::ArrivalPattern;

    fn tiny_model(seed: u64) -> LSchedModel {
        LSchedModel::new(
            LSchedConfig {
                encoder: EncoderConfig {
                    hidden: 10,
                    edge_hidden: 4,
                    pqe_dim: 6,
                    aqe_dim: 6,
                    conv_layers: 2,
                    ..Default::default()
                },
                predictor: PredictorConfig {
                    max_degree: 4,
                    max_threads: 16,
                    ..Default::default()
                },
            },
            seed,
        )
    }

    fn tiny_sampler() -> EpisodeSampler {
        EpisodeSampler {
            pool: tpch::plan_pool(&[0.3]),
            size_range: (4, 6),
            rate_range: (20.0, 60.0),
            batch_fraction: 0.5,
        }
    }

    #[test]
    fn training_runs_and_updates_params() {
        let model = tiny_model(1);
        let before = model.params_json();
        let cfg = TrainConfig {
            episodes: 3,
            sim: SimConfig { num_threads: 6, ..Default::default() },
            ..Default::default()
        };
        let mut exp = ExperienceManager::new(100);
        let (model, stats) = train(model, &tiny_sampler(), &cfg, &mut exp);
        assert_eq!(stats.episodes.len(), 3);
        assert_eq!(exp.len(), 3);
        assert!(stats.episodes.iter().all(|e| e.decisions > 0));
        assert_ne!(model.params_json(), before, "parameters should move");
    }

    #[test]
    fn training_improves_over_untrained_on_fixed_workload() {
        use lsched_workloads::gen_workload;
        // Small but real check: after training on a distribution, greedy
        // performance on a fixed workload from that distribution should
        // not be worse than the untrained model by much — and usually
        // better. We assert non-catastrophic behaviour (<= 1.5x) to keep
        // the test robust, and improvement in most seeds is verified in
        // the integration suite.
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 99);
        let sim = SimConfig { num_threads: 6, ..Default::default() };

        let untrained = tiny_model(2);
        let mut s0 = LSchedScheduler::greedy(untrained);
        let r0 = simulate(sim.clone(), &wl, &mut s0);

        let cfg = TrainConfig { episodes: 6, sim: sim.clone(), ..Default::default() };
        let mut exp = ExperienceManager::new(100);
        let (trained, _) = train(tiny_model(2), &tiny_sampler(), &cfg, &mut exp);
        let mut s1 = LSchedScheduler::greedy(trained);
        let r1 = simulate(sim, &wl, &mut s1);

        assert!(
            r1.avg_duration() <= r0.avg_duration() * 1.5,
            "trained {} vs untrained {}",
            r1.avg_duration(),
            r0.avg_duration()
        );
    }

    #[test]
    fn training_is_bit_identical_across_rollout_thread_counts() {
        // The tentpole invariant: rollout RNGs are seeded purely by
        // (seed, episode, rollout index) and gradient accumulation is
        // sequential in rollout order, so the thread count can only
        // change wall-clock time — never a single parameter bit.
        let run = |threads: usize| {
            let cfg = TrainConfig {
                episodes: 2,
                rollouts_per_episode: 4,
                rollout_threads: threads,
                sim: SimConfig { num_threads: 6, ..Default::default() },
                seed: 17,
                ..Default::default()
            };
            let mut exp = ExperienceManager::new(8);
            let (model, stats) = train(tiny_model(17), &tiny_sampler(), &cfg, &mut exp);
            (model.params_json(), format!("{stats:?}"))
        };
        let (p1, s1) = run(1);
        let (p2, s2) = run(2);
        let (p8, s8) = run(8);
        assert_eq!(p1, p2, "params must not depend on thread count");
        assert_eq!(p1, p8, "params must not depend on thread count");
        assert_eq!(s1, s2, "episode stats must not depend on thread count");
        assert_eq!(s1, s8, "episode stats must not depend on thread count");
    }

    #[test]
    fn rollout_seed_is_a_pure_function() {
        assert_eq!(rollout_seed(17, 3, 1), rollout_seed(17, 3, 1));
        // Distinct rollouts of an episode (and the same rollout of
        // adjacent episodes) get distinct simulator streams.
        let seeds: Vec<u64> =
            (0..4).flat_map(|ep| (0..4).map(move |r| rollout_seed(9, ep, r))).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "rollout seeds must not collide");
    }

    #[test]
    fn empty_rollout_is_a_no_op() {
        let mut model = tiny_model(3);
        let cfg = TrainConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rollout_returns(&cfg.reward, &[], 1.0).is_empty());
        accumulate_rollout_gradients(&mut model, &[], &[], &cfg, &mut rng);
        assert_eq!(model.store.grad_norm(), 0.0);
    }

    /// Records one sampled episode on a tiny workload and returns the
    /// model, its steps, and the (uncentered) per-decision returns.
    fn recorded_episode(seed: u64) -> (LSchedModel, Vec<EpisodeStep>, Vec<f64>) {
        use lsched_workloads::gen_workload;
        let pool = tpch::plan_pool(&[0.3]);
        let wl = gen_workload(&pool, 5, ArrivalPattern::Batch, 3);
        let sim = SimConfig { num_threads: 6, ..Default::default() };
        let mut sched = LSchedScheduler::sampling(tiny_model(seed), 7);
        let res = simulate(sim, &wl, &mut sched);
        let (model, steps) = sched.finish();
        assert!(!steps.is_empty());
        let returns = rollout_returns(&RewardConfig::default(), &steps, res.makespan);
        (model, steps, returns)
    }

    #[test]
    fn batched_replay_keeps_params_unpinned_for_in_place_updates() {
        // Satellite audit: after a rollout fan-out + gradient replay, no
        // stray Arc may still pin a parameter tensor, or the optimizer
        // step deep-clones every parameter (Arc::make_mut COW). Pointer
        // equality of the tensor buffers across the step proves the
        // update ran in place.
        let (mut model, steps, returns) = recorded_episode(5);
        let cfg = TrainConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = GradScratch::new();
        model.store.zero_grads();
        accumulate_rollout_gradients_with(
            &mut model, &steps, &returns, &cfg, &mut rng, &mut scratch,
        );
        assert!(model.store.grad_norm() > 0.0, "replay must produce gradients");
        let before: Vec<*const f32> = model
            .store
            .iter_ids()
            .map(|(id, _)| model.store.value(id).data().as_ptr())
            .collect();
        let mut opt = Adam::new(1e-3);
        opt.step(&mut model.store);
        let after: Vec<*const f32> = model
            .store
            .iter_ids()
            .map(|(id, _)| model.store.value(id).data().as_ptr())
            .collect();
        assert_eq!(before, after, "the step must update tensors in place, not COW-clone them");
    }

    #[test]
    fn replay_scratch_reaches_steady_state_capacity() {
        let (mut model, steps, returns) = recorded_episode(6);
        let cfg = TrainConfig::default();
        let mut scratch = GradScratch::new();
        let mut run = |scratch: &mut GradScratch, model: &mut LSchedModel| {
            let mut rng = StdRng::seed_from_u64(2);
            model.store.zero_grads();
            accumulate_rollout_gradients_with(model, &steps, &returns, &cfg, &mut rng, scratch);
        };
        run(&mut scratch, &mut model);
        let warm = scratch.arena_capacity();
        assert!(warm > 0);
        for _ in 0..3 {
            run(&mut scratch, &mut model);
        }
        assert_eq!(
            scratch.arena_capacity(),
            warm,
            "steady-state replays must reuse the warmed arena"
        );
    }

    #[test]
    fn cross_rollout_baseline_handles_uneven_lengths() {
        let b = cross_rollout_baseline(&[vec![4.0, 2.0], vec![2.0]]);
        assert_eq!(b, vec![3.0, 2.0]);
        assert!(cross_rollout_baseline(&[]).is_empty());
    }
}
