//! The oracle gate of the arena training tape (PR9): the fused backward
//! path (arena tape + fused layer backward + batched gradient GEMMs)
//! must produce *bit-identical* gradients, Adam states, and training
//! trajectories to the retained per-node reference tape, which records
//! the same replay decomposed op by op.
//!
//! The full-model replay exercises every component the satellite lists:
//! the tree-convolution encoder, the GAT term weighting, the MLP heads,
//! and the softmax/log-softmax decision layers all sit on the replayed
//! graph, so a single parameter-store comparison covers them all.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lsched_core::{
    accumulate_rollout_gradients_with, guarded_step, rollout_returns, EncoderConfig,
    EncoderKind, EpisodeStep, GradScratch, LSchedConfig, LSchedModel, LSchedScheduler,
    PredictorConfig, RewardConfig, TrainConfig, UpdateOutcome,
};
use lsched_engine::sim::{simulate, SimConfig};
use lsched_nn::Adam;
use lsched_workloads::workload::{gen_workload, ArrivalPattern};
use lsched_workloads::tpch;

fn model(seed: u64, hidden: usize, conv_layers: usize) -> LSchedModel {
    LSchedModel::new(
        LSchedConfig {
            encoder: EncoderConfig {
                hidden,
                edge_hidden: 4,
                pqe_dim: 6,
                aqe_dim: 6,
                conv_layers,
                // TCN+GAT explicitly: the equivalence claim must cover
                // the tree-conv and attention backward paths.
                kind: EncoderKind::TcnGat,
                ..Default::default()
            },
            predictor: PredictorConfig { max_degree: 4, max_threads: 16, ..Default::default() },
        },
        seed,
    )
}

/// Runs one sampled episode and returns its recorded steps plus the
/// (mean-centered) per-decision advantages.
fn record_episode(
    m: LSchedModel,
    wl_seed: u64,
    n_queries: usize,
) -> (LSchedModel, Vec<EpisodeStep>, Vec<f64>) {
    let pool = tpch::plan_pool(&[0.3]);
    let wl = gen_workload(&pool, n_queries, ArrivalPattern::Batch, wl_seed);
    let mut sched = LSchedScheduler::sampling(m, wl_seed ^ 0x5eed);
    let res = simulate(SimConfig { num_threads: 6, ..Default::default() }, &wl, &mut sched);
    let (m, steps) = sched.finish();
    let returns = rollout_returns(&RewardConfig::default(), &steps, res.makespan);
    let mean = returns.iter().sum::<f64>() / returns.len().max(1) as f64;
    let advantages: Vec<f64> = returns.iter().map(|g| g - mean).collect();
    (m, steps, advantages)
}

/// Accumulates one replay's gradients and returns them as raw bits per
/// parameter (name-keyed so mismatches point at the offending tensor).
fn replay_grad_bits(
    m: &mut LSchedModel,
    steps: &[EpisodeStep],
    advantages: &[f64],
    reference_tape: bool,
    rng_seed: u64,
) -> Vec<(String, Vec<u32>)> {
    let cfg = TrainConfig { reference_tape, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut scratch = GradScratch::new();
    m.store.zero_grads();
    accumulate_rollout_gradients_with(m, steps, advantages, &cfg, &mut rng, &mut scratch);
    let names: Vec<(lsched_nn::ParamId, String)> =
        m.store.iter_ids().map(|(id, n)| (id, n.to_string())).collect();
    names
        .into_iter()
        .map(|(id, n)| (n, m.store.grad(id).iter().map(|g| g.to_bits()).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    /// Fused arena backward vs decomposed reference tape, end to end
    /// through the full model: every gradient bit must match.
    #[test]
    fn fused_and_reference_gradients_are_bit_identical(
        model_seed in 0u64..500,
        wl_seed in 0u64..500,
        hidden in 8usize..12,
        conv_layers in 1usize..3,
        n_queries in 4usize..7,
    ) {
        let (mut fused, steps, advantages) =
            record_episode(model(model_seed, hidden, conv_layers), wl_seed, n_queries);
        prop_assert!(!steps.is_empty(), "a batch workload must record decisions");
        let mut oracle = model(model_seed, hidden, conv_layers);

        let a = replay_grad_bits(&mut fused, &steps, &advantages, false, 11);
        let b = replay_grad_bits(&mut oracle, &steps, &advantages, true, 11);
        prop_assert_eq!(a.len(), b.len());
        for ((na, ga), (nb, gb)) in a.iter().zip(&b) {
            prop_assert_eq!(na, nb);
            prop_assert_eq!(ga, gb, "gradient mismatch in {}", na);
        }
    }
}

/// Several optimizer steps through both tapes: parameters *and* the full
/// Adam state (step counter + both moments) must stay bit-identical.
#[test]
fn adam_states_stay_bit_identical_across_steps() {
    let run = |reference_tape: bool| {
        let (mut m, steps, advantages) = record_episode(model(7, 10, 2), 3, 5);
        assert!(!steps.is_empty());
        let cfg = TrainConfig { reference_tape, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = GradScratch::new();
        let mut opt = Adam::new(1e-3);
        for _ in 0..3 {
            m.store.zero_grads();
            accumulate_rollout_gradients_with(
                &mut m, &steps, &advantages, &cfg, &mut rng, &mut scratch,
            );
            m.store.clip_grad_norm(cfg.max_grad_norm);
            opt.step(&mut m.store);
        }
        (m.params_json(), opt.to_state())
    };
    let (params_fused, adam_fused) = run(false);
    let (params_ref, adam_ref) = run(true);
    assert_eq!(params_fused, params_ref, "parameters must match bit for bit");
    assert_eq!(adam_fused, adam_ref, "Adam state must match bit for bit");
}

/// The whole training loop, fused vs oracle: identical parameters and
/// identical episode statistics. Rollout simulation runs on the
/// (tape-free) inference path either way, and the replay consumes no
/// RNG beyond the shared subsample shuffle, so toggling the tape cannot
/// shift a single bit of the trajectory.
#[test]
fn training_trajectories_are_bit_identical_across_tapes() {
    let run = |reference_tape: bool| {
        let cfg = TrainConfig {
            episodes: 2,
            rollouts_per_episode: 2,
            sim: SimConfig { num_threads: 6, ..Default::default() },
            seed: 17,
            reference_tape,
            ..Default::default()
        };
        let sampler = lsched_workloads::EpisodeSampler {
            pool: tpch::plan_pool(&[0.3]),
            size_range: (4, 6),
            rate_range: (20.0, 60.0),
            batch_fraction: 0.5,
        };
        let mut exp = lsched_core::ExperienceManager::new(8);
        let (m, stats) = lsched_core::train(model(17, 10, 2), &sampler, &cfg, &mut exp);
        (m.params_json(), format!("{stats:?}"))
    };
    let (params_fused, stats_fused) = run(false);
    let (params_ref, stats_ref) = run(true);
    assert_eq!(params_fused, params_ref, "trained parameters must not depend on the tape");
    assert_eq!(stats_fused, stats_ref, "episode stats must not depend on the tape");
}

/// `guarded_step` over gradients produced by the fused replay: a clean
/// step applies, and a step that poisons the parameters rolls back to a
/// bit-identical pre-step checkpoint (PR2's guard semantics).
#[test]
fn guarded_step_applies_and_rolls_back_over_fused_gradients() {
    let (mut m, steps, advantages) = record_episode(model(9, 10, 2), 5, 5);
    assert!(!steps.is_empty());
    let cfg = TrainConfig::default();
    let mut rng = StdRng::seed_from_u64(31);
    let mut scratch = GradScratch::new();

    // Clean step: applies and moves parameters.
    m.store.zero_grads();
    accumulate_rollout_gradients_with(&mut m, &steps, &advantages, &cfg, &mut rng, &mut scratch);
    m.store.clip_grad_norm(cfg.max_grad_norm);
    let before = m.params_json();
    let mut opt = Adam::new(1e-3);
    let out = guarded_step(&mut m, |store| opt.step(store));
    assert_eq!(out, UpdateOutcome::Applied);
    assert_ne!(m.params_json(), before, "a clean step must move parameters");

    // NaN-poisoning step: rolls back to the exact pre-step bits.
    m.store.zero_grads();
    accumulate_rollout_gradients_with(&mut m, &steps, &advantages, &cfg, &mut rng, &mut scratch);
    let checkpoint = m.params_json();
    let out = guarded_step(&mut m, |store| {
        let id = store.iter_ids().next().map(|(i, _)| i).unwrap();
        store.value_mut(id).data_mut()[0] = f32::NAN;
    });
    assert_eq!(out, UpdateOutcome::RolledBack);
    assert_eq!(m.params_json(), checkpoint, "rollback must restore the checkpoint bitwise");
    assert!(m.store.values_are_finite());

    // NaN-poisoned gradients: skipped entirely, parameters untouched
    // (the snapshot predates the poisoning — the guard flushes grads).
    m.store.zero_grads();
    let before = m.params_json();
    let id = m.store.iter_ids().next().map(|(i, _)| i).unwrap();
    let n = m.store.grad(id).len();
    m.store.accumulate_grad(id, &vec![f32::NAN; n]);
    let out = guarded_step(&mut m, |_| panic!("step must not run on poisoned grads"));
    assert_eq!(out, UpdateOutcome::SkippedNonFiniteGrads);
    assert!(m.store.grads_are_finite(), "poisoned grads must be flushed");
    assert_eq!(m.params_json(), before);
}
