//! Property test for the incremental encoding split: across randomized
//! event sequences (query admissions, work-order completions, worker
//! pool resizes, query retirements — with and without cache eviction,
//! including query-id reuse), [`snapshot_cached`] must produce snapshots
//! element-wise identical to the from-scratch [`snapshot`] reference.

use std::sync::Arc;

use lsched_core::features::{snapshot, snapshot_cached, FeatureConfig, SnapshotCache};
use lsched_engine::scheduler::{QueryHot, QueryId, QueryRuntime, SchedContext};
use lsched_engine::stats::WorkOrderStats;
use lsched_workloads::tpch;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of simulated runtime churn against the active query set.
fn apply_random_event(
    rng: &mut StdRng,
    queries: &mut Vec<QueryRuntime>,
    retired: &mut Vec<u64>,
    next_qid: &mut u64,
    total_threads: &mut usize,
    cache: &mut SnapshotCache,
    pool: &[Arc<lsched_engine::plan::PhysicalPlan>],
) {
    match rng.gen_range(0u32..10) {
        // Admission; occasionally reuses a retired query id with a
        // (generally different) plan, exercising the cache's stale-entry
        // pointer guard.
        0..=3 => {
            let qid = if !retired.is_empty() && rng.gen_range(0u32..3) == 0 {
                retired.remove(rng.gen_range(0..retired.len()))
            } else {
                *next_qid += 1;
                *next_qid
            };
            let plan = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
            queries.push(QueryRuntime::new(QueryId(qid), plan, 0.0, *total_threads));
        }
        // Work-order completion on a random in-flight operator.
        4..=7 => {
            if queries.is_empty() {
                return;
            }
            let qi = rng.gen_range(0..queries.len());
            let q = &mut queries[qi];
            let candidates: Vec<usize> = (0..q.ops.len())
                .filter(|&o| q.ops[o].remaining_work_orders() > 0)
                .collect();
            if candidates.is_empty() {
                return;
            }
            let op = candidates[rng.gen_range(0..candidates.len())];
            q.ops[op].dispatched_work_orders += 1;
            q.ops[op].observe_completion(&WorkOrderStats {
                duration: rng.gen_range(0.001f64..0.5),
                memory: rng.gen_range(1e3f64..1e6),
                output_rows: 100,
                completed_at: 0.0,
            });
            q.refresh_statuses();
        }
        // Worker-pool resize.
        8 => {
            *total_threads = rng.gen_range(2usize..33);
        }
        // Retirement. Half the time the cache entry is left in place
        // (as if the policy missed the finish notification) — the
        // pointer guard must still keep later snapshots correct.
        _ => {
            if queries.is_empty() {
                return;
            }
            let qi = rng.gen_range(0..queries.len());
            let q = queries.remove(qi);
            retired.push(q.qid.0);
            if rng.gen_range(0u32..2) == 0 {
                cache.evict(q.qid);
            }
        }
    }
}

fn assert_snapshots_identical(
    a: &lsched_core::features::SystemSnapshot,
    b: &lsched_core::features::SystemSnapshot,
) -> Result<(), String> {
    if a.time != b.time
        || a.total_threads != b.total_threads
        || a.free_threads != b.free_threads
        || a.queries.len() != b.queries.len()
    {
        return Err("global snapshot fields diverged".into());
    }
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        if qa.qid != qb.qid {
            return Err(format!("qid diverged: {:?} vs {:?}", qa.qid, qb.qid));
        }
        if qa.qf != qb.qf {
            return Err(format!("qf diverged for {:?}", qa.qid));
        }
        if qa.schedulable != qb.schedulable || qa.max_degree != qb.max_degree {
            return Err(format!("candidate sets diverged for {:?}", qa.qid));
        }
        if qa.num_ops() != qb.num_ops() {
            return Err(format!("op count diverged for {:?}", qa.qid));
        }
        for op in 0..qa.num_ops() {
            if qa.opf(op) != qb.opf(op) {
                return Err(format!("OPF diverged for {:?} op {op}", qa.qid));
            }
        }
        if qa.edf() != qb.edf() {
            return Err(format!("EDF diverged for {:?}", qa.qid));
        }
        if qa.edge_endpoints() != qb.edge_endpoints() {
            return Err(format!("edge endpoints diverged for {:?}", qa.qid));
        }
        if qa.tree().children != qb.tree().children {
            return Err(format!("tree structure diverged for {:?}", qa.qid));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Cached snapshots equal from-scratch re-encodes at every event of
    /// a random admission/completion/resize/retirement sequence.
    #[test]
    fn cached_snapshot_equals_fresh_across_event_sequences(
        seed in 0u64..10_000,
        steps in 1usize..40,
    ) {
        let fcfg = FeatureConfig::default();
        let pool = tpch::plan_pool(&[0.3]);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = SnapshotCache::new();
        let mut queries: Vec<QueryRuntime> = Vec::new();
        let mut retired: Vec<u64> = Vec::new();
        let mut next_qid = 0u64;
        let mut total_threads = 8usize;

        for step in 0..steps {
            apply_random_event(
                &mut rng,
                &mut queries,
                &mut retired,
                &mut next_qid,
                &mut total_threads,
                &mut cache,
                &pool,
            );
            let busy: usize = queries.iter().map(|q| q.assigned_threads).sum();
            let free: Vec<usize> = (busy.min(total_threads)..total_threads).collect();
            let hot = QueryHot::from_queries(&queries);
            let ctx = SchedContext {
                time: step as f64 * 0.25,
                total_threads,
                free_threads: free.len(),
                free_thread_ids: &free,
                queries: &queries,
                hot: &hot,
                in_flight_mem: 0.0,
                mem_budget: f64::INFINITY,
            };
            let cached = snapshot_cached(&fcfg, &ctx, &mut cache);
            let fresh = snapshot(&fcfg, &ctx);
            if let Err(e) = assert_snapshots_identical(&cached, &fresh) {
                prop_assert!(false, "step {}: {}", step, e);
            }
        }
        // The cache must actually be caching: with any admissions at all,
        // repeated events over live queries produce hits.
        prop_assert!(cache.misses() > 0 || queries.is_empty());
    }
}
