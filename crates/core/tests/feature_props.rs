//! Property tests for LSched's feature extraction and reward machinery.

use lsched_core::downsample_blocks;
use lsched_core::rl::{
    episode_rewards, latency_approximations, percentile, reward, suffix_returns, RewardConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Eq. 1 downsampling is bounded, preserves emptiness/fullness, and
    /// keeps roughly the bitmap's mass.
    #[test]
    fn downsampling_bounded_and_mass_preserving(
        bitmap in prop::collection::vec(any::<bool>(), 1..200),
        d_len in 1usize..16,
    ) {
        let d = downsample_blocks(&bitmap, d_len);
        prop_assert_eq!(d.len(), d_len);
        // The inclusive windows overlap and, when upsampling, a window
        // can straddle two set elements: entries are bounded by
        // 1 + 2·|d|/|b|.
        let slack = 1.0 + 2.0 * d_len as f32 / bitmap.len() as f32;
        prop_assert!(d.iter().all(|&v| (0.0..=slack + 1e-5).contains(&v)));
        if bitmap.iter().all(|&b| !b) {
            prop_assert!(d.iter().all(|&v| v == 0.0));
        }
        if bitmap.iter().all(|&b| b) {
            prop_assert!(d.iter().all(|&v| v >= 1.0 - 1e-6));
        }
        // Mass: the mean downsampled value tracks the true fill fraction
        // within the overlap slack.
        let fill = bitmap.iter().filter(|&&b| b).count() as f32 / bitmap.len() as f32;
        let mean = d.iter().sum::<f32>() / d_len as f32;
        prop_assert!((mean - fill).abs() <= 0.5 + d_len as f32 / bitmap.len() as f32);
    }

    /// H_d values are non-negative and scale linearly with query count.
    #[test]
    fn latency_approximations_nonnegative_and_linear(
        mut times in prop::collection::vec(0.0f64..100.0, 1..20),
        counts in prop::collection::vec(1usize..50, 1..20),
    ) {
        times.sort_by(f64::total_cmp);
        let n = times.len().min(counts.len());
        let times = &times[..n];
        let counts = &counts[..n];
        let makespan = times.last().unwrap() + 1.0;
        let h = latency_approximations(times, counts, makespan);
        prop_assert_eq!(h.len(), n + 1);
        prop_assert!(h.iter().all(|&v| v >= 0.0));
        // Doubling every count doubles every H.
        let doubled: Vec<usize> = counts.iter().map(|c| c * 2).collect();
        let h2 = latency_approximations(times, &doubled, makespan);
        for (a, b) in h.iter().zip(&h2) {
            prop_assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    /// The combined reward interpolates between its average-only and
    /// tail-only components and decreases in H.
    #[test]
    fn reward_monotone_and_bounded(
        h in 0.0f64..1000.0,
        p in 0.0f64..1000.0,
        w_avg in 0.01f64..10.0,
        w_tail in 0.01f64..10.0,
    ) {
        let cfg = RewardConfig { w_avg, w_tail, tail_percentile: 0.9 };
        let r = reward(&cfg, h, p);
        let avg_only = -h;
        let tail_only = -(h - p);
        prop_assert!(r >= avg_only.min(tail_only) - 1e-9);
        prop_assert!(r <= avg_only.max(tail_only) + 1e-9);
        // Larger H → smaller reward.
        let worse = reward(&cfg, h + 1.0, p);
        prop_assert!(worse < r);
    }

    /// Suffix returns telescope: G_d − G_{d+1} = r_d.
    #[test]
    fn suffix_returns_telescope(rs in prop::collection::vec(-100.0f64..100.0, 1..30)) {
        let g = suffix_returns(&rs);
        for d in 0..rs.len() - 1 {
            prop_assert!((g[d] - g[d + 1] - rs[d]).abs() < 1e-9);
        }
        prop_assert!((g[rs.len() - 1] - rs[rs.len() - 1]).abs() < 1e-9);
    }

    /// The percentile is an element of the sample and at least the
    /// median share of values sit below the 90th percentile.
    #[test]
    fn percentile_is_order_statistic(values in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let p90 = percentile(&values, 0.9);
        prop_assert!(values.contains(&p90));
        let below = values.iter().filter(|&&v| v <= p90).count();
        prop_assert!(below as f64 >= values.len() as f64 * 0.5);
    }

    /// Episode rewards against their own p90: entries below the tail
    /// threshold receive a reward bonus relative to average-only.
    #[test]
    fn tail_term_rewards_below_percentile(h in prop::collection::vec(0.1f64..100.0, 3..30)) {
        let combined_cfg = RewardConfig::default();
        let avg_cfg = RewardConfig { w_avg: 1.0, w_tail: 0.0, tail_percentile: 0.9 };
        let combined = episode_rewards(&combined_cfg, &h);
        let avg_only = episode_rewards(&avg_cfg, &h);
        let p = percentile(&h, 0.9);
        for ((&hd, c), a) in h.iter().zip(&combined).zip(&avg_only) {
            if hd < p {
                prop_assert!(c > a, "below-tail H should earn a bonus");
            }
        }
    }
}
