//! The Quickstep built-in scheduler (baseline (3) of Section 7.1).
//!
//! Quickstep selects active operators with a DAG-traversal algorithm and
//! shares threads across queries with a fair, fine-grained work-order
//! policy; on top of that it uses a linear regression over past work
//! orders to *predict the execution times of future work orders* and
//! steer resource allocation (Section 1's description of [43]). The
//! policy below reproduces that: fair sharing at work-order granularity,
//! with per-query thread grants weighted by the predicted time of their
//! pending work orders so short-running operators are not starved behind
//! long ones.

use lsched_engine::scheduler::{SchedContext, SchedDecision, SchedEvent, Scheduler};

use crate::common::{candidates, decide, even_split};

/// Quickstep's default scheduler.
#[derive(Debug, Default, Clone)]
pub struct QuickstepScheduler;

impl Scheduler for QuickstepScheduler {
    fn name(&self) -> String {
        "quickstep".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let cands = candidates(ctx);
        if cands.is_empty() {
            return Vec::new();
        }
        let mut qidxs: Vec<usize> = cands.iter().map(|c| c.query_idx).collect();
        qidxs.sort_unstable();
        qidxs.dedup();

        // Predicted remaining time per query (the LR-backed estimate
        // every OpRuntime maintains) decides each query's thread share:
        // shares are inversely proportional to predicted time so cheap
        // queries drain quickly — the behaviour that makes Quickstep
        // beat plain fair sharing on short-query mixes.
        let inv: Vec<f64> = qidxs
            .iter()
            .map(|&qi| 1.0 / ctx.queries[qi].est_remaining_work().max(1e-6))
            .collect();
        let total_inv: f64 = inv.iter().sum();

        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for (k, &qi) in qidxs.iter().enumerate() {
            if free == 0 {
                break;
            }
            let q = &ctx.queries[qi];
            let share = ((ctx.free_threads as f64) * inv[k] / total_inv).round() as usize;
            let grant_total = share.clamp(1, free);
            let roots: Vec<_> = cands.iter().filter(|c| c.query_idx == qi).collect();
            let per = even_split(grant_total, roots.len());
            for (c, s) in roots.iter().zip(per) {
                if s == 0 || free == 0 {
                    continue;
                }
                let threads = s.min(free);
                free -= threads;
                // Quickstep pipelines naturally through its DAG
                // traversal; co-schedule the full non-breaking chain.
                out.push(decide(q, c, c.max_degree, threads));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    #[test]
    fn quickstep_completes_and_beats_fifo() {
        let pool = tpch::plan_pool(&[0.5, 1.0]);
        let mut fifo_total = 0.0;
        let mut qs_total = 0.0;
        // A same-instant batch is now delivered as one simulator tick, so
        // the policy sees the whole batch on its first invocation and
        // quickstep's inverse-work share division fans out immediately
        // instead of ramping up arrival by arrival. Its shortest-first
        // weighting pays off over the steady-state completion stream, so
        // run a batch long enough for that regime to dominate the first
        // tick's fan-out.
        for seed in 0..3 {
            let wl = gen_workload(&pool, 60, ArrivalPattern::Batch, seed);
            let cfg = SimConfig { num_threads: 8, seed, ..Default::default() };
            let qs = simulate(cfg.clone(), &wl, &mut QuickstepScheduler);
            let fifo = simulate(cfg, &wl, &mut crate::heuristics::FifoScheduler);
            assert_eq!(qs.outcomes.len(), 60);
            qs_total += qs.avg_duration();
            fifo_total += fifo.avg_duration();
        }
        assert!(qs_total < fifo_total, "quickstep {qs_total} vs fifo {fifo_total}");
    }
}
