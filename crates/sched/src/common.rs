//! Shared helpers for heuristic schedulers.

use lsched_engine::plan::OpId;
use lsched_engine::scheduler::{QueryRuntime, SchedContext, SchedDecision};

/// A schedulable (query, root) candidate with cached metrics.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index into `ctx.queries`.
    pub query_idx: usize,
    /// The schedulable operator.
    pub root: OpId,
    /// Longest non-pipeline-breaking chain from the root.
    pub max_degree: usize,
    /// Estimated remaining duration of the root operator.
    pub root_work: f64,
    /// Estimated total work along the root's full pipeline chain.
    pub chain_work: f64,
}

/// Enumerates every schedulable operator across active queries.
pub fn candidates(ctx: &SchedContext<'_>) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (qi, q) in ctx.queries.iter().enumerate() {
        for &root in q.schedulable_ops() {
            let max_degree = q.plan.longest_npb_chain(root);
            let chain = q.plan.pipeline_chain(root, max_degree);
            let chain_work: f64 =
                chain.iter().map(|&o| q.ops[o.0].est_remaining_duration()).sum();
            out.push(Candidate {
                query_idx: qi,
                root,
                max_degree,
                root_work: q.ops[root.0].est_remaining_duration(),
                chain_work,
            });
        }
    }
    out
}

/// Builds a decision for a candidate.
pub fn decide(
    q: &QueryRuntime,
    c: &Candidate,
    pipeline_degree: usize,
    threads: usize,
) -> SchedDecision {
    SchedDecision {
        query: q.qid,
        root: c.root,
        pipeline_degree: pipeline_degree.clamp(1, c.max_degree),
        threads: threads.max(1),
    }
}

/// Splits `total` threads as evenly as possible across `n` recipients,
/// first slots getting the remainder.
pub fn even_split(total: usize, n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n;
    let rem = total % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_distributes_remainder() {
        assert_eq!(even_split(10, 3), vec![4, 3, 3]);
        assert_eq!(even_split(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(even_split(0, 2), vec![0, 0]);
        assert!(even_split(5, 0).is_empty());
    }
}
