//! The classic heuristic schedulers: FIFO, (weighted) fair, shortest
//! job first, highest priority first, and critical-path pipelining.
//!
//! These are the "carefully-tuned heuristics based schedulers" LSched is
//! compared against (Section 7.1): easy to implement and transparent,
//! but blind to the workload (Section 1).

use lsched_engine::scheduler::{SchedContext, SchedDecision, SchedEvent, Scheduler};

use crate::common::{candidates, decide, even_split};

/// FIFO: run queries strictly in arrival order, granting each as many
/// threads as available. The paper's worst baseline — it "stalls the
/// execution of other queries and significantly increases their average
/// query duration" (Section 7.2).
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "fifo".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        // Oldest active query (queries are kept in arrival order).
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        let cands = candidates(ctx);
        // Only the oldest query that has schedulable work gets served.
        let Some(first_q) = cands.iter().map(|c| c.query_idx).min() else {
            return out;
        };
        let roots: Vec<_> = cands.iter().filter(|c| c.query_idx == first_q).collect();
        let per = even_split(free, roots.len());
        for (c, share) in roots.iter().zip(per) {
            if free == 0 {
                break;
            }
            let threads = share.max(1).min(free);
            free -= threads;
            out.push(decide(&ctx.queries[c.query_idx], c, c.max_degree, threads));
        }
        out
    }
}

/// Weighted fair scheduling: free threads are split evenly across all
/// queries that have schedulable work (Quickstep's tuned fair policy,
/// baseline (4) in Section 7.1).
#[derive(Debug, Default, Clone)]
pub struct FairScheduler {
    /// Optional per-query weight (by arrival index); 1.0 default.
    pub weights: Vec<f64>,
}

impl Scheduler for FairScheduler {
    fn name(&self) -> String {
        "fair".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let cands = candidates(ctx);
        if cands.is_empty() {
            return Vec::new();
        }
        let mut qidxs: Vec<usize> = cands.iter().map(|c| c.query_idx).collect();
        qidxs.sort_unstable();
        qidxs.dedup();

        // Split threads across queries proportionally to weight, but also
        // account for threads a query already holds: fair share is over
        // the total pool.
        let weight = |qi: usize| -> f64 {
            let q = &ctx.queries[qi];
            self.weights.get(q.qid.0 as usize).copied().unwrap_or(1.0)
        };
        let total_w: f64 = qidxs.iter().map(|&qi| weight(qi)).sum();
        let mut free = ctx.free_threads;
        let mut out = Vec::new();
        for &qi in &qidxs {
            if free == 0 {
                break;
            }
            let q = &ctx.queries[qi];
            let fair_share =
                ((ctx.total_threads as f64) * weight(qi) / total_w).floor() as usize;
            let deficit = fair_share.saturating_sub(q.assigned_threads).max(
                // When over-subscribed (more queries than threads) still
                // grant at least one thread so nobody starves.
                usize::from(q.assigned_threads == 0),
            );
            if deficit == 0 {
                continue;
            }
            let grant_total = deficit.min(free);
            let roots: Vec<_> = cands.iter().filter(|c| c.query_idx == qi).collect();
            let per = even_split(grant_total, roots.len());
            for (c, share) in roots.iter().zip(per) {
                if share == 0 || free == 0 {
                    continue;
                }
                let threads = share.min(free);
                free -= threads;
                out.push(decide(q, c, c.max_degree, threads));
            }
        }
        out
    }
}

/// Shortest job first: all free threads to the query with the least
/// estimated remaining work.
#[derive(Debug, Default, Clone)]
pub struct SjfScheduler;

impl Scheduler for SjfScheduler {
    fn name(&self) -> String {
        "sjf".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let cands = candidates(ctx);
        let mut qidxs: Vec<usize> = cands.iter().map(|c| c.query_idx).collect();
        qidxs.sort_unstable();
        qidxs.dedup();
        qidxs.sort_by(|&a, &b| {
            ctx.queries[a]
                .est_remaining_work()
                .total_cmp(&ctx.queries[b].est_remaining_work())
        });
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for qi in qidxs {
            if free == 0 {
                break;
            }
            let roots: Vec<_> = cands.iter().filter(|c| c.query_idx == qi).collect();
            let per = even_split(free, roots.len());
            let mut granted = 0;
            for (c, share) in roots.iter().zip(per) {
                let threads = share.max(1).min(free - granted);
                if threads == 0 {
                    break;
                }
                granted += threads;
                out.push(decide(&ctx.queries[qi], c, c.max_degree, threads));
            }
            free -= granted;
        }
        out
    }
}

/// Highest priority first: like SJF but ordered by a static priority —
/// here the optimizer's critical-path estimate (heavier queries first),
/// the classic HPF configuration for makespan-oriented tuning.
#[derive(Debug, Default, Clone)]
pub struct HpfScheduler;

impl Scheduler for HpfScheduler {
    fn name(&self) -> String {
        "hpf".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let cands = candidates(ctx);
        let mut qidxs: Vec<usize> = cands.iter().map(|c| c.query_idx).collect();
        qidxs.sort_unstable();
        qidxs.dedup();
        qidxs.sort_by(|&a, &b| {
            ctx.queries[b]
                .plan
                .critical_path_estimate()
                .total_cmp(&ctx.queries[a].plan.critical_path_estimate())
        });
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for qi in qidxs {
            if free == 0 {
                break;
            }
            let roots: Vec<_> = cands.iter().filter(|c| c.query_idx == qi).collect();
            let per = even_split(free, roots.len());
            let mut granted = 0;
            for (c, share) in roots.iter().zip(per) {
                let threads = share.max(1).min(free - granted);
                if threads == 0 {
                    break;
                }
                granted += threads;
                out.push(decide(&ctx.queries[qi], c, c.max_degree, threads));
            }
            free -= granted;
        }
        out
    }
}

/// Critical-path pipelining (Kelley & Walker, Figure 1's first
/// scheduler): always start the pipeline containing the most aggregate
/// work first, pipelining it as aggressively as possible.
#[derive(Debug, Default, Clone)]
pub struct CriticalPathScheduler;

impl Scheduler for CriticalPathScheduler {
    fn name(&self) -> String {
        "critical_path".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let mut cands = candidates(ctx);
        // Heaviest pipeline first — the "runs the pipeline containing
        // more aggregate work first" heuristic.
        cands.sort_by(|a, b| b.chain_work.total_cmp(&a.chain_work));
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for c in cands {
            if free == 0 {
                break;
            }
            // Aggressive pipelining: always the full chain, threads
            // proportional to its share of outstanding work.
            let threads = (free / 2).max(1);
            free -= threads;
            out.push(decide(&ctx.queries[c.query_idx], &c, c.max_degree, threads));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    fn run(s: &mut dyn Scheduler, threads: usize, seed: u64) -> lsched_engine::sim::SimResult {
        let pool = tpch::plan_pool(&[0.5, 1.0]);
        let wl = gen_workload(&pool, 12, ArrivalPattern::Batch, seed);
        simulate(SimConfig { num_threads: threads, seed, ..Default::default() }, &wl, s)
    }

    #[test]
    fn all_heuristics_complete_workloads() {
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler),
            Box::new(FairScheduler::default()),
            Box::new(SjfScheduler),
            Box::new(HpfScheduler),
            Box::new(CriticalPathScheduler),
        ];
        for s in schedulers.iter_mut() {
            let res = run(s.as_mut(), 8, 3);
            assert_eq!(res.outcomes.len(), 12, "{} lost queries", s.name());
        }
    }

    #[test]
    fn fair_beats_fifo_on_avg_duration_in_batch() {
        // FIFO's head-of-line blocking inflates average latency on a
        // multi-query batch (Figure 8's headline observation).
        let mut fifo_total = 0.0;
        let mut fair_total = 0.0;
        for seed in 0..3 {
            fifo_total += run(&mut FifoScheduler, 8, seed).avg_duration();
            fair_total += run(&mut FairScheduler::default(), 8, seed).avg_duration();
        }
        assert!(
            fair_total < fifo_total,
            "fair ({fair_total}) should beat fifo ({fifo_total})"
        );
    }

    #[test]
    fn sjf_beats_fifo_on_avg_duration() {
        let mut fifo_total = 0.0;
        let mut sjf_total = 0.0;
        for seed in 0..3 {
            fifo_total += run(&mut FifoScheduler, 8, seed).avg_duration();
            sjf_total += run(&mut SjfScheduler, 8, seed).avg_duration();
        }
        assert!(sjf_total < fifo_total, "sjf ({sjf_total}) vs fifo ({fifo_total})");
    }

    #[test]
    fn schedulers_are_deterministic() {
        let a = run(&mut FairScheduler::default(), 8, 11).avg_duration();
        let b = run(&mut FairScheduler::default(), 8, 11).avg_duration();
        assert_eq!(a, b);
    }
}
