//! Guarded scheduling: a circuit-breaker wrapper around any policy.
//!
//! A learned scheduler can misbehave in ways a heuristic never does —
//! emit NaN logits, panic inside inference, or return structurally
//! invalid decisions after an online update goes wrong. The
//! [`GuardedScheduler`] wraps an arbitrary inner policy and validates
//! every interaction with it:
//!
//! * the **context snapshot** is checked for non-finite values before
//!   the inner policy sees it (a poisoned snapshot is served by the
//!   fallback without charging the inner policy); the full per-operator
//!   scan is amortized — it runs on every query arrival and every
//!   [`GuardConfig::deep_scan_interval`] events, with an `O(1)` clock
//!   check in between;
//! * `on_event` runs under [`std::panic::catch_unwind`];
//! * the policy's self-reported [`PolicyHealth`] is polled after each
//!   call (learned policies report `Degraded` on non-finite logits);
//! * every returned decision is validated and clamped via
//!   [`clamp_decision`] against the live context.
//!
//! Any violation **trips the circuit breaker**: scheduling switches to
//! the fallback policy (Quickstep's default heuristic unless overridden)
//! for a cooldown of `cooldown_events` scheduling events, after which a
//! single **probe** event is routed to the inner policy again — a clean
//! probe restores it, a dirty one re-trips the breaker. The state
//! machine is `Primary → (violation) → Fallback(cooldown) → Probing →
//! Primary | Fallback`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lsched_engine::scheduler::{
    clamp_decision, AdmissionResponse, AdmitAction, PolicyHealth, QueryId, SchedContext,
    SchedDecision, SchedEvent, Scheduler,
};

use crate::admission::{Admission, AdmissionGate, AdmissionStats};
use crate::quickstep::QuickstepScheduler;

/// How many recently cancelled query ids the guard remembers for the
/// stale-decision filter (see [`GuardStats::stale_decisions`]).
const CANCELLED_RING: usize = 64;

/// Largest deferral delay (seconds) a primary admission gate may return
/// before the response is vetted as out-of-band.
const MAX_GATE_DEFER_DELAY: f64 = 60.0;

/// Largest shed list a primary admission gate may return per arrival.
/// The convention (matching [`Admission`]) is at most one eviction per
/// arrival; a small slack tolerates batch-evicting gates without letting
/// a runaway predictor clear the whole queue in one verdict.
const MAX_GATE_SHED: usize = 4;

/// Degradation state of the admission-gate breaker — the same shape as
/// [`GuardState`], but counted in *arrivals* rather than scheduling
/// events, because that is the only call a gate ever serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// The primary gate is trusted and serving verdicts.
    Primary,
    /// The breaker is open: the hysteresis gate serves verdicts for the
    /// remaining cooldown arrivals.
    Fallback {
        /// Fallback arrivals left before a probe.
        arrivals_left: u32,
    },
    /// The next arrival is a probe of the primary gate.
    Probing,
}

/// Counters describing everything the admission-gate breaker observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateGuardStats {
    /// Arrivals routed through the stack.
    pub arrivals: u64,
    /// Breaker trips (violations while Primary or Probing).
    pub trips: u64,
    /// Panics caught inside the primary gate.
    pub panics: u64,
    /// Responses rejected by vetting (non-finite or out-of-band defer
    /// delay, bogus shed list).
    pub invalid_responses: u64,
    /// Arrivals where the primary gate reported `Degraded` health.
    pub degraded_health: u64,
    /// Arrivals served by the hysteresis gate while the breaker was
    /// open.
    pub fallback_arrivals: u64,
    /// Probe arrivals routed to the primary gate after cooldown.
    pub probes: u64,
    /// Probes that restored the primary gate.
    pub recoveries: u64,
}

/// A two-layer admission gate with a per-component circuit breaker.
///
/// The **primary** gate (typically a learned, predictive one) serves
/// verdicts while trusted; the **hysteresis** gate ([`Admission`]) is
/// the always-available deterministic floor. The primary is treated as
/// untrusted: every verdict runs under [`catch_unwind`], the response is
/// vetted for structural sanity (finite bounded defer delay, shed ids
/// that name real waiting queries and never the arrival itself), and the
/// gate's self-reported health is polled afterwards. Any violation trips
/// the breaker: the hysteresis gate serves the next `cooldown` arrivals,
/// then a single probe is routed to the primary again.
///
/// Degradation is **never to "admit everything"** — a broken predictor
/// must not disable overload protection, so the open-breaker path is the
/// same hysteresis gate that guarded the system before predictive
/// admission existed.
pub struct AdmissionStack {
    primary: Option<Box<dyn AdmissionGate>>,
    hysteresis: Admission,
    state: GateState,
    stats: GateGuardStats,
    /// Arrivals served by the hysteresis gate after a trip before the
    /// primary is probed again.
    cooldown: u32,
}

impl AdmissionStack {
    /// A stack with no primary gate: plain hysteresis admission.
    pub fn hysteresis_only(gate: Admission) -> Self {
        Self {
            primary: None,
            hysteresis: gate,
            state: GateState::Primary,
            stats: GateGuardStats::default(),
            cooldown: GuardConfig::default().cooldown_events,
        }
    }

    /// A stack with a primary (predictive) gate guarded in front of the
    /// hysteresis fallback.
    pub fn with_primary(
        primary: Box<dyn AdmissionGate>,
        hysteresis: Admission,
        cooldown: u32,
    ) -> Self {
        Self {
            primary: Some(primary),
            hysteresis,
            state: GateState::Primary,
            stats: GateGuardStats::default(),
            cooldown: cooldown.max(1),
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> GateState {
        self.state
    }

    /// Breaker counters.
    pub fn stats(&self) -> GateGuardStats {
        self.stats
    }

    /// Counters of the hysteresis layer (fallback verdicts, or all
    /// verdicts when no primary gate is installed).
    pub fn hysteresis_stats(&self) -> AdmissionStats {
        self.hysteresis.stats()
    }

    /// Name of the gate currently serving verdicts.
    pub fn serving_name(&self) -> String {
        match (&self.primary, self.state) {
            (Some(p), GateState::Primary | GateState::Probing) => p.name(),
            _ => AdmissionGate::name(&self.hysteresis),
        }
    }

    /// Forgets all state (for `Scheduler::reset`).
    pub fn reset(&mut self) {
        if let Some(p) = self.primary.as_mut() {
            p.reset();
        }
        self.hysteresis.reset();
        self.state = GateState::Primary;
        self.stats = GateGuardStats::default();
    }

    fn trip(&mut self) {
        self.stats.trips += 1;
        self.state = GateState::Fallback { arrivals_left: self.cooldown };
    }

    /// Structural sanity of a primary-gate response against the live
    /// context. Pure — shared by the breaker and its tests.
    fn response_is_sane(
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        resp: &AdmissionResponse,
    ) -> bool {
        if let AdmitAction::Defer { delay } = resp.action {
            if !delay.is_finite() || !(0.0..=MAX_GATE_DEFER_DELAY).contains(&delay) {
                return false;
            }
        }
        if resp.shed.len() > MAX_GATE_SHED {
            return false;
        }
        resp.shed.iter().all(|&victim| {
            victim != arriving
                && ctx
                    .queries
                    .iter()
                    .any(|q| q.qid == victim && q.assigned_threads == 0)
        })
    }

    /// Runs the primary gate under full guarding; `None` means the
    /// breaker tripped and the caller must consult the hysteresis gate.
    fn guarded_primary(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> Option<AdmissionResponse> {
        let primary = self.primary.as_mut()?;
        let resp =
            match catch_unwind(AssertUnwindSafe(|| primary.admit(ctx, arriving, attempt))) {
                Ok(r) => r,
                Err(_) => {
                    self.stats.panics += 1;
                    self.trip();
                    return None;
                }
            };
        if self.primary.as_ref().is_some_and(|p| p.health() == PolicyHealth::Degraded) {
            self.stats.degraded_health += 1;
            self.trip();
            return None;
        }
        if !Self::response_is_sane(ctx, arriving, &resp) {
            self.stats.invalid_responses += 1;
            self.trip();
            return None;
        }
        Some(resp)
    }

    /// Decides the fate of `arriving` through the breaker state machine.
    /// Deterministic as long as both layers are (no RNG, no clock).
    pub fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse {
        self.stats.arrivals += 1;
        if self.primary.is_none() {
            return self.hysteresis.admit(ctx, arriving, attempt);
        }
        match self.state {
            GateState::Fallback { arrivals_left } => {
                self.state = if arrivals_left > 1 {
                    GateState::Fallback { arrivals_left: arrivals_left - 1 }
                } else {
                    GateState::Probing
                };
                self.stats.fallback_arrivals += 1;
                self.hysteresis.admit(ctx, arriving, attempt)
            }
            GateState::Primary => match self.guarded_primary(ctx, arriving, attempt) {
                Some(resp) => resp,
                None => self.hysteresis.admit(ctx, arriving, attempt),
            },
            GateState::Probing => {
                self.stats.probes += 1;
                match self.guarded_primary(ctx, arriving, attempt) {
                    Some(resp) => {
                        self.stats.recoveries += 1;
                        self.state = GateState::Primary;
                        resp
                    }
                    None => self.hysteresis.admit(ctx, arriving, attempt),
                }
            }
        }
    }
}

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Scheduling events served by the fallback after a trip before the
    /// inner policy is probed again.
    pub cooldown_events: u32,
    /// The full per-operator snapshot scan runs on every `QueryArrived`
    /// event (new plan data enters the snapshot) and at most every this
    /// many events in between; other events only get an `O(1)` clock
    /// check. `1` scans every event. Amortizing the scan keeps the
    /// fault-free guard overhead negligible while still bounding how
    /// long a poisoned snapshot can go unnoticed; policy-side NaN is
    /// caught per-event through the health poll regardless.
    pub deep_scan_interval: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self { cooldown_events: 32, deep_scan_interval: 128 }
    }
}

/// Degradation state of the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardState {
    /// The inner policy is trusted and serving decisions.
    Primary,
    /// The breaker is open: the fallback serves decisions for the
    /// remaining cooldown events.
    Fallback {
        /// Fallback events left before a probe.
        events_left: u32,
    },
    /// The next event is a probe of the inner policy.
    Probing,
}

/// Counters describing everything the guard observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Scheduling events seen.
    pub events: u64,
    /// Breaker trips (violations while Primary or Probing).
    pub trips: u64,
    /// Panics caught inside the inner policy.
    pub panics: u64,
    /// Decisions rejected by validation/clamping.
    pub invalid_decisions: u64,
    /// Events where the inner policy reported `Degraded` health.
    pub degraded_health: u64,
    /// Context snapshots with non-finite values (served by fallback
    /// without charging the inner policy).
    pub poisoned_snapshots: u64,
    /// Events served by the fallback while the breaker was open.
    pub fallback_events: u64,
    /// Probe events routed to the inner policy after cooldown.
    pub probes: u64,
    /// Probes that restored the inner policy.
    pub recoveries: u64,
    /// Decisions naming a query that was cancelled (deadline, shed or
    /// user cancellation) shortly before — e.g. while the breaker was in
    /// `Fallback(cooldown)` and a stateful inner policy missed the
    /// teardown. Dropped silently instead of tripping the breaker: the
    /// policy is stale, not broken.
    pub stale_decisions: u64,
}

impl GuardStats {
    /// Folds another guard's counters into this one. Every field is an
    /// event count, so a multi-shard aggregate is the plain sum —
    /// commutative and associative, independent of shard visit order
    /// (the same contract as [`lsched_engine::fault::FaultSummary::merge`]).
    pub fn merge(&mut self, other: &GuardStats) {
        self.events += other.events;
        self.trips += other.trips;
        self.panics += other.panics;
        self.invalid_decisions += other.invalid_decisions;
        self.degraded_health += other.degraded_health;
        self.poisoned_snapshots += other.poisoned_snapshots;
        self.fallback_events += other.fallback_events;
        self.probes += other.probes;
        self.recoveries += other.recoveries;
        self.stale_decisions += other.stale_decisions;
    }
}

/// A circuit-breaker wrapper: `inner` serves decisions while healthy,
/// `fallback` (Quickstep-default unless overridden) takes over on any
/// violation. See the module docs for the full state machine.
pub struct GuardedScheduler<S: Scheduler, F: Scheduler = QuickstepScheduler> {
    inner: S,
    fallback: F,
    cfg: GuardConfig,
    state: GuardState,
    stats: GuardStats,
    events_since_deep_scan: u32,
    /// Optional admission stack consulted on every arrival (see
    /// [`crate::admission`] and [`AdmissionStack`]); `None` admits
    /// everything.
    admission: Option<AdmissionStack>,
    /// Bounded ring of recently cancelled query ids, backing the
    /// stale-decision filter in [`GuardStats::stale_decisions`].
    recently_cancelled: Vec<QueryId>,
}

impl<S: Scheduler> GuardedScheduler<S, QuickstepScheduler> {
    /// Guards `inner` with the Quickstep-default heuristic as fallback.
    pub fn new(inner: S) -> Self {
        Self::with_fallback(inner, QuickstepScheduler, GuardConfig::default())
    }
}

impl<S: Scheduler, F: Scheduler> GuardedScheduler<S, F> {
    /// Guards `inner` with a custom fallback policy and config.
    pub fn with_fallback(inner: S, fallback: F, cfg: GuardConfig) -> Self {
        Self {
            inner,
            fallback,
            cfg,
            state: GuardState::Primary,
            stats: GuardStats::default(),
            events_since_deep_scan: 0,
            admission: None,
            recently_cancelled: Vec::new(),
        }
    }

    /// Installs a plain hysteresis admission gate in front of the
    /// guarded policy. The gate is orthogonal to the scheduling breaker:
    /// it keeps shedding load even while the breaker is open, because
    /// overload protection must not depend on which policy happens to be
    /// serving decisions.
    pub fn with_admission(mut self, gate: Admission) -> Self {
        self.admission = Some(AdmissionStack::hysteresis_only(gate));
        self
    }

    /// Installs a full [`AdmissionStack`] (e.g. a predictive primary
    /// gate over a hysteresis fallback, with its own breaker).
    pub fn with_admission_stack(mut self, stack: AdmissionStack) -> Self {
        self.admission = Some(stack);
        self
    }

    /// Current breaker state.
    pub fn state(&self) -> GuardState {
        self.state
    }

    /// Everything the guard observed so far.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Hysteresis-layer admission counters, if a gate is installed
    /// (all verdicts when no primary gate exists, fallback verdicts
    /// otherwise).
    pub fn admission_stats(&self) -> Option<AdmissionStats> {
        self.admission.as_ref().map(AdmissionStack::hysteresis_stats)
    }

    /// Admission-breaker state, if a gate is installed.
    pub fn gate_state(&self) -> Option<GateState> {
        self.admission.as_ref().map(AdmissionStack::state)
    }

    /// Admission-breaker counters, if a gate is installed.
    pub fn gate_stats(&self) -> Option<GateGuardStats> {
        self.admission.as_ref().map(AdmissionStack::stats)
    }

    /// The wrapped inner policy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn trip(&mut self) {
        self.stats.trips += 1;
        self.state = GuardState::Fallback { events_left: self.cfg.cooldown_events.max(1) };
    }

    /// Whether one query's feature sources are all finite. The query's
    /// aggregate `est_remaining_work` is the sum of the per-operator
    /// durations checked here, so it needs no separate check.
    fn query_is_finite(q: &lsched_engine::scheduler::QueryRuntime) -> bool {
        // Check the estimators' *inputs* (windowed observations plus the
        // optimizer fallback, `O(1)` per estimator) rather than their
        // predictions: refitting the regression per op just to test
        // finiteness made the deep scan the guard's dominant cost.
        q.arrival_time.is_finite()
            && q.ops.iter().all(|o| o.dur_estimator.is_finite() && o.mem_estimator.is_finite())
    }

    /// Whether the snapshot is safe to hand to a learned policy: all
    /// feature sources must be finite, or inference outputs are garbage
    /// regardless of the model's health.
    fn snapshot_is_finite(ctx: &SchedContext<'_>) -> bool {
        ctx.time.is_finite() && ctx.queries.iter().all(Self::query_is_finite)
    }

    /// Runs the inner policy under full guarding; returns its clamped
    /// decisions or `None` when the breaker tripped.
    fn guarded_inner(
        &mut self,
        ctx: &SchedContext<'_>,
        event: &SchedEvent,
    ) -> Option<Vec<SchedDecision>> {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.inner.on_event(ctx, event)));
        let decisions = match outcome {
            Ok(ds) => ds,
            Err(_) => {
                self.stats.panics += 1;
                self.trip();
                return None;
            }
        };
        self.vet_decisions(ctx, decisions)
    }

    /// Runs the inner policy's batch path under the same guarding as
    /// [`guarded_inner`](Self::guarded_inner); returns its clamped
    /// decisions, or `None` when the inner policy declined the batch or
    /// the breaker tripped (either way the engine redelivers the events
    /// one at a time through [`Scheduler::on_event`]).
    fn guarded_inner_tick(
        &mut self,
        ctx: &SchedContext<'_>,
        events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        let outcome = catch_unwind(AssertUnwindSafe(|| self.inner.on_tick(ctx, events)));
        let decisions = match outcome {
            Ok(Some(ds)) => ds,
            // Declining a batch is a supported answer, not a violation.
            Ok(None) => return None,
            Err(_) => {
                self.stats.panics += 1;
                self.trip();
                return None;
            }
        };
        self.vet_decisions(ctx, decisions)
    }

    /// Post-inference guarding shared by the per-event and tick-batch
    /// paths: health poll, per-decision clamping with the stale-decision
    /// tolerance, breaker trip on any violation.
    fn vet_decisions(
        &mut self,
        ctx: &SchedContext<'_>,
        mut decisions: Vec<SchedDecision>,
    ) -> Option<Vec<SchedDecision>> {
        if self.inner.health() == PolicyHealth::Degraded {
            self.stats.degraded_health += 1;
            self.trip();
            return None;
        }
        let mut bad = 0u64;
        let mut stale = 0u64;
        let mut clamped = Vec::with_capacity(decisions.len());
        for d in &mut decisions {
            match clamp_decision(ctx, d) {
                Ok(c) => clamped.push(c),
                // A decision naming a query that is gone from the live
                // context but was cancelled moments ago (deadline, shed
                // or user cancellation — possibly while the breaker was
                // in `Fallback(cooldown)` and a stateful inner policy
                // missed the teardown) is stale, not invalid: drop it
                // without tripping the breaker.
                Err(_)
                    if ctx.queries.iter().all(|q| q.qid != d.query)
                        && self.recently_cancelled.contains(&d.query) =>
                {
                    stale += 1;
                }
                Err(_) => bad += 1,
            }
        }
        self.stats.stale_decisions += stale;
        if bad > 0 {
            self.stats.invalid_decisions += bad;
            self.trip();
            return None;
        }
        Some(clamped)
    }
}

impl<S: Scheduler, F: Scheduler> Scheduler for GuardedScheduler<S, F> {
    fn name(&self) -> String {
        format!("guarded({})", self.inner.name())
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, event: &SchedEvent) -> Vec<SchedDecision> {
        self.stats.events += 1;
        self.events_since_deep_scan += 1;
        let finite = if self.events_since_deep_scan >= self.cfg.deep_scan_interval.max(1) {
            self.events_since_deep_scan = 0;
            Self::snapshot_is_finite(ctx)
        } else if let SchedEvent::QueryArrived(qid) = event {
            // Only the arrived query holds data the last deep scan has
            // not seen — scanning the rest waits for the next interval.
            ctx.time.is_finite()
                && ctx
                    .queries
                    .iter()
                    .find(|q| q.qid == *qid)
                    .is_none_or(Self::query_is_finite)
        } else {
            ctx.time.is_finite()
        };
        if !finite {
            self.stats.poisoned_snapshots += 1;
            return self.fallback.on_event(ctx, event);
        }
        match self.state {
            GuardState::Fallback { events_left } => {
                self.state = if events_left > 1 {
                    GuardState::Fallback { events_left: events_left - 1 }
                } else {
                    GuardState::Probing
                };
                self.stats.fallback_events += 1;
                self.fallback.on_event(ctx, event)
            }
            GuardState::Primary => match self.guarded_inner(ctx, event) {
                Some(ds) => ds,
                None => self.fallback.on_event(ctx, event),
            },
            GuardState::Probing => {
                self.stats.probes += 1;
                match self.guarded_inner(ctx, event) {
                    Some(ds) => {
                        self.stats.recoveries += 1;
                        self.state = GuardState::Primary;
                        ds
                    }
                    None => self.fallback.on_event(ctx, event),
                }
            }
        }
    }

    fn on_tick(
        &mut self,
        ctx: &SchedContext<'_>,
        events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        if events.is_empty() {
            return Some(Vec::new());
        }
        // Forward the batch only while the inner policy is serving.
        // Declining (`None`) makes the engine redeliver the events one
        // at a time through `on_event`, so the Fallback cooldown
        // countdown, fallback accounting and poisoned-snapshot counting
        // all run exactly as in the per-event state machine — counters
        // are only touched here once the batch is actually accepted.
        if !matches!(self.state, GuardState::Primary | GuardState::Probing) {
            return None;
        }
        let deep =
            self.events_since_deep_scan + events.len() as u32 >= self.cfg.deep_scan_interval.max(1);
        let finite = if deep {
            Self::snapshot_is_finite(ctx)
        } else {
            // A batch is gated like its strictest member: arrivals in it
            // get the newcomer check of the per-event fast path.
            ctx.time.is_finite()
                && events.iter().all(|e| match e {
                    SchedEvent::QueryArrived(qid) => ctx
                        .queries
                        .iter()
                        .find(|q| q.qid == *qid)
                        .is_none_or(Self::query_is_finite),
                    _ => true,
                })
        };
        if !finite {
            return None;
        }
        let probing = matches!(self.state, GuardState::Probing);
        if probing {
            self.stats.probes += 1;
        }
        let ds = self.guarded_inner_tick(ctx, events)?;
        self.stats.events += events.len() as u64;
        if deep {
            self.events_since_deep_scan = 0;
        } else {
            self.events_since_deep_scan += events.len() as u32;
        }
        if probing {
            self.stats.recoveries += 1;
            self.state = GuardState::Primary;
        }
        Some(ds)
    }

    fn on_decision_executed(&mut self, ctx: &SchedContext<'_>, decision: &SchedDecision) {
        // Feedback can run arbitrary learned-policy code (online reward
        // updates): guard it the same way as inference.
        let outcome =
            catch_unwind(AssertUnwindSafe(|| self.inner.on_decision_executed(ctx, decision)));
        if outcome.is_err() {
            self.stats.panics += 1;
            self.trip();
        }
        self.fallback.on_decision_executed(ctx, decision);
    }

    fn on_query_finished(&mut self, time: f64, query: QueryId) {
        if catch_unwind(AssertUnwindSafe(|| self.inner.on_query_finished(time, query))).is_err() {
            self.stats.panics += 1;
            self.trip();
        }
        self.fallback.on_query_finished(time, query);
    }

    fn on_query_cancelled(&mut self, time: f64, query: QueryId) {
        // Remember the teardown so a stale decision naming this query
        // later is dropped instead of tripping the breaker.
        if self.recently_cancelled.len() >= CANCELLED_RING {
            self.recently_cancelled.remove(0);
        }
        self.recently_cancelled.push(query);
        if catch_unwind(AssertUnwindSafe(|| self.inner.on_query_cancelled(time, query))).is_err() {
            self.stats.panics += 1;
            self.trip();
        }
        self.fallback.on_query_cancelled(time, query);
    }

    fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse {
        // The gate is consulted regardless of breaker state: overload
        // protection is policy-independent.
        match self.admission.as_mut() {
            Some(gate) => gate.admit(ctx, arriving, attempt),
            None => AdmissionResponse::admit(),
        }
    }

    fn health(&self) -> PolicyHealth {
        match self.state {
            GuardState::Primary => PolicyHealth::Healthy,
            _ => PolicyHealth::Degraded,
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.fallback.reset();
        self.state = GuardState::Primary;
        self.stats = GuardStats::default();
        self.events_since_deep_scan = 0;
        self.recently_cancelled.clear();
        if let Some(gate) = self.admission.as_mut() {
            gate.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    /// Emits NaN-poisoned behaviour for the first `bad_events` events
    /// (self-reported as Degraded health, like the learned agent does on
    /// non-finite logits), then behaves as Quickstep.
    struct NanThenRecover {
        bad_events: u32,
        seen: u32,
        delegate: QuickstepScheduler,
    }
    impl Scheduler for NanThenRecover {
        fn name(&self) -> String {
            "nan_then_recover".into()
        }
        fn on_event(&mut self, ctx: &SchedContext<'_>, ev: &SchedEvent) -> Vec<SchedDecision> {
            self.seen += 1;
            self.delegate.on_event(ctx, ev)
        }
        fn health(&self) -> PolicyHealth {
            if self.seen <= self.bad_events {
                PolicyHealth::Degraded
            } else {
                PolicyHealth::Healthy
            }
        }
    }

    /// Returns a structurally invalid decision on every event.
    struct ZeroThreads;
    impl Scheduler for ZeroThreads {
        fn name(&self) -> String {
            "zero_threads".into()
        }
        fn on_event(&mut self, ctx: &SchedContext<'_>, _: &SchedEvent) -> Vec<SchedDecision> {
            ctx.queries
                .first()
                .and_then(|q| q.schedulable_ops().first().copied().map(|root| SchedDecision {
                    query: q.qid,
                    root,
                    pipeline_degree: 1,
                    threads: 0,
                }))
                .into_iter()
                .collect()
        }
    }

    fn workload(n: usize, seed: u64) -> Vec<lsched_engine::sim::WorkloadItem> {
        let pool = tpch::plan_pool(&[0.5]);
        gen_workload(&pool, n, ArrivalPattern::Batch, seed)
    }

    #[test]
    fn breaker_trips_within_one_event_and_recovers_after_cooldown() {
        let inner = NanThenRecover { bad_events: 3, seen: 0, delegate: QuickstepScheduler };
        let mut guard = GuardedScheduler::with_fallback(
            inner,
            QuickstepScheduler,
            GuardConfig { cooldown_events: 4, ..Default::default() },
        );
        let wl = workload(10, 1);
        let res = simulate(SimConfig { num_threads: 4, seed: 1, ..Default::default() }, &wl, &mut guard);
        assert_eq!(res.outcomes.len(), 10, "guarded run must still drain the workload");
        let stats = guard.stats();
        assert!(stats.trips >= 1, "degraded health must trip the breaker");
        assert_eq!(stats.degraded_health, stats.trips);
        assert!(stats.fallback_events >= 4, "cooldown must route events to the fallback");
        assert!(stats.probes >= 1, "the breaker must probe after cooldown");
        assert!(stats.recoveries >= 1, "a recovered policy must be restored");
        assert_eq!(guard.state(), GuardState::Primary, "ends the run healthy");
    }

    #[test]
    fn breaker_trips_on_first_degraded_event() {
        let inner = NanThenRecover { bad_events: u32::MAX, seen: 0, delegate: QuickstepScheduler };
        let mut guard = GuardedScheduler::new(inner);
        let wl = workload(6, 2);
        let res = simulate(SimConfig { num_threads: 4, seed: 2, ..Default::default() }, &wl, &mut guard);
        assert_eq!(res.outcomes.len(), 6);
        let stats = guard.stats();
        // The very first guarded event must already have tripped: every
        // event after it (minus probes) is served by the fallback.
        assert!(stats.trips >= 1);
        assert_eq!(
            stats.events,
            stats.trips + stats.fallback_events + stats.poisoned_snapshots,
            "no event may be served by a policy known to be degraded: {stats:?}"
        );
        assert_eq!(stats.recoveries, 0);
    }

    #[test]
    fn panicking_policy_cannot_kill_the_run() {
        struct Panics;
        impl Scheduler for Panics {
            fn name(&self) -> String {
                "panics".into()
            }
            fn on_event(&mut self, _: &SchedContext<'_>, _: &SchedEvent) -> Vec<SchedDecision> {
                panic!("inference exploded");
            }
        }
        // Silence the default panic hook for the intentional panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut guard = GuardedScheduler::new(Panics);
        let wl = workload(6, 3);
        let res = simulate(SimConfig { num_threads: 4, seed: 3, ..Default::default() }, &wl, &mut guard);
        std::panic::set_hook(prev);
        assert_eq!(res.outcomes.len(), 6, "fallback must carry the whole run");
        assert!(guard.stats().panics >= 1);
        assert!(guard.stats().trips >= 1);
    }

    #[test]
    fn invalid_decisions_trip_the_breaker() {
        let mut guard = GuardedScheduler::new(ZeroThreads);
        let wl = workload(6, 4);
        let res = simulate(SimConfig { num_threads: 4, seed: 4, ..Default::default() }, &wl, &mut guard);
        assert_eq!(res.outcomes.len(), 6);
        assert!(guard.stats().invalid_decisions >= 1);
        assert!(guard.stats().trips >= 1);
    }

    /// Delegates to Quickstep but keeps re-issuing a decision for the
    /// most recently cancelled query after it left the live context —
    /// modelling a stateful learned policy that missed a teardown
    /// (e.g. while the breaker was in `Fallback(cooldown)`).
    struct StaleAfterCancel {
        cancelled: Vec<QueryId>,
        delegate: QuickstepScheduler,
    }
    impl Scheduler for StaleAfterCancel {
        fn name(&self) -> String {
            "stale_after_cancel".into()
        }
        fn on_event(&mut self, ctx: &SchedContext<'_>, ev: &SchedEvent) -> Vec<SchedDecision> {
            let mut ds = self.delegate.on_event(ctx, ev);
            if let Some(&qid) = self.cancelled.last() {
                if ctx.queries.iter().all(|q| q.qid != qid) {
                    ds.push(SchedDecision {
                        query: qid,
                        root: lsched_engine::plan::OpId(0),
                        pipeline_degree: 1,
                        threads: 1,
                    });
                }
            }
            ds
        }
        fn on_query_cancelled(&mut self, _time: f64, query: QueryId) {
            // Deliberately remembers instead of forgetting: the stale
            // entry is the bug under test.
            self.cancelled.push(query);
        }
    }

    #[test]
    fn stale_decision_for_cancelled_query_does_not_trip_the_breaker() {
        let mut wl = workload(6, 7);
        // Query 0 times out immediately: its deadline event fires at its
        // own arrival instant, before any work order can complete.
        wl[0] = wl[0].clone().with_deadline(0.0);
        let inner = StaleAfterCancel { cancelled: Vec::new(), delegate: QuickstepScheduler };
        let mut guard = GuardedScheduler::new(inner);
        let res =
            simulate(SimConfig { num_threads: 4, seed: 7, ..Default::default() }, &wl, &mut guard);
        assert_eq!(res.outcomes.len() + res.aborted.len(), 6, "every query gets a final fate");
        assert_eq!(res.resilience.deadline_timeouts, 1);
        let stats = guard.stats();
        assert!(
            stats.stale_decisions >= 1,
            "the policy re-issued decisions for the cancelled query: {stats:?}"
        );
        assert_eq!(stats.trips, 0, "stale decisions must not trip the breaker: {stats:?}");
        assert_eq!(stats.invalid_decisions, 0);
        assert_eq!(guard.state(), GuardState::Primary);
    }

    #[test]
    fn admission_gate_sheds_through_the_guard_deterministically() {
        use crate::admission::{Admission, AdmissionConfig};
        let run = || {
            let gate = Admission::new(AdmissionConfig {
                max_queued: 1,
                resume_queued: 0,
                ..Default::default()
            });
            let mut guard = GuardedScheduler::new(QuickstepScheduler).with_admission(gate);
            let wl = workload(20, 8);
            let res = simulate(
                SimConfig { num_threads: 2, seed: 8, ..Default::default() },
                &wl,
                &mut guard,
            );
            let stats = guard.admission_stats().expect("gate installed via with_admission");
            (res, stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert!(a.resilience.shed >= 1, "a batch arrival must overflow max_queued=1: {sa:?}");
        assert_eq!(
            a.outcomes.len() + a.aborted.len(),
            20,
            "shed queries still get a final fate"
        );
        assert_eq!(sa, sb, "gate counters must be deterministic");
        assert_eq!(a.resilience.shed, b.resilience.shed);
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "admission + guard must stay bit-identical across runs"
        );
    }

    /// A primary admission gate with a scripted failure mode.
    enum GateFault {
        Panic,
        NonFiniteDelay,
        ShedArrival,
        DegradedHealth,
        None,
    }
    struct FaultyGate {
        fault: GateFault,
        /// Arrivals before the fault starts firing.
        after: u64,
        seen: u64,
    }
    impl crate::admission::AdmissionGate for FaultyGate {
        fn name(&self) -> String {
            "faulty_test_gate".into()
        }
        fn admit(
            &mut self,
            _ctx: &SchedContext<'_>,
            arriving: QueryId,
            _attempt: u32,
        ) -> AdmissionResponse {
            self.seen += 1;
            if self.seen <= self.after {
                return AdmissionResponse::admit();
            }
            match self.fault {
                GateFault::Panic => panic!("predictor exploded"),
                GateFault::NonFiniteDelay => AdmissionResponse {
                    action: lsched_engine::scheduler::AdmitAction::Defer { delay: f64::NAN },
                    shed: Vec::new(),
                },
                GateFault::ShedArrival => {
                    AdmissionResponse { action: lsched_engine::scheduler::AdmitAction::Admit, shed: vec![arriving] }
                }
                GateFault::DegradedHealth | GateFault::None => AdmissionResponse::admit(),
            }
        }
        fn health(&self) -> PolicyHealth {
            if matches!(self.fault, GateFault::DegradedHealth) && self.seen > self.after {
                PolicyHealth::Degraded
            } else {
                PolicyHealth::Healthy
            }
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
    }

    fn stack_with(fault: GateFault, after: u64) -> AdmissionStack {
        use crate::admission::{Admission, AdmissionConfig};
        AdmissionStack::with_primary(
            Box::new(FaultyGate { fault, after, seen: 0 }),
            Admission::new(AdmissionConfig { max_queued: 1, resume_queued: 0, ..Default::default() }),
            4,
        )
    }

    /// Each fault mode must trip the gate breaker and degrade to the
    /// hysteresis gate — which keeps shedding (never admit-everything).
    fn assert_trips_and_hysteresis_sheds(fault: GateFault) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut guard = GuardedScheduler::new(QuickstepScheduler)
            .with_admission_stack(stack_with(fault, 0));
        let wl = workload(20, 8);
        let res =
            simulate(SimConfig { num_threads: 2, seed: 8, ..Default::default() }, &wl, &mut guard);
        std::panic::set_hook(prev);
        let stats = guard.gate_stats().expect("stack installed");
        assert!(stats.trips >= 1, "the fault must trip the gate breaker: {stats:?}");
        assert!(stats.fallback_arrivals >= 1, "cooldown must route arrivals to hysteresis");
        assert!(
            res.resilience.shed >= 1,
            "degraded admission must still shed under a 20-query burst at max_queued=1, \
             never fall open: {stats:?}"
        );
        assert_eq!(res.outcomes.len() + res.aborted.len(), 20);
    }

    #[test]
    fn panicking_gate_degrades_to_hysteresis() {
        assert_trips_and_hysteresis_sheds(GateFault::Panic);
    }

    #[test]
    fn non_finite_defer_delay_trips_the_gate_breaker() {
        assert_trips_and_hysteresis_sheds(GateFault::NonFiniteDelay);
    }

    #[test]
    fn shedding_the_arrival_itself_is_vetted_as_invalid() {
        assert_trips_and_hysteresis_sheds(GateFault::ShedArrival);
    }

    #[test]
    fn degraded_gate_health_trips_the_gate_breaker() {
        assert_trips_and_hysteresis_sheds(GateFault::DegradedHealth);
    }

    #[test]
    fn gate_breaker_probes_and_recovers_a_healthy_primary() {
        // Degraded on the first arrival only: the trip serves a 2-
        // arrival cooldown through hysteresis, then a probe must restore
        // the (now healthy) primary gate.
        let mut guard = GuardedScheduler::new(QuickstepScheduler).with_admission_stack({
            use crate::admission::{Admission, AdmissionConfig};
            AdmissionStack::with_primary(
                Box::new(HealAfter { bad_arrivals: 1, seen: 0 }),
                Admission::new(AdmissionConfig::default()),
                2,
            )
        });
        let wl = workload(20, 9);
        let cfg = SimConfig { num_threads: 2, seed: 9, ..Default::default() };
        simulate(cfg, &wl, &mut guard);
        let s = guard.gate_stats().expect("stack installed");
        assert!(s.trips >= 1);
        assert!(s.probes >= 1, "cooldown must end in a probe: {s:?}");
        assert!(s.recoveries >= 1, "a healed gate must be restored: {s:?}");
        assert_eq!(guard.gate_state(), Some(GateState::Primary));
    }

    /// Degraded for the first `bad_arrivals` arrivals, healthy after.
    struct HealAfter {
        bad_arrivals: u64,
        seen: u64,
    }
    impl crate::admission::AdmissionGate for HealAfter {
        fn name(&self) -> String {
            "heal_after_test_gate".into()
        }
        fn admit(
            &mut self,
            _ctx: &SchedContext<'_>,
            _arriving: QueryId,
            _attempt: u32,
        ) -> AdmissionResponse {
            self.seen += 1;
            AdmissionResponse::admit()
        }
        fn health(&self) -> PolicyHealth {
            if self.seen <= self.bad_arrivals {
                PolicyHealth::Degraded
            } else {
                PolicyHealth::Healthy
            }
        }
    }

    #[test]
    fn admission_stack_is_deterministic_across_runs() {
        let run = || {
            let mut guard = GuardedScheduler::new(QuickstepScheduler)
                .with_admission_stack(stack_with(GateFault::None, 0));
            let wl = workload(20, 10);
            let res = simulate(
                SimConfig { num_threads: 2, seed: 10, ..Default::default() },
                &wl,
                &mut guard,
            );
            (res.makespan.to_bits(), guard.gate_stats().unwrap())
        };
        let (m1, s1) = run();
        let (m2, s2) = run();
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
        assert_eq!(s1.trips, 0, "a sane gate must never trip: {s1:?}");
    }

    #[test]
    fn guard_is_transparent_for_a_healthy_policy() {
        let wl = workload(8, 5);
        let cfg = SimConfig { num_threads: 4, seed: 5, ..Default::default() };
        let bare = simulate(cfg.clone(), &wl, &mut QuickstepScheduler);
        let mut guard = GuardedScheduler::new(QuickstepScheduler);
        let guarded = simulate(cfg, &wl, &mut guard);
        assert_eq!(bare.makespan.to_bits(), guarded.makespan.to_bits(), "guard must not alter a healthy policy's schedule");
        assert_eq!(guard.stats().trips, 0);
        assert_eq!(guard.stats().fallback_events, 0);
        assert_eq!(guard.state(), GuardState::Primary);
    }
}
