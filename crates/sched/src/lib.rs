//! # lsched-sched
//!
//! The non-learned scheduler baselines of the paper's evaluation
//! (Section 7.1): FIFO, carefully-tuned weighted fair scheduling,
//! shortest-job-first, highest-priority-first, critical-path pipelining
//! (Figure 1), Quickstep's built-in fair work-order scheduler with
//! LR-based duration prediction, and SelfTune's priority policy with
//! workload-tuned hyper-parameters.
//!
//! Also hosts the resilience wrappers shared by every policy: the
//! [`guard`] circuit breaker and the [`admission`] overload gate.

#![warn(missing_docs)]

pub mod admission;
pub mod common;
pub mod guard;
pub mod heuristics;
pub mod lottery;
pub mod quickstep;
pub mod selftune;

pub use admission::{Admission, AdmissionConfig, AdmissionGate, AdmissionStats, ShedPolicy};
pub use guard::{
    AdmissionStack, GateGuardStats, GateState, GuardConfig, GuardState, GuardStats,
    GuardedScheduler,
};
pub use heuristics::{
    CriticalPathScheduler, FairScheduler, FifoScheduler, HpfScheduler, SjfScheduler,
};
pub use lottery::LotteryScheduler;
pub use quickstep::QuickstepScheduler;
pub use selftune::{tune, SelfTuneParams, SelfTuneScheduler, TuneConfig};
