//! Admission control and load shedding.
//!
//! A production scheduler facing open-loop arrivals must bound its queue
//! or tail latency grows without bound (the failure mode BQSched's
//! timeouts and Decima's bursty training regime both guard against).
//! [`Admission`] is a deterministic, RNG-free gate that sits in front of
//! any [`Scheduler`] — wired through
//! [`GuardedScheduler`](crate::guard::GuardedScheduler) so every policy
//! (learned or heuristic) gets the same overload behaviour:
//!
//! * **Limits** — a maximum number of queued (thread-less) queries and a
//!   maximum total in-flight work-order backlog.
//! * **Hysteresis** — the gate opens (starts shedding) when a limit is
//!   exceeded and only closes again once the queue drains below a lower
//!   watermark, so it cannot flap on every arrival.
//! * **Priority-aware shedding** — while shedding, each arrival evicts
//!   exactly one waiting query: the lowest-priority one (ties broken
//!   toward the youngest arrival, then the highest id), which may be the
//!   arriving query itself.
//! * **Reject vs. defer** — shed verdicts either drop the query or ask
//!   the simulator to re-submit it after a capped exponential backoff.
//!
//! Determinism: every verdict is a pure function of the
//! [`SchedContext`] snapshot and the gate's own counters — chaos runs
//! stay bit-identical because the gate never draws randomness.

use lsched_engine::scheduler::{
    AdmissionResponse, AdmitAction, PolicyHealth, QueryId, QueryRuntime, SchedContext,
};
use serde::{Deserialize, Serialize};

/// A pluggable admission policy: anything that can turn an arrival plus
/// a [`SchedContext`] snapshot into an [`AdmissionResponse`].
///
/// Implementations must be **deterministic and RNG-free** — the engine
/// replays chaos runs bit-for-bit and an admission verdict that depends
/// on a random draw (or wall-clock time) breaks that guarantee. They
/// should also self-report [`PolicyHealth::Degraded`] when their own
/// outputs stop being trustworthy (e.g. a learned gate observing
/// non-finite scores); the guard layer polls [`health`](Self::health)
/// after every verdict and degrades to a heuristic gate on bad news.
pub trait AdmissionGate: Send {
    /// Human-readable gate name (for reports).
    fn name(&self) -> String;

    /// Decides the fate of `arriving` (already present in
    /// `ctx.queries`); `attempt` counts prior deferrals of this query.
    fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse;

    /// Self-reported trustworthiness of recent verdicts.
    fn health(&self) -> PolicyHealth {
        PolicyHealth::Healthy
    }

    /// Forgets all state (for `Scheduler::reset`).
    fn reset(&mut self) {}
}

/// What to do with the shedding victim once the gate is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Drop the victim outright (fail fast; the client sees the shed).
    Reject,
    /// Ask for re-submission after a capped exponential backoff —
    /// victims that are *arriving* are deferred; victims already queued
    /// cannot be re-queued by the engine and are rejected.
    Defer,
}

/// Admission-gate limits and hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Open the gate when the number of waiting (thread-less) queries
    /// exceeds this high watermark.
    pub max_queued: usize,
    /// Close the gate once waiting queries drain to this low watermark
    /// (must be `<= max_queued`; the gap is the hysteresis band).
    pub resume_queued: usize,
    /// Open the gate when the total undispatched work-order backlog of
    /// all active queries exceeds this bound (0 disables the check).
    pub max_inflight_wos: u64,
    /// Reject or defer shedding victims.
    pub policy: ShedPolicy,
    /// Base deferral delay (seconds) for [`ShedPolicy::Defer`].
    pub defer_base: f64,
    /// Deferral delay ceiling (seconds).
    pub defer_cap: f64,
    /// Deferral attempts before a deferred query is rejected outright.
    pub max_defers: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queued: 32,
            resume_queued: 16,
            max_inflight_wos: 0,
            policy: ShedPolicy::Reject,
            defer_base: 0.002,
            defer_cap: 0.05,
            max_defers: 8,
        }
    }
}

/// Gate counters, cheap to copy into benchmark reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals the gate saw.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Verdicts that dropped a query (arriving or queued victim).
    pub rejected: u64,
    /// Verdicts that deferred the arriving query.
    pub deferred: u64,
    /// Times the gate transitioned closed → shedding.
    pub opens: u64,
    /// Times the gate transitioned shedding → closed.
    pub closes: u64,
}

impl AdmissionStats {
    /// Folds another gate's counters into this one. Every field is an
    /// event count, so the multi-shard aggregate is the plain sum
    /// (commutative and associative — independent of shard visit order).
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.arrivals += other.arrivals;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.deferred += other.deferred;
        self.opens += other.opens;
        self.closes += other.closes;
    }
}

/// The admission gate. See the module docs for semantics.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    /// Whether the gate is currently open (shedding).
    shedding: bool,
    stats: AdmissionStats,
}

impl Admission {
    /// Creates a gate with the given limits. `resume_queued` is clamped
    /// to `max_queued` so the hysteresis band is never inverted.
    pub fn new(mut cfg: AdmissionConfig) -> Self {
        cfg.resume_queued = cfg.resume_queued.min(cfg.max_queued);
        Self { cfg, shedding: false, stats: AdmissionStats::default() }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Whether the gate is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// Forgets all state (for `Scheduler::reset`).
    pub fn reset(&mut self) {
        self.shedding = false;
        self.stats = AdmissionStats::default();
    }

    /// Queries with no threads assigned — the waiting queue the limits
    /// are measured against (the arriving query is already in `ctx`).
    fn queued(ctx: &SchedContext<'_>) -> usize {
        ctx.queries.iter().filter(|q| q.assigned_threads == 0).count()
    }

    /// Total undispatched work orders across all active queries.
    fn backlog(ctx: &SchedContext<'_>) -> u64 {
        ctx.queries
            .iter()
            .flat_map(|q| q.ops.iter())
            .map(|o| u64::from(o.undispatched_work_orders()))
            .sum()
    }

    /// The waiting query to evict: lowest priority first, then the
    /// youngest arrival (latest `arrival_time`), then the highest id —
    /// a total order, so the victim is unique and deterministic.
    fn victim(ctx: &SchedContext<'_>) -> Option<QueryId> {
        ctx.queries
            .iter()
            .filter(|q| q.assigned_threads == 0)
            .min_by(|a, b| Self::victim_key(a).partial_cmp(&Self::victim_key(b)).unwrap_or(std::cmp::Ordering::Equal))
            .map(|q| q.qid)
    }

    fn victim_key(q: &QueryRuntime) -> (i64, f64, i64) {
        // Lowest priority loses; among equals the youngest (largest
        // arrival time) loses; among those the highest id loses.
        (i64::from(q.priority), -q.arrival_time, -(q.qid.0 as i64))
    }

    /// Capped exponential deferral backoff for attempt `attempt`.
    fn defer_delay(&self, attempt: u32) -> f64 {
        (self.cfg.defer_base * 2f64.powi(attempt.min(30) as i32)).min(self.cfg.defer_cap)
    }

    /// Decides the fate of `arriving` (already present in
    /// `ctx.queries`). Pure: no RNG, no clock — deterministic replay is
    /// guaranteed under the fault-injection discipline.
    pub fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse {
        self.stats.arrivals += 1;
        let queued = Self::queued(ctx);
        let backlog_over =
            self.cfg.max_inflight_wos > 0 && Self::backlog(ctx) > self.cfg.max_inflight_wos;

        // Hysteresis state machine. The arriving query is already
        // counted in `queued`, so the high watermark compares against
        // `max_queued + 1` total entries.
        if self.shedding {
            if queued <= self.cfg.resume_queued && !backlog_over {
                self.shedding = false;
                self.stats.closes += 1;
            }
        } else if queued > self.cfg.max_queued || backlog_over {
            self.shedding = true;
            self.stats.opens += 1;
        }

        if !self.shedding {
            self.stats.admitted += 1;
            return AdmissionResponse::admit();
        }

        // Shedding: evict exactly one waiting query per arrival.
        let victim = Self::victim(ctx).unwrap_or(arriving);
        if victim == arriving {
            // The arrival itself is the least important waiter.
            match self.cfg.policy {
                ShedPolicy::Defer if attempt < self.cfg.max_defers => {
                    self.stats.deferred += 1;
                    AdmissionResponse {
                        action: AdmitAction::Defer { delay: self.defer_delay(attempt) },
                        shed: Vec::new(),
                    }
                }
                _ => {
                    self.stats.rejected += 1;
                    AdmissionResponse { action: AdmitAction::Reject, shed: Vec::new() }
                }
            }
        } else {
            // A queued query outranks the arrival for eviction; the
            // engine cannot re-queue an already-announced query, so a
            // queued victim is always a rejection.
            self.stats.admitted += 1;
            self.stats.rejected += 1;
            AdmissionResponse { action: AdmitAction::Admit, shed: vec![victim] }
        }
    }
}

impl AdmissionGate for Admission {
    fn name(&self) -> String {
        "hysteresis".into()
    }

    fn admit(
        &mut self,
        ctx: &SchedContext<'_>,
        arriving: QueryId,
        attempt: u32,
    ) -> AdmissionResponse {
        Admission::admit(self, ctx, arriving, attempt)
    }

    fn reset(&mut self) {
        Admission::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::plan::{OpKind, OpSpec, PlanBuilder};
    use lsched_engine::scheduler::QueryRuntime;
    use std::sync::Arc;

    fn runtime(qid: u64, priority: i32, arrival: f64, threads: usize) -> QueryRuntime {
        let mut b = PlanBuilder::new(&format!("q{qid}"));
        let scan =
            b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 1e4, 4, 0.01, 1e4);
        let mut q = QueryRuntime::new(QueryId(qid), Arc::new(b.finish(scan)), arrival, 8);
        q.priority = priority;
        q.assigned_threads = threads;
        q
    }

    fn ctx<'a>(queries: &'a [QueryRuntime], free: &'a [usize]) -> SchedContext<'a> {
        // Test-only: leak the hot mirror so the context can borrow it
        // for the caller's lifetime.
        let hot = &*Box::leak(Box::new(
            lsched_engine::scheduler::QueryHot::from_queries(queries),
        ));
        SchedContext {
            time: 1.0,
            total_threads: 4,
            free_threads: free.len(),
            free_thread_ids: free,
            queries,
            hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        }
    }

    #[test]
    fn under_limit_admits_everything() {
        let mut gate = Admission::new(AdmissionConfig { max_queued: 4, ..Default::default() });
        let qs = vec![runtime(0, 0, 0.0, 0), runtime(1, 0, 0.1, 0)];
        let r = gate.admit(&ctx(&qs, &[0]), QueryId(1), 0);
        assert_eq!(r, AdmissionResponse::admit());
        assert!(!gate.is_shedding());
    }

    #[test]
    fn opens_past_high_watermark_and_sheds_lowest_priority() {
        let mut gate = Admission::new(AdmissionConfig {
            max_queued: 2,
            resume_queued: 1,
            ..Default::default()
        });
        // Three waiting queries (incl. the arrival) -> over the limit.
        let qs = vec![
            runtime(0, 5, 0.0, 0),
            runtime(1, -3, 0.1, 0), // lowest priority: the victim
            runtime(2, 0, 0.2, 0),  // the arrival
        ];
        let r = gate.admit(&ctx(&qs, &[]), QueryId(2), 0);
        assert!(gate.is_shedding());
        assert_eq!(r.action, AdmitAction::Admit, "the arrival outranks the victim");
        assert_eq!(r.shed, vec![QueryId(1)]);
    }

    #[test]
    fn arriving_query_can_be_its_own_victim() {
        let mut gate = Admission::new(AdmissionConfig {
            max_queued: 2,
            resume_queued: 1,
            ..Default::default()
        });
        let qs = vec![
            runtime(0, 1, 0.0, 0),
            runtime(1, 1, 0.1, 0),
            runtime(2, -9, 0.2, 0), // the arrival is the least important
        ];
        let r = gate.admit(&ctx(&qs, &[]), QueryId(2), 0);
        assert_eq!(r.action, AdmitAction::Reject);
        assert!(r.shed.is_empty());
    }

    #[test]
    fn defer_policy_defers_then_rejects_at_cap() {
        let mut gate = Admission::new(AdmissionConfig {
            max_queued: 0,
            resume_queued: 0,
            policy: ShedPolicy::Defer,
            max_defers: 2,
            ..Default::default()
        });
        let qs = vec![runtime(0, 0, 0.0, 0), runtime(1, -1, 0.1, 0)];
        let c = ctx(&qs, &[]);
        match gate.admit(&c, QueryId(1), 0).action {
            AdmitAction::Defer { delay } => assert!(delay > 0.0),
            other => panic!("expected defer, got {other:?}"),
        }
        // Backoff grows with the attempt, capped.
        let d0 = gate.defer_delay(0);
        let d1 = gate.defer_delay(1);
        assert!(d1 > d0);
        assert!(gate.defer_delay(30) <= gate.config().defer_cap + f64::EPSILON);
        // Past the deferral budget the verdict hardens to reject.
        assert_eq!(gate.admit(&c, QueryId(1), 2).action, AdmitAction::Reject);
    }

    #[test]
    fn hysteresis_keeps_gate_open_until_low_watermark() {
        let mut gate = Admission::new(AdmissionConfig {
            max_queued: 2,
            resume_queued: 0,
            ..Default::default()
        });
        let over = vec![runtime(0, 0, 0.0, 0), runtime(1, 0, 0.1, 0), runtime(2, 0, 0.2, 0)];
        gate.admit(&ctx(&over, &[]), QueryId(2), 0);
        assert!(gate.is_shedding());
        // Two waiting (> resume_queued = 0): still shedding even though
        // it is back under the high watermark — no flapping.
        let mid = vec![runtime(3, 0, 0.3, 0), runtime(4, 0, 0.4, 0)];
        let r = gate.admit(&ctx(&mid, &[]), QueryId(4), 0);
        assert!(gate.is_shedding());
        assert_ne!(r, AdmissionResponse::admit());
        // Fully drained below the low watermark: closes.
        let low = vec![runtime(5, 0, 0.5, 1)]; // has threads: not waiting
        let r = gate.admit(&ctx(&low, &[]), QueryId(5), 0);
        assert!(!gate.is_shedding());
        assert_eq!(r, AdmissionResponse::admit());
        assert_eq!(gate.stats().opens, 1);
        assert_eq!(gate.stats().closes, 1);
    }

    #[test]
    fn backlog_limit_triggers_shedding() {
        let mut gate = Admission::new(AdmissionConfig {
            max_queued: 100,
            resume_queued: 50,
            max_inflight_wos: 3, // each runtime() plan carries 4 WOs
            ..Default::default()
        });
        let qs = vec![runtime(0, 0, 0.0, 0)];
        let r = gate.admit(&ctx(&qs, &[]), QueryId(0), 0);
        assert!(gate.is_shedding());
        assert_eq!(r.action, AdmitAction::Reject);
    }
}
