//! SelfTune (Wagner, Kohn & Neumann, SIGMOD 2021) — baseline (2) of
//! Section 7.1: a *fixed* priority-based scheduling policy whose
//! hyper-parameters are tuned per input workload with a constrained
//! optimization technique. The policy itself stays a heuristic; only its
//! knobs adapt (the paper's core contrast with LSched, which learns the
//! entire policy).
//!
//! Our stand-in keeps the published structure — a priority score over
//! (query, operator) candidates built from age, remaining size and
//! pipeline weight, plus caps on pipeline depth and thread grants — and
//! tunes the knobs by stochastic hill climbing over simulated sample
//! workloads, which plays the role of SelfTune's tuner.

use lsched_engine::scheduler::{SchedContext, SchedDecision, SchedEvent, Scheduler};
use lsched_engine::sim::{simulate, SimConfig, WorkloadItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{candidates, decide};

/// The tunable hyper-parameters of the SelfTune policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTuneParams {
    /// Priority weight on query waiting time (favors old queries).
    pub w_age: f64,
    /// Priority weight on estimated remaining work (positive favors
    /// short queries).
    pub w_size: f64,
    /// Priority weight on the candidate pipeline's own work.
    pub w_chain: f64,
    /// Maximum pipeline degree the policy will co-schedule.
    pub pipeline_cap: usize,
    /// Fraction of currently free threads granted per decision.
    pub thread_frac: f64,
}

impl Default for SelfTuneParams {
    fn default() -> Self {
        Self { w_age: 1.0, w_size: 1.0, w_chain: 0.2, pipeline_cap: 3, thread_frac: 0.4 }
    }
}

/// The SelfTune scheduler: fixed policy, tuned knobs.
#[derive(Debug, Clone)]
pub struct SelfTuneScheduler {
    /// Current hyper-parameters.
    pub params: SelfTuneParams,
}

impl SelfTuneScheduler {
    /// Creates the scheduler with the given (usually tuned) parameters.
    pub fn new(params: SelfTuneParams) -> Self {
        Self { params }
    }
}

impl Default for SelfTuneScheduler {
    fn default() -> Self {
        Self::new(SelfTuneParams::default())
    }
}

impl Scheduler for SelfTuneScheduler {
    fn name(&self) -> String {
        "selftune".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let mut cands = candidates(ctx);
        if cands.is_empty() {
            return Vec::new();
        }
        let p = self.params;
        let score = |c: &crate::common::Candidate| -> f64 {
            let q = &ctx.queries[c.query_idx];
            let age = ctx.time - q.arrival_time;
            let size = q.est_remaining_work();
            p.w_age * age - p.w_size * size + p.w_chain * c.chain_work
        };
        cands.sort_by(|a, b| score(b).total_cmp(&score(a)));
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for c in cands {
            if free == 0 {
                break;
            }
            let threads =
                (((ctx.free_threads as f64) * p.thread_frac).ceil() as usize).clamp(1, free);
            free -= threads;
            out.push(decide(
                &ctx.queries[c.query_idx],
                &c,
                c.max_degree.min(p.pipeline_cap.max(1)),
                threads,
            ));
        }
        out
    }
}

/// Tuning configuration.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Hill-climbing iterations.
    pub iterations: usize,
    /// Sample workloads evaluated per candidate parameter vector.
    pub samples: usize,
    /// Simulator configuration used for evaluation.
    pub sim: SimConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self { iterations: 20, samples: 2, sim: SimConfig::default(), seed: 0 }
    }
}

fn evaluate(params: SelfTuneParams, workloads: &[Vec<WorkloadItem>], sim: &SimConfig) -> f64 {
    let mut total = 0.0;
    for wl in workloads {
        let mut s = SelfTuneScheduler::new(params);
        let res = simulate(sim.clone(), wl, &mut s);
        total += res.avg_duration();
    }
    total / workloads.len() as f64
}

/// Tunes the policy's hyper-parameters for a workload distribution by
/// stochastic hill climbing over `sample_workloads`. Returns the best
/// parameters and their average query duration.
pub fn tune(
    sample_workloads: &[Vec<WorkloadItem>],
    cfg: &TuneConfig,
) -> (SelfTuneParams, f64) {
    assert!(!sample_workloads.is_empty());
    let workloads: Vec<_> =
        sample_workloads.iter().take(cfg.samples.max(1)).cloned().collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best = SelfTuneParams::default();
    let mut best_score = evaluate(best, &workloads, &cfg.sim);
    for _ in 0..cfg.iterations {
        let mut cand = best;
        match rng.gen_range(0..5) {
            0 => cand.w_age = (cand.w_age * rng.gen_range(0.5..2.0)).clamp(0.0, 100.0),
            1 => cand.w_size = (cand.w_size * rng.gen_range(0.5..2.0)).clamp(0.0, 100.0),
            2 => cand.w_chain = (cand.w_chain * rng.gen_range(0.5..2.0)).clamp(0.0, 100.0),
            3 => {
                cand.pipeline_cap =
                    (cand.pipeline_cap as i64 + rng.gen_range(-2..=2)).clamp(1, 8) as usize
            }
            _ => cand.thread_frac = (cand.thread_frac * rng.gen_range(0.6..1.6)).clamp(0.05, 1.0),
        }
        let score = evaluate(cand, &workloads, &cfg.sim);
        if score < best_score {
            best = cand;
            best_score = score;
        }
    }
    (best, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    #[test]
    fn selftune_completes_workloads() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 10, ArrivalPattern::Batch, 1);
        let cfg = SimConfig { num_threads: 8, ..Default::default() };
        let res = simulate(cfg, &wl, &mut SelfTuneScheduler::default());
        assert_eq!(res.outcomes.len(), 10);
    }

    #[test]
    fn tuning_never_worsens_the_objective() {
        let pool = tpch::plan_pool(&[0.5]);
        let samples: Vec<_> = (0..2)
            .map(|s| gen_workload(&pool, 8, ArrivalPattern::Batch, s))
            .collect();
        let cfg = TuneConfig {
            iterations: 8,
            samples: 2,
            sim: SimConfig { num_threads: 6, ..Default::default() },
            seed: 3,
        };
        let default_score = evaluate(SelfTuneParams::default(), &samples, &cfg.sim);
        let (tuned, tuned_score) = tune(&samples, &cfg);
        assert!(tuned_score <= default_score + 1e-9);
        assert!(tuned.pipeline_cap >= 1);
    }

    #[test]
    fn params_change_behavior() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 10, ArrivalPattern::Batch, 2);
        let cfg = SimConfig { num_threads: 8, ..Default::default() };
        let a = simulate(
            cfg.clone(),
            &wl,
            &mut SelfTuneScheduler::new(SelfTuneParams { pipeline_cap: 1, ..Default::default() }),
        );
        let b = simulate(
            cfg,
            &wl,
            &mut SelfTuneScheduler::new(SelfTuneParams { pipeline_cap: 8, ..Default::default() }),
        );
        assert_ne!(a.avg_duration(), b.avg_duration());
    }
}
