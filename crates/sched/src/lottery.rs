//! Lottery scheduling (Waldspurger & Weihl, OSDI '94 — cited by the
//! paper's related work on OS schedulers): probabilistic
//! proportional-share resource management. Each query holds tickets;
//! every thread grant is raffled among queries with schedulable work,
//! so long-run thread shares are proportional to ticket counts without
//! the deterministic bookkeeping of weighted fair queueing.

use lsched_engine::scheduler::{SchedContext, SchedDecision, SchedEvent, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::candidates;

/// Probabilistic proportional-share scheduler.
#[derive(Debug, Clone)]
pub struct LotteryScheduler {
    /// Tickets per query (by `QueryId` index); defaults to 1.
    pub tickets: Vec<f64>,
    rng: StdRng,
}

impl LotteryScheduler {
    /// Creates a lottery scheduler with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { tickets: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }

    fn tickets_of(&self, qid: u64) -> f64 {
        self.tickets.get(qid as usize).copied().unwrap_or(1.0).max(1e-9)
    }
}

impl Default for LotteryScheduler {
    fn default() -> Self {
        Self::new(0x107e)
    }
}

impl Scheduler for LotteryScheduler {
    fn name(&self) -> String {
        "lottery".into()
    }

    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let cands = candidates(ctx);
        if cands.is_empty() {
            return Vec::new();
        }
        // Raffle free threads in small grants; each draw picks a query
        // proportionally to tickets, then one of its candidate roots.
        let mut out: Vec<SchedDecision> = Vec::new();
        let mut free = ctx.free_threads;
        let grant = (ctx.free_threads / 4).max(1);
        let mut used_roots: Vec<(usize, usize)> = Vec::new();
        while free > 0 {
            let open: Vec<&crate::common::Candidate> = cands
                .iter()
                .filter(|c| !used_roots.contains(&(c.query_idx, c.root.0)))
                .collect();
            if open.is_empty() {
                break;
            }
            let total: f64 =
                open.iter().map(|c| self.tickets_of(ctx.queries[c.query_idx].qid.0)).sum();
            let mut draw = self.rng.gen_range(0.0..total);
            let mut chosen = open[open.len() - 1];
            for c in &open {
                draw -= self.tickets_of(ctx.queries[c.query_idx].qid.0);
                if draw <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            let threads = grant.min(free);
            free -= threads;
            used_roots.push((chosen.query_idx, chosen.root.0));
            out.push(SchedDecision {
                query: ctx.queries[chosen.query_idx].qid,
                root: chosen.root,
                pipeline_degree: chosen.max_degree,
                threads,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsched_engine::sim::{simulate, SimConfig};
    use lsched_workloads::tpch;
    use lsched_workloads::workload::{gen_workload, ArrivalPattern};

    #[test]
    fn lottery_completes_workloads() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 10, ArrivalPattern::Batch, 2);
        let res = simulate(
            SimConfig { num_threads: 8, ..Default::default() },
            &wl,
            &mut LotteryScheduler::default(),
        );
        assert_eq!(res.outcomes.len(), 10);
    }

    #[test]
    fn weighted_tickets_skew_completion_order() {
        // Give query 0 overwhelming tickets; across seeds it should
        // finish earlier (on average) than with uniform tickets.
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 8, ArrivalPattern::Batch, 3);
        let finish_pos_of_q0 = |tickets: Vec<f64>| -> f64 {
            let mut total = 0.0;
            for seed in 0..4 {
                let mut s = LotteryScheduler::new(seed);
                s.tickets = tickets.clone();
                let res = simulate(
                    SimConfig { num_threads: 6, seed, ..Default::default() },
                    &wl,
                    &mut s,
                );
                let pos = res.outcomes.iter().position(|o| o.qid.0 == 0).unwrap();
                total += pos as f64;
            }
            total / 4.0
        };
        let uniform = finish_pos_of_q0(vec![1.0; 8]);
        let mut skewed = vec![1.0; 8];
        skewed[0] = 1000.0;
        let favored = finish_pos_of_q0(skewed);
        assert!(
            favored <= uniform,
            "favored query finished later ({favored}) than uniform ({uniform})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let pool = tpch::plan_pool(&[0.5]);
        let wl = gen_workload(&pool, 6, ArrivalPattern::Batch, 4);
        let cfg = SimConfig { num_threads: 6, seed: 9, ..Default::default() };
        let a = simulate(cfg.clone(), &wl, &mut LotteryScheduler::new(1)).avg_duration();
        let b = simulate(cfg, &wl, &mut LotteryScheduler::new(1)).avg_duration();
        assert_eq!(a, b);
    }
}
