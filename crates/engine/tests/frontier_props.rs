//! Equivalence proptests for the incremental scheduling frontier.
//!
//! The simulator and the executor maintain per-query scheduling state
//! incrementally (pending-producer counters plus a cached sorted
//! frontier; see `QueryRuntime::after_transition`). The legacy
//! full-rescan path (`refresh_statuses`) is retained as the reference
//! oracle. These tests pin the two bit-identical:
//!
//! 1. on random DAGs under random transition sequences (start, work-order
//!    completion, forced finish, fault revert), the incremental frontier
//!    must equal what a from-scratch rescan computes;
//! 2. whole simulation runs — fault-free and under
//!    `FaultPlan::standard_matrix` — must produce bit-identical
//!    `SimResult`s with `SimConfig::reference_mode` on and off.

use std::sync::Arc;

use proptest::prelude::*;

use lsched_engine::fault::FaultPlan;
use lsched_engine::plan::{OpId, OpKind, OpSpec, PhysicalPlan, PlanBuilder};
use lsched_engine::scheduler::{
    OpStatus, QueryId, QueryRuntime, SchedContext, SchedDecision, SchedEvent, Scheduler,
};
use lsched_engine::sim::{try_simulate, SimConfig, SimResult, WorkloadItem};
use lsched_engine::stats::WorkOrderStats;

/// Builds a random connected binary tree rooted at op 0: op `i` (i > 0)
/// produces into an earlier op picked by `links[i-1]` among those with
/// fewer than two producers — always possible, since ops `0..i` offer
/// `2i` producer slots and only `i-1` are taken. `npb[i]` sets the
/// edge's pipeline-breaking flag.
fn random_plan(n: usize, links: &[usize], npb: &[bool], wos: &[u32]) -> Arc<PhysicalPlan> {
    let mut b = PlanBuilder::new("prop");
    let ids: Vec<OpId> = (0..n)
        .map(|i| {
            b.add_op(
                if i == 0 { OpKind::Select } else { OpKind::TableScan },
                OpSpec::Synthetic,
                vec![0],
                vec![0],
                1e3,
                wos[i % wos.len()].max(1),
                0.005,
                1e3,
            )
        })
        .collect();
    let mut in_degree = vec![0usize; n];
    for i in 1..n {
        let candidates: Vec<usize> = (0..i).filter(|&j| in_degree[j] < 2).collect();
        let consumer = candidates[links[(i - 1) % links.len()] % candidates.len()];
        in_degree[consumer] += 1;
        b.connect(ids[i], ids[consumer], npb[i % npb.len()]);
    }
    Arc::new(b.finish(ids[0]))
}

/// The from-scratch oracle: clone the runtime, recompute every
/// Blocked/Schedulable status by full rescan, and read the schedulable
/// set off the statuses.
fn oracle_frontier(q: &QueryRuntime) -> (Vec<OpId>, Vec<OpStatus>) {
    let mut clone = q.clone();
    clone.refresh_statuses();
    (clone.schedulable_ops_scan(), clone.ops.iter().map(|o| o.status).collect())
}

fn dummy_stats() -> WorkOrderStats {
    WorkOrderStats { duration: 0.004, memory: 900.0, output_rows: 10, completed_at: 1.0 }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Incremental frontier == full-rescan oracle after every single
    /// transition of a random action sequence over a random DAG,
    /// including mid-chain forced starts and fault reverts.
    #[test]
    fn incremental_frontier_matches_rescan_oracle(
        n in 2usize..11,
        links in prop::collection::vec(0usize..64, 16),
        npb in prop::collection::vec(any::<bool>(), 8),
        wos in prop::collection::vec(1u32..4, 4),
        actions in prop::collection::vec((0usize..64, 0u8..4), 0..80),
    ) {
        let plan = random_plan(n, &links, &npb, &wos);
        let mut q = QueryRuntime::new(QueryId(0), plan, 0.0, 4);

        for (pick, kind) in actions {
            let op = OpId(pick % n);
            let status = q.ops[op.0].status;
            match kind {
                // Start: legal on Schedulable ops and on Blocked chain
                // members (deeper pipeline ops started in one decision).
                0 if matches!(status, OpStatus::Schedulable | OpStatus::Blocked) => {
                    q.mark_running(op);
                    q.ops[op.0].dispatched_work_orders += 1;
                }
                // Work-order completion (last one flips to Finished).
                1 if status == OpStatus::Running => {
                    if q.ops[op.0].dispatched_work_orders == 0 {
                        q.ops[op.0].dispatched_work_orders += 1;
                    }
                    q.observe_wo_completion(op, &dummy_stats());
                }
                // Exact-finish retirement without a final completion.
                2 if status == OpStatus::Running => {
                    let rt = &mut q.ops[op.0];
                    rt.total_work_orders = rt.completed_work_orders;
                    rt.dispatched_work_orders = 0;
                    q.force_finish(op);
                }
                // Fault revert: pipeline torn down mid-run.
                3 if status == OpStatus::Running => {
                    q.ops[op.0].dispatched_work_orders = 0;
                    q.revert_from_running(op);
                }
                _ => continue,
            }

            let (oracle, statuses) = oracle_frontier(&q);
            prop_assert_eq!(
                q.schedulable_ops(), oracle.as_slice(),
                "frontier diverged from rescan oracle"
            );
            let live: Vec<OpStatus> = q.ops.iter().map(|o| o.status).collect();
            prop_assert_eq!(live, statuses, "statuses diverged from rescan oracle");
            prop_assert_eq!(q.has_schedulable(), !q.schedulable_ops().is_empty());
            // The frontier is sorted and duplicate-free.
            prop_assert!(q.schedulable_ops().windows(2).all(|w| w[0] < w[1]));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The structure-of-arrays hot mirror, maintained incrementally via
    /// `QueryHot::push`/`remove`/`sync`, matches the from-scratch
    /// struct-walking oracle (`QueryHot::from_queries`) column for
    /// column after every step of a random admission / transition /
    /// retirement sequence.
    #[test]
    fn soa_hot_mirror_matches_struct_oracle(
        links in prop::collection::vec(0usize..64, 16),
        npb in prop::collection::vec(any::<bool>(), 8),
        wos in prop::collection::vec(1u32..4, 4),
        actions in prop::collection::vec((0usize..64, 0u8..8), 0..80),
    ) {
        use lsched_engine::scheduler::QueryHot;

        let mut queries: Vec<QueryRuntime> = Vec::new();
        let mut hot = QueryHot::new();
        let mut next_qid = 0u64;

        for (step, (pick, kind)) in actions.into_iter().enumerate() {
            match kind {
                // Admission: a fresh random plan joins the tail.
                0 | 1 => {
                    let n = 2 + (pick % 6);
                    let plan = random_plan(n, &links[pick % 8..], &npb, &wos);
                    queries.push(QueryRuntime::new(QueryId(next_qid), plan, step as f64, 4));
                    hot.push(queries.last().unwrap());
                    next_qid += 1;
                }
                // Retirement: one query leaves mid-flight.
                2 if !queries.is_empty() => {
                    let qi = pick % queries.len();
                    queries.remove(qi);
                    hot.remove(qi);
                }
                // Deadline / priority / thread-grant churn: hot-column
                // sources that change without any frontier transition.
                3 if !queries.is_empty() => {
                    let qi = pick % queries.len();
                    let q = &mut queries[qi];
                    q.deadline = if pick % 3 == 0 { None } else { Some(step as f64 + 1.0) };
                    q.priority = (pick % 5) as i32 - 2;
                    q.assigned_threads = pick % 3;
                    hot.sync(qi, &queries[qi]);
                }
                // Frontier transitions (start / complete / finish /
                // revert), mirroring the rescan-oracle test above.
                _ if !queries.is_empty() => {
                    let qi = pick % queries.len();
                    let q = &mut queries[qi];
                    let op = OpId(pick % q.ops.len());
                    let status = q.ops[op.0].status;
                    match kind {
                        4 if matches!(status, OpStatus::Schedulable | OpStatus::Blocked) => {
                            q.mark_running(op);
                            q.ops[op.0].dispatched_work_orders += 1;
                            q.assigned_threads += 1;
                        }
                        5 if status == OpStatus::Running => {
                            if q.ops[op.0].dispatched_work_orders == 0 {
                                q.ops[op.0].dispatched_work_orders += 1;
                            }
                            q.observe_wo_completion(op, &dummy_stats());
                        }
                        6 if status == OpStatus::Running => {
                            let rt = &mut q.ops[op.0];
                            rt.total_work_orders = rt.completed_work_orders;
                            rt.dispatched_work_orders = 0;
                            q.force_finish(op);
                        }
                        7 if status == OpStatus::Running => {
                            q.ops[op.0].dispatched_work_orders = 0;
                            q.revert_from_running(op);
                            q.assigned_threads = q.assigned_threads.saturating_sub(1);
                        }
                        _ => continue,
                    }
                    if q.ops.iter().all(|o| o.status == OpStatus::Finished) {
                        q.finish_time = Some(step as f64);
                    }
                    hot.sync(qi, &queries[qi]);
                }
                _ => continue,
            }

            let oracle = QueryHot::from_queries(&queries);
            prop_assert_eq!(hot.len(), oracle.len(), "row count diverged");
            prop_assert_eq!(&hot.status, &oracle.status, "status column diverged");
            prop_assert_eq!(
                &hot.remaining_wos, &oracle.remaining_wos,
                "remaining-work column diverged"
            );
            prop_assert_eq!(
                &hot.frontier_len, &oracle.frontier_len,
                "frontier-cursor column diverged"
            );
            let live: Vec<u64> = hot.deadline.iter().map(|d| d.to_bits()).collect();
            let want: Vec<u64> = oracle.deadline.iter().map(|d| d.to_bits()).collect();
            prop_assert_eq!(live, want, "deadline column diverged");
            prop_assert_eq!(&hot.priority, &oracle.priority, "priority column diverged");
            prop_assert_eq!(
                hot.n_schedulable(), oracle.n_schedulable(),
                "schedulable counter diverged"
            );
            prop_assert_eq!(hot.any_schedulable(), oracle.any_schedulable());
        }
    }
}

/// Greedy test policy: schedules every schedulable root it sees, FIFO
/// across queries, splitting free threads.
struct GreedyFifo;

impl Scheduler for GreedyFifo {
    fn name(&self) -> String {
        "greedy_fifo_props".into()
    }
    fn on_event(&mut self, ctx: &SchedContext<'_>, _ev: &SchedEvent) -> Vec<SchedDecision> {
        let mut out = Vec::new();
        let mut free = ctx.free_threads;
        for q in ctx.queries {
            for &root in q.schedulable_ops() {
                if free == 0 {
                    return out;
                }
                let threads = (free / 2).max(1);
                free -= threads;
                out.push(SchedDecision {
                    query: q.qid,
                    root,
                    pipeline_degree: q.plan.longest_npb_chain(root),
                    threads,
                });
            }
        }
        out
    }
}

/// Field-by-field `SimResult` identity, excluding the one legitimately
/// nondeterministic field (`sched_wall_time` is wall-clock).
fn assert_bit_identical(a: &SimResult, b: &SimResult) -> Result<(), String> {
    prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    prop_assert_eq!(a.sched_invocations, b.sched_invocations);
    prop_assert_eq!(a.sched_decisions, b.sched_decisions);
    prop_assert_eq!(a.sched_rejected, b.sched_rejected);
    prop_assert_eq!(a.fallback_decisions, b.fallback_decisions);
    prop_assert_eq!(a.total_work_orders, b.total_work_orders);
    prop_assert_eq!(a.events_processed, b.events_processed);
    prop_assert_eq!(a.fault_summary, b.fault_summary);
    prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
    prop_assert_eq!(a.aborted.len(), b.aborted.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes).chain(a.aborted.iter().zip(&b.aborted)) {
        prop_assert_eq!(x.qid, y.qid);
        prop_assert_eq!(&x.name, &y.name);
        prop_assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
        prop_assert_eq!(x.finish.to_bits(), y.finish.to_bits());
        prop_assert_eq!(x.duration.to_bits(), y.duration.to_bits());
    }
    Ok(())
}

fn random_workload(
    queries: usize,
    links: &[usize],
    npb: &[bool],
    wos: &[u32],
) -> Vec<WorkloadItem> {
    (0..queries)
        .map(|i| WorkloadItem::new(i as f64 * 0.02, random_plan(2 + i % 7, &links[i % 8..], npb, wos)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Fault-free runs: the overhauled event loop (id map, pipeline
    /// lists, doomed bitset, incremental frontier, scratch reuse) is
    /// bit-identical to the legacy reference loop.
    #[test]
    fn sim_result_identical_fault_free(
        seed in 0u64..1000,
        threads in 2usize..9,
        links in prop::collection::vec(0usize..64, 16),
        npb in prop::collection::vec(any::<bool>(), 8),
        wos in prop::collection::vec(1u32..5, 4),
    ) {
        let wl = random_workload(8, &links, &npb, &wos);
        let cfg = SimConfig { num_threads: threads, seed, ..Default::default() };
        let fast = try_simulate(cfg.clone(), &wl, &mut GreedyFifo).unwrap();
        let reference = try_simulate(
            SimConfig { reference_mode: true, ..cfg },
            &wl,
            &mut GreedyFifo,
        )
        .unwrap();
        assert_bit_identical(&fast, &reference)?;
    }

    /// Under the standard fault matrix (worker loss re-exposing work
    /// orders, transient failures with retry, stragglers, mid-flight
    /// cancellation tearing pipelines down), the incremental frontier
    /// still tracks the rescan loop bit for bit.
    #[test]
    fn sim_result_identical_under_fault_matrix(
        seed in 0u64..1000,
        links in prop::collection::vec(0usize..64, 16),
        npb in prop::collection::vec(any::<bool>(), 8),
        wos in prop::collection::vec(2u32..6, 4),
    ) {
        let wl = random_workload(10, &links, &npb, &wos);
        let threads = 6;
        let base = SimConfig { num_threads: threads, seed, ..Default::default() };
        let horizon = try_simulate(base.clone(), &wl, &mut GreedyFifo).unwrap().makespan;
        let faults = FaultPlan::standard_matrix(seed, threads, wl.len(), horizon);
        let cfg = SimConfig { faults: Some(faults), ..base };
        let fast = try_simulate(cfg.clone(), &wl, &mut GreedyFifo).unwrap();
        let reference = try_simulate(
            SimConfig { reference_mode: true, ..cfg },
            &wl,
            &mut GreedyFifo,
        )
        .unwrap();
        prop_assert!(fast.outcomes.len() + fast.aborted.len() == wl.len(), "conservation");
        assert_bit_identical(&fast, &reference)?;
    }
}
