//! Property tests for the relational work-order operators: algebraic
//! identities that must hold for arbitrary data and block layouts.

use lsched_engine::block::{blocks_from_columns, Block, Column};
use lsched_engine::expr::{CmpOp, Predicate, ScalarExpr};
use lsched_engine::ops::{execute_work_order, OpExecState, WorkOrderInput};
use lsched_engine::plan::{AggFunc, OpId, OpKind, OpSpec, PhysicalPlan, PlanBuilder};
use lsched_engine::Catalog;
use proptest::prelude::*;

fn select_plan(pred: Predicate) -> PhysicalPlan {
    let mut b = PlanBuilder::new("p");
    let src = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
    let sel = b.add_op(OpKind::Select, OpSpec::Select { predicate: pred.clone() }, vec![], vec![], 1.0, 1, 0.1, 1.0);
    let sel2 = b.add_op(OpKind::Select, OpSpec::Select { predicate: pred }, vec![], vec![], 1.0, 1, 0.1, 1.0);
    b.connect(src, sel, true);
    b.connect(sel, sel2, true);
    b.finish(sel2)
}

fn run_select(plan: &PhysicalPlan, states: &[OpExecState], op: usize, child: usize, idx: usize) -> u64 {
    let cat = Catalog::new();
    execute_work_order(
        &cat,
        plan,
        states,
        OpId(op),
        &WorkOrderInput::ChildBlock { child: OpId(child), idx },
    )
    .output_rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// σ_p(σ_p(B)) == σ_p(B): selection is idempotent.
    #[test]
    fn select_is_idempotent(
        data in prop::collection::vec(-100i64..100, 1..60),
        threshold in -100i64..100,
    ) {
        let pred = Predicate::col_cmp(0, CmpOp::Gt, threshold);
        let plan = select_plan(pred.clone());
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        states[0].output.lock().push(Block::new(0, vec![Column::I64(data.clone())]));
        let first = run_select(&plan, &states, 1, 0, 0);
        let second = run_select(&plan, &states, 2, 1, 0);
        prop_assert_eq!(first, second);
        let expected = data.iter().filter(|&&v| v > threshold).count() as u64;
        prop_assert_eq!(first, expected);
    }

    /// Selection commutes with block splitting: filtering the whole
    /// column equals the union of filtering each block.
    #[test]
    fn select_commutes_with_block_split(
        data in prop::collection::vec(-100i64..100, 1..80),
        threshold in -100i64..100,
        rows_per_block in 1usize..40,
    ) {
        let pred = Predicate::col_cmp(0, CmpOp::Le, threshold);
        let plan = select_plan(pred.clone());
        // Whole-column run.
        let whole: u64 = {
            let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
            states[0].output.lock().push(Block::new(0, vec![Column::I64(data.clone())]));
            run_select(&plan, &states, 1, 0, 0)
        };
        // Split run.
        let blocks = blocks_from_columns(vec![Column::I64(data.clone())], rows_per_block);
        let split: u64 = {
            let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
            {
                let mut out = states[0].output.lock();
                for b in blocks {
                    out.push(b);
                }
            }
            let n = states[0].output_len();
            (0..n).map(|i| run_select(&plan, &states, 1, 0, i)).sum()
        };
        prop_assert_eq!(whole, split);
    }

    /// Aggregation totals are invariant under block layout: SUM and
    /// COUNT over any block split equal the whole-column result.
    #[test]
    fn aggregate_invariant_under_block_layout(
        data in prop::collection::vec((-50i64..50, -100i64..100), 1..80),
        rows_per_block in 1usize..32,
    ) {
        let groups: Vec<i64> = data.iter().map(|d| d.0).collect();
        let vals: Vec<i64> = data.iter().map(|d| d.1).collect();

        let mut b = PlanBuilder::new("agg");
        let src = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let agg = b.add_op(
            OpKind::Aggregate,
            OpSpec::Aggregate {
                group_by: vec![0],
                aggs: vec![(AggFunc::Sum, ScalarExpr::col(1)), (AggFunc::Count, ScalarExpr::col(0))],
            },
            vec![], vec![], 1.0, 1, 0.1, 1.0,
        );
        let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::FinalizeAggregate, vec![], vec![], 1.0, 1, 0.1, 1.0);
        b.connect(src, agg, true);
        b.connect(agg, fin, false);
        let plan = b.finish(fin);
        let cat = Catalog::new();

        let run = |rows_per_block: usize| -> Vec<Vec<lsched_engine::Value>> {
            let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
            let blocks = blocks_from_columns(
                vec![Column::I64(groups.clone()), Column::I64(vals.clone())],
                rows_per_block,
            );
            {
                let mut out = states[0].output.lock();
                for blk in blocks {
                    out.push(blk);
                }
            }
            let n = states[0].output_len();
            for i in 0..n {
                execute_work_order(&cat, &plan, &states, OpId(1), &WorkOrderInput::ChildBlock { child: OpId(0), idx: i });
            }
            execute_work_order(&cat, &plan, &states, OpId(2), &WorkOrderInput::AllInputs);
            states[2].collect_rows()
        };

        let whole = run(data.len());
        let split = run(rows_per_block);
        prop_assert_eq!(whole, split);
    }

    /// Hash-join output size equals the sum over probe rows of matching
    /// build-row counts (bag semantics), regardless of insertion order.
    #[test]
    fn hash_join_counts_match_reference(
        build_keys in prop::collection::vec(0i64..12, 0..40),
        probe_keys in prop::collection::vec(0i64..12, 0..40),
    ) {
        let mut b = PlanBuilder::new("join");
        let l = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let r = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let bh = b.add_op(OpKind::BuildHash, OpSpec::BuildHash { keys: vec![0] }, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let ph = b.add_op(OpKind::ProbeHash, OpSpec::ProbeHash { keys: vec![0] }, vec![], vec![], 1.0, 1, 0.1, 1.0);
        b.connect(l, bh, true);
        b.connect(bh, ph, false);
        b.connect(r, ph, true);
        let plan = b.finish(ph);
        let cat = Catalog::new();
        let states: Vec<OpExecState> = (0..4).map(|_| OpExecState::new()).collect();
        if !build_keys.is_empty() {
            states[0].output.lock().push(Block::new(0, vec![Column::I64(build_keys.clone())]));
            execute_work_order(&cat, &plan, &states, OpId(2), &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 });
        } else {
            // Initialize an empty build table.
            states[2].hash_table.lock().get_or_insert_with(Default::default);
        }
        let got = if probe_keys.is_empty() {
            0
        } else {
            states[1].output.lock().push(Block::new(0, vec![Column::I64(probe_keys.clone())]));
            execute_work_order(&cat, &plan, &states, OpId(3), &WorkOrderInput::ChildBlock { child: OpId(1), idx: 0 }).output_rows
        };
        let want: u64 = probe_keys
            .iter()
            .map(|pk| build_keys.iter().filter(|bk| *bk == pk).count() as u64)
            .sum();
        prop_assert_eq!(got, want);
    }

    /// Sorting produces a permutation in non-decreasing key order, for
    /// any block split.
    #[test]
    fn sort_produces_ordered_permutation(
        data in prop::collection::vec(-1000i64..1000, 1..60),
        rows_per_block in 1usize..24,
    ) {
        let mut b = PlanBuilder::new("sort");
        let src = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let run_gen = b.add_op(
            OpKind::SortRunGeneration,
            OpSpec::SortRunGeneration { cols: vec![0], desc: vec![false] },
            vec![], vec![], 1.0, 1, 0.1, 1.0,
        );
        let merge = b.add_op(
            OpKind::SortMergeRun,
            OpSpec::SortMergeRun { cols: vec![0], desc: vec![false] },
            vec![], vec![], 1.0, 1, 0.1, 1.0,
        );
        b.connect(src, run_gen, true);
        b.connect(run_gen, merge, false);
        let plan = b.finish(merge);
        let cat = Catalog::new();
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        {
            let mut out = states[0].output.lock();
            for blk in blocks_from_columns(vec![Column::I64(data.clone())], rows_per_block) {
                out.push(blk);
            }
        }
        let n = states[0].output_len();
        for i in 0..n {
            execute_work_order(&cat, &plan, &states, OpId(1), &WorkOrderInput::ChildBlock { child: OpId(0), idx: i });
        }
        execute_work_order(&cat, &plan, &states, OpId(2), &WorkOrderInput::AllInputs);
        let got: Vec<i64> = states[2]
            .collect_rows()
            .into_iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
