//! Physical query plans: DAGs of work-order-based operators.
//!
//! A [`PhysicalPlan`] mirrors what Quickstep's optimizer hands its
//! scheduler (Section 2 of the paper): a DAG of physical operators where
//! each operator will be expanded into one work order per input block, and
//! each edge is annotated with whether it is *pipeline breaking* (the
//! consumer must wait for the producer to finish — e.g. BuildHash →
//! ProbeHash) or *non-pipeline-breaking* (the consumer can run while the
//! producer streams blocks — e.g. Select → Select), plus the pipeline
//! direction. Data flows from child operators (producers, e.g. scans at
//! the leaves) to parent operators (consumers, with the plan root on top).

use crate::catalog::TableId;
use crate::expr::{Predicate, ScalarExpr};

/// Identifier of an operator within one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// The 29 work-order-based operator kinds (matching the operator
/// inventory Quickstep exposes to its scheduler, Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    TableScan,
    Select,
    Project,
    BuildHash,
    ProbeHash,
    DestroyHash,
    NestedLoopsJoin,
    IndexScan,
    IndexNestedLoopsJoin,
    MergeJoin,
    Aggregate,
    FinalizeAggregate,
    InitializeAggregation,
    DestroyAggregationState,
    SortRunGeneration,
    SortMergeRun,
    TopK,
    Limit,
    HashDistinct,
    Union,
    UnionAll,
    Intersect,
    Except,
    Materialize,
    TableGenerator,
    WindowAggregate,
    Insert,
    Update,
    Delete,
}

impl OpKind {
    /// Number of operator kinds (the O-TY one-hot width).
    pub const COUNT: usize = 29;

    /// Dense index of the kind, for one-hot encodings.
    pub fn index(self) -> usize {
        use OpKind::*;
        match self {
            TableScan => 0,
            Select => 1,
            Project => 2,
            BuildHash => 3,
            ProbeHash => 4,
            DestroyHash => 5,
            NestedLoopsJoin => 6,
            IndexScan => 7,
            IndexNestedLoopsJoin => 8,
            MergeJoin => 9,
            Aggregate => 10,
            FinalizeAggregate => 11,
            InitializeAggregation => 12,
            DestroyAggregationState => 13,
            SortRunGeneration => 14,
            SortMergeRun => 15,
            TopK => 16,
            Limit => 17,
            HashDistinct => 18,
            Union => 19,
            UnionAll => 20,
            Intersect => 21,
            Except => 22,
            Materialize => 23,
            TableGenerator => 24,
            WindowAggregate => 25,
            Insert => 26,
            Update => 27,
            Delete => 28,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        use OpKind::*;
        match self {
            TableScan => "table_scan",
            Select => "select",
            Project => "project",
            BuildHash => "build_hash",
            ProbeHash => "probe_hash",
            DestroyHash => "destroy_hash",
            NestedLoopsJoin => "nested_loops_join",
            IndexScan => "index_scan",
            IndexNestedLoopsJoin => "index_nlj",
            MergeJoin => "merge_join",
            Aggregate => "aggregate",
            FinalizeAggregate => "finalize_aggregate",
            InitializeAggregation => "init_aggregation",
            DestroyAggregationState => "destroy_agg_state",
            SortRunGeneration => "sort_run_gen",
            SortMergeRun => "sort_merge_run",
            TopK => "top_k",
            Limit => "limit",
            HashDistinct => "hash_distinct",
            Union => "union",
            UnionAll => "union_all",
            Intersect => "intersect",
            Except => "except",
            Materialize => "materialize",
            TableGenerator => "table_generator",
            WindowAggregate => "window_aggregate",
            Insert => "insert",
            Update => "update",
            Delete => "delete",
        }
    }
}

/// Aggregate functions supported by the executable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of an expression.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

/// The executable payload of an operator.
///
/// Operators built for the real engine carry full execution details;
/// simulator-only plans (e.g. the synthetic JOB workload) use
/// [`OpSpec::Synthetic`] and rely purely on the cardinality estimates.
#[derive(Debug, Clone)]
pub enum OpSpec {
    /// Scan a base table, optionally filtering and projecting per block.
    TableScan {
        /// Table to scan.
        table: TableId,
        /// Filter applied during the scan.
        predicate: Predicate,
        /// Column positions to keep (`None` keeps all).
        project: Option<Vec<usize>>,
    },
    /// Zone-map index scan: a range predicate on one integer column,
    /// with per-block min/max pruning so work orders over blocks outside
    /// the range return without reading tuples (the cheap-scan behaviour
    /// of index scans in block-based analytical systems).
    IndexScan {
        /// Table to scan.
        table: TableId,
        /// Indexed (integer) column position.
        col: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Column positions to keep (`None` keeps all).
        project: Option<Vec<usize>>,
    },
    /// Filter the child's output blocks.
    Select {
        /// Filter predicate over the child's output schema.
        predicate: Predicate,
    },
    /// Compute projection expressions over the child's output blocks.
    Project {
        /// Output expressions over the child's output schema.
        exprs: Vec<ScalarExpr>,
    },
    /// Build a hash table over the child's output, keyed by columns.
    BuildHash {
        /// Key column positions in the child's output schema.
        keys: Vec<usize>,
    },
    /// Probe a previously built hash table with the probe child's blocks.
    ProbeHash {
        /// Key column positions in the probe child's output schema.
        keys: Vec<usize>,
    },
    /// Per-block partial aggregation.
    Aggregate {
        /// Group-by column positions (empty for scalar aggregates).
        group_by: Vec<usize>,
        /// Aggregate functions over expressions.
        aggs: Vec<(AggFunc, ScalarExpr)>,
    },
    /// Merge partial aggregation states into final results.
    FinalizeAggregate,
    /// Per-block sorted-run generation.
    SortRunGeneration {
        /// Sort key column positions.
        cols: Vec<usize>,
        /// Per-key descending flags.
        desc: Vec<bool>,
    },
    /// Merge sorted runs into one output stream.
    SortMergeRun {
        /// Sort key column positions.
        cols: Vec<usize>,
        /// Per-key descending flags.
        desc: Vec<bool>,
    },
    /// Keep the top `k` rows by one column.
    TopK {
        /// Number of rows to keep.
        k: usize,
        /// Ranking column position.
        col: usize,
        /// Whether larger values rank first.
        desc: bool,
    },
    /// Join two children with an arbitrary predicate.
    NestedLoopsJoin {
        /// Join predicate over the concatenated (left ‖ right) schema.
        predicate: Predicate,
    },
    /// Concatenate children outputs (bag semantics).
    UnionAll,
    /// Materialize the child's output (barrier).
    Materialize,
    /// No executable payload; only valid on the simulator.
    Synthetic,
}

/// A directed plan edge: data flows `child` → `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Producer operator.
    pub child: OpId,
    /// Consumer operator.
    pub parent: OpId,
    /// True when the consumer can start before the producer finishes
    /// (the E-NPB feature: 1 = non-pipeline-breaking).
    pub non_pipeline_breaking: bool,
}

/// One physical operator in a plan.
#[derive(Debug, Clone)]
pub struct PlanOp {
    /// Operator id within the plan.
    pub id: OpId,
    /// Operator kind (drives the O-TY feature).
    pub kind: OpKind,
    /// Executable payload.
    pub spec: OpSpec,
    /// Global indices of the base relations feeding this operator
    /// (directly or transitively) — the O-IN feature.
    pub input_tables: Vec<usize>,
    /// Global column indices used by the operator — the O-COLS feature.
    pub columns_used: Vec<usize>,
    /// Optimizer cardinality estimate of the operator's input rows.
    pub est_rows: f64,
    /// Planned number of work orders (== input block count).
    pub num_work_orders: u32,
    /// Which blocks of the (base) input the work orders touch; empty for
    /// intermediate operators. Drives the O-BLCKS feature.
    pub block_bitmap: Vec<bool>,
    /// Optimizer estimate of the duration of one work order (seconds).
    pub est_wo_duration: f64,
    /// Optimizer estimate of the memory of one work order (bytes).
    pub est_wo_memory: f64,
}

/// A physical query plan DAG.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Human-readable query name (e.g. `"tpch_q03"`).
    pub name: String,
    /// Operators, indexed by [`OpId`].
    pub ops: Vec<PlanOp>,
    /// Edges (child → parent).
    pub edges: Vec<PlanEdge>,
    /// The plan root (final consumer).
    pub root: OpId,
    /// Lazily computed per-op [`Self::longest_npb_chain`] lengths. Plans
    /// are immutable once built, and the chain length is consulted per
    /// scheduling decision by both validation and guarding.
    npb_chain_cache: std::sync::OnceLock<Vec<usize>>,
    /// CSR adjacency over `edges`, built once at [`PlanBuilder::finish`]:
    /// op `i`'s children occupy `child_adj[child_off[i]..child_off[i+1]]`
    /// (and likewise for parents), in `edges` order, so the per-event
    /// dependency walks of the simulator and executor touch slices
    /// instead of filtering the whole edge list into fresh `Vec`s.
    child_off: Vec<u32>,
    child_adj: Vec<AdjEntry>,
    parent_off: Vec<u32>,
    parent_adj: Vec<AdjEntry>,
}

/// One CSR adjacency entry: the neighbouring operator and whether the
/// connecting edge is non-pipeline-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    /// The neighbour (child for `children`, parent for `parents`).
    pub op: OpId,
    /// The connecting edge's E-NPB flag.
    pub non_pipeline_breaking: bool,
}

/// Builds one direction of the CSR adjacency. `key` selects the op the
/// row is indexed by; `val` the op stored in the entry.
fn build_csr(
    n: usize,
    edges: &[PlanEdge],
    key: impl Fn(&PlanEdge) -> OpId,
    val: impl Fn(&PlanEdge) -> OpId,
) -> (Vec<u32>, Vec<AdjEntry>) {
    let mut off = vec![0u32; n + 1];
    for e in edges {
        off[key(e).0 + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut adj = vec![AdjEntry { op: OpId(0), non_pipeline_breaking: false }; edges.len()];
    let mut cursor = off.clone();
    // Filling in edge order keeps each row in `edges` order, matching the
    // enumeration order of the legacy `children_of`/`parents_of`.
    for e in edges {
        let k = key(e).0;
        adj[cursor[k] as usize] =
            AdjEntry { op: val(e), non_pipeline_breaking: e.non_pipeline_breaking };
        cursor[k] += 1;
    }
    (off, adj)
}

impl PhysicalPlan {
    /// Assembles a plan (building the CSR adjacency) without validating
    /// structural invariants. [`PlanBuilder::finish`] is the validating
    /// front door; this exists for tests that need malformed plans.
    pub fn from_parts_unvalidated(
        name: String,
        ops: Vec<PlanOp>,
        edges: Vec<PlanEdge>,
        root: OpId,
    ) -> Self {
        let n = ops.len();
        let (child_off, child_adj) = build_csr(n, &edges, |e| e.parent, |e| e.child);
        let (parent_off, parent_adj) = build_csr(n, &edges, |e| e.child, |e| e.parent);
        Self {
            name,
            ops,
            edges,
            root,
            npb_chain_cache: Default::default(),
            child_off,
            child_adj,
            parent_off,
            parent_adj,
        }
    }

    /// Number of operators.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The operator with the given id.
    pub fn op(&self, id: OpId) -> &PlanOp {
        &self.ops[id.0]
    }

    /// Producer children of `id`, with the connecting edge.
    pub fn children_of(&self, id: OpId) -> Vec<(&PlanEdge, OpId)> {
        self.edges.iter().filter(|e| e.parent == id).map(|e| (e, e.child)).collect()
    }

    /// Consumer parents of `id`, with the connecting edge.
    pub fn parents_of(&self, id: OpId) -> Vec<(&PlanEdge, OpId)> {
        self.edges.iter().filter(|e| e.child == id).map(|e| (e, e.parent)).collect()
    }

    /// Producer children of `id` as a borrowed CSR slice (edge order) —
    /// the allocation-free counterpart of [`Self::children_of`] for
    /// per-event hot paths.
    #[inline]
    pub fn children(&self, id: OpId) -> &[AdjEntry] {
        &self.child_adj[self.child_off[id.0] as usize..self.child_off[id.0 + 1] as usize]
    }

    /// Consumer parents of `id` as a borrowed CSR slice (edge order) —
    /// the allocation-free counterpart of [`Self::parents_of`].
    #[inline]
    pub fn parents(&self, id: OpId) -> &[AdjEntry] {
        &self.parent_adj[self.parent_off[id.0] as usize..self.parent_off[id.0 + 1] as usize]
    }

    /// Edge index lookup for a (child, parent) pair.
    pub fn edge_index(&self, child: OpId, parent: OpId) -> Option<usize> {
        self.edges.iter().position(|e| e.child == child && e.parent == parent)
    }

    /// Operators in a topological order (children before parents).
    pub fn topo_order(&self) -> Vec<OpId> {
        let n = self.ops.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.parent.0] += 1;
        }
        let mut stack: Vec<OpId> =
            (0..n).filter(|&i| indegree[i] == 0).map(OpId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = stack.pop() {
            order.push(id);
            for (_, p) in self.parents_of(id) {
                indegree[p.0] -= 1;
                if indegree[p.0] == 0 {
                    stack.push(p);
                }
            }
        }
        assert_eq!(order.len(), n, "plan {:?} contains a cycle", self.name);
        order
    }

    /// Length (in operators, including `from`) of the longest chain of
    /// non-pipeline-breaking edges going *up* from `from` toward the root,
    /// where every hop must also be the unique child of its parent on a
    /// non-breaking edge. This bounds the pipeline-degree decision
    /// (Section 5.3.2).
    pub fn longest_npb_chain(&self, from: OpId) -> usize {
        self.npb_chain_cache
            .get_or_init(|| (0..self.ops.len()).map(|i| self.compute_npb_chain(OpId(i))).collect())
            [from.0]
    }

    fn compute_npb_chain(&self, from: OpId) -> usize {
        let mut len = 1;
        let mut cur = from;
        loop {
            let mut only: Option<OpId> = None;
            let mut count = 0;
            for e in &self.edges {
                if e.child == cur && e.non_pipeline_breaking {
                    count += 1;
                    only = Some(e.parent);
                }
            }
            match only {
                Some(parent) if count == 1 => {
                    len += 1;
                    cur = parent;
                }
                _ => return len,
            }
        }
    }

    /// The chain of operators a pipeline of `degree` rooted at `root`
    /// covers: `[root, consumer, consumer-of-consumer, ...]` following
    /// non-pipeline-breaking edges, truncated at `degree` operators.
    pub fn pipeline_chain(&self, root: OpId, degree: usize) -> Vec<OpId> {
        let mut chain = vec![root];
        let mut cur = root;
        while chain.len() < degree {
            let ups: Vec<_> = self
                .parents_of(cur)
                .into_iter()
                .filter(|(e, _)| e.non_pipeline_breaking)
                .collect();
            match ups.first() {
                Some(&(_, parent)) if ups.len() == 1 => {
                    chain.push(parent);
                    cur = parent;
                }
                _ => break,
            }
        }
        chain
    }

    /// Total estimated remaining work (seconds of work orders) of the
    /// whole plan — used by SJF-style heuristics.
    pub fn total_estimated_work(&self) -> f64 {
        self.ops.iter().map(|o| o.num_work_orders as f64 * o.est_wo_duration).sum()
    }

    /// Estimated critical-path length (seconds): the heaviest
    /// leaf-to-root path by estimated operator work.
    pub fn critical_path_estimate(&self) -> f64 {
        let order = self.topo_order();
        let mut best = vec![0.0f64; self.ops.len()];
        for id in order {
            let own = self.op(id).num_work_orders as f64 * self.op(id).est_wo_duration;
            let child_best = self
                .children_of(id)
                .into_iter()
                .map(|(_, c)| best[c.0])
                .fold(0.0f64, f64::max);
            best[id.0] = own + child_best;
        }
        best[self.root.0]
    }

    /// Validates structural invariants: ids dense and consistent, root in
    /// range, every non-root op reaches the root, at most two children
    /// per op (binary plans for tree convolution), acyclicity.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.id.0 != i {
                return Err(format!("op at position {i} has id {:?}", op.id));
            }
            if op.num_work_orders == 0 {
                return Err(format!("op {i} has zero work orders"));
            }
        }
        if self.root.0 >= self.ops.len() {
            return Err("root out of range".into());
        }
        for e in &self.edges {
            if e.child.0 >= self.ops.len() || e.parent.0 >= self.ops.len() {
                return Err("edge endpoint out of range".into());
            }
            if e.child == e.parent {
                return Err("self-loop edge".into());
            }
        }
        for i in 0..self.ops.len() {
            let nc = self.children_of(OpId(i)).len();
            if nc > 2 {
                return Err(format!("op {i} has {nc} children; plans must be binary"));
            }
        }
        // topo_order panics on cycles; run it through catch-free check:
        let mut indegree = vec![0usize; self.ops.len()];
        for e in &self.edges {
            indegree[e.parent.0] += 1;
        }
        let mut stack: Vec<usize> =
            (0..self.ops.len()).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(id) = stack.pop() {
            seen += 1;
            for e in self.edges.iter().filter(|e| e.child.0 == id) {
                indegree[e.parent.0] -= 1;
                if indegree[e.parent.0] == 0 {
                    stack.push(e.parent.0);
                }
            }
        }
        if seen != self.ops.len() {
            return Err("plan contains a cycle".into());
        }
        Ok(())
    }
}

/// Incremental builder for [`PhysicalPlan`]s.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    name: String,
    ops: Vec<PlanOp>,
    edges: Vec<PlanEdge>,
}

impl PlanBuilder {
    /// Starts a new plan.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ops: Vec::new(), edges: Vec::new() }
    }

    /// Adds an operator and returns its id. The builder fixes `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_op(
        &mut self,
        kind: OpKind,
        spec: OpSpec,
        input_tables: Vec<usize>,
        columns_used: Vec<usize>,
        est_rows: f64,
        num_work_orders: u32,
        est_wo_duration: f64,
        est_wo_memory: f64,
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(PlanOp {
            id,
            kind,
            spec,
            input_tables,
            columns_used,
            est_rows,
            num_work_orders: num_work_orders.max(1),
            block_bitmap: Vec::new(),
            est_wo_duration,
            est_wo_memory,
        });
        id
    }

    /// Sets the block bitmap of an operator (scan leaves).
    pub fn set_block_bitmap(&mut self, id: OpId, bitmap: Vec<bool>) {
        self.ops[id.0].block_bitmap = bitmap;
    }

    /// Connects `child` (producer) to `parent` (consumer).
    pub fn connect(&mut self, child: OpId, parent: OpId, non_pipeline_breaking: bool) {
        self.edges.push(PlanEdge { child, parent, non_pipeline_breaking });
    }

    /// Finalizes the plan with the given root, validating invariants.
    ///
    /// # Panics
    /// Panics if validation fails — plan builders are static code, so a
    /// malformed plan is a programming error.
    pub fn finish(self, root: OpId) -> PhysicalPlan {
        let plan = PhysicalPlan::from_parts_unvalidated(self.name, self.ops, self.edges, root);
        if let Err(e) = plan.validate() {
            panic!("invalid plan {:?}: {e}", plan.name);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// scan -> select -> select -> agg(partial, breaking) -> finalize
    fn chain_plan() -> PhysicalPlan {
        let mut b = PlanBuilder::new("chain");
        let scan = b.add_op(
            OpKind::TableScan,
            OpSpec::Synthetic,
            vec![0],
            vec![0, 1],
            1000.0,
            10,
            0.01,
            1024.0,
        );
        let s1 = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![1], 500.0, 10, 0.005, 512.0);
        let s2 = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![0], vec![2], 250.0, 10, 0.005, 512.0);
        let agg = b.add_op(OpKind::Aggregate, OpSpec::Synthetic, vec![0], vec![3], 250.0, 10, 0.02, 2048.0);
        let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::Synthetic, vec![0], vec![3], 10.0, 1, 0.01, 256.0);
        b.connect(scan, s1, true);
        b.connect(s1, s2, true);
        b.connect(s2, agg, true);
        b.connect(agg, fin, false); // finalize must wait for all partials
        b.finish(fin)
    }

    #[test]
    fn topo_order_children_first() {
        let p = chain_plan();
        let order = p.topo_order();
        let pos: Vec<usize> =
            (0..p.num_ops()).map(|i| order.iter().position(|o| o.0 == i).unwrap()).collect();
        for e in &p.edges {
            assert!(pos[e.child.0] < pos[e.parent.0]);
        }
    }

    #[test]
    fn longest_npb_chain_counts() {
        let p = chain_plan();
        // scan -> s1 -> s2 -> agg are all non-breaking: chain of 4 from scan.
        assert_eq!(p.longest_npb_chain(OpId(0)), 4);
        assert_eq!(p.longest_npb_chain(OpId(2)), 2); // s2 -> agg
        assert_eq!(p.longest_npb_chain(OpId(3)), 1); // agg -> finalize is breaking
    }

    #[test]
    fn pipeline_chain_truncates() {
        let p = chain_plan();
        assert_eq!(p.pipeline_chain(OpId(0), 3), vec![OpId(0), OpId(1), OpId(2)]);
        assert_eq!(p.pipeline_chain(OpId(0), 99).len(), 4);
        assert_eq!(p.pipeline_chain(OpId(3), 5), vec![OpId(3)]);
    }

    #[test]
    fn estimates_accumulate() {
        let p = chain_plan();
        let work = p.total_estimated_work();
        assert!((work - (10.0 * 0.01 + 10.0 * 0.005 * 2.0 + 10.0 * 0.02 + 0.01)).abs() < 1e-9);
        assert!(p.critical_path_estimate() > 0.0);
    }

    #[test]
    fn validate_rejects_cycles() {
        let mut b = PlanBuilder::new("cyclic");
        let a = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let c = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        b.connect(a, c, true);
        b.connect(c, a, true);
        let plan = PhysicalPlan::from_parts_unvalidated("cyclic".into(), b.ops, b.edges, OpId(0));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_rejects_ternary() {
        let mut b = PlanBuilder::new("ternary");
        let a = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let c1 = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let c2 = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        let c3 = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 1.0, 1, 0.1, 1.0);
        b.connect(c1, a, true);
        b.connect(c2, a, true);
        b.connect(c3, a, true);
        let plan = PhysicalPlan::from_parts_unvalidated("ternary".into(), b.ops, b.edges, a);
        assert!(plan.validate().unwrap_err().contains("children"));
    }

    #[test]
    fn op_kind_indices_are_dense_and_unique() {
        use std::collections::HashSet;
        let kinds = [
            OpKind::TableScan, OpKind::Select, OpKind::Project, OpKind::BuildHash,
            OpKind::ProbeHash, OpKind::DestroyHash, OpKind::NestedLoopsJoin,
            OpKind::IndexScan, OpKind::IndexNestedLoopsJoin, OpKind::MergeJoin,
            OpKind::Aggregate, OpKind::FinalizeAggregate, OpKind::InitializeAggregation,
            OpKind::DestroyAggregationState, OpKind::SortRunGeneration, OpKind::SortMergeRun,
            OpKind::TopK, OpKind::Limit, OpKind::HashDistinct, OpKind::Union,
            OpKind::UnionAll, OpKind::Intersect, OpKind::Except, OpKind::Materialize,
            OpKind::TableGenerator, OpKind::WindowAggregate, OpKind::Insert,
            OpKind::Update, OpKind::Delete,
        ];
        assert_eq!(kinds.len(), OpKind::COUNT);
        let idx: HashSet<usize> = kinds.iter().map(|k| k.index()).collect();
        assert_eq!(idx.len(), OpKind::COUNT);
        assert!(idx.iter().all(|&i| i < OpKind::COUNT));
        // names unique too
        let names: HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), OpKind::COUNT);
    }

    #[test]
    fn join_plan_shape() {
        // build/probe hash join: probe has breaking edge from build,
        // non-breaking from its scan.
        let mut b = PlanBuilder::new("join");
        let scan_l = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![0], 100.0, 4, 0.01, 1.0);
        let scan_r = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![1], vec![2], 1000.0, 8, 0.01, 1.0);
        let build = b.add_op(OpKind::BuildHash, OpSpec::Synthetic, vec![0], vec![0], 100.0, 4, 0.02, 10.0);
        let probe = b.add_op(OpKind::ProbeHash, OpSpec::Synthetic, vec![0, 1], vec![0, 2], 1000.0, 8, 0.02, 10.0);
        b.connect(scan_l, build, true);
        b.connect(scan_r, probe, true);
        b.connect(build, probe, false);
        let p = b.finish(probe);
        assert_eq!(p.children_of(probe).len(), 2);
        // probe cannot extend a pipeline above build (breaking), but the
        // right scan pipelines into probe.
        assert_eq!(p.longest_npb_chain(scan_r), 2);
        assert_eq!(p.longest_npb_chain(build), 1);
    }
}
