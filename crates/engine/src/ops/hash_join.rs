//! BuildHash and ProbeHash work orders (the engine's equi-join).
//!
//! `BuildHash` inserts one child block at a time into a shared
//! [`JoinHashTable`]; `ProbeHash` — blocked on the build side by a
//! pipeline-breaking edge — probes one probe-side block per work order and
//! emits the concatenated (build ‖ probe) rows.

use std::collections::HashMap;

use crate::block::Block;
use crate::plan::{OpId, PhysicalPlan};
use crate::value::Value;

use super::{child_ops, OpExecState, WorkOrderInput, WorkOrderOutput};

/// Hash key over join columns. Floats are joined by their bit pattern —
/// the benchmarks only join on integer and string keys, but this keeps
/// the structure total.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HashKeyPart {
    /// Integer key part.
    I(i64),
    /// Bit pattern of a float key part.
    F(u64),
    /// String key part.
    S(String),
}

fn key_of(block: &Block, row: usize, cols: &[usize]) -> Vec<HashKeyPart> {
    cols.iter()
        .map(|&c| match block.columns[c].get(row) {
            Value::Int64(v) => HashKeyPart::I(v),
            Value::Float64(v) => HashKeyPart::F(v.to_bits()),
            Value::Str(s) => HashKeyPart::S(s),
        })
        .collect()
}

/// A materialized build side: key → full build rows.
#[derive(Debug, Default)]
pub struct JoinHashTable {
    map: HashMap<Vec<HashKeyPart>, Vec<Vec<Value>>>,
    rows: usize,
}

impl JoinHashTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts every row of `block`, keyed by `cols`.
    pub fn insert_block(&mut self, block: &Block, cols: &[usize]) {
        for r in 0..block.num_rows() {
            let k = key_of(block, r, cols);
            self.map.entry(k).or_default().push(block.row(r));
            self.rows += 1;
        }
    }

    /// Matching build rows for a probe key.
    pub fn get(&self, key: &[HashKeyPart]) -> Option<&Vec<Vec<Value>>> {
        self.map.get(key)
    }

    /// Total rows stored.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rough memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows * 48 + self.map.len() * 32
    }
}

pub(super) fn execute_build(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    keys: &[usize],
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let block = match input {
        WorkOrderInput::ChildBlock { child, idx } => states[child.0].output_block(*idx),
        WorkOrderInput::BaseBlock { idx } => match child_ops(plan, op).first() {
            Some(child) => states[child.0].output_block(*idx),
            // A build op with no child is a malformed plan; treat the
            // work order as a no-op instead of crashing the worker.
            None => return WorkOrderOutput { output_rows: 0, memory_bytes: 0 },
        },
        // BuildHash streams one block per work order; an AllInputs order
        // carries nothing to insert.
        WorkOrderInput::AllInputs => return WorkOrderOutput { output_rows: 0, memory_bytes: 0 },
    };
    let mut guard = states[op.0].hash_table.lock();
    let table = guard.get_or_insert_with(JoinHashTable::new);
    table.insert_block(&block, keys);
    let mem = (table.byte_size() + block.byte_size()) as u64;
    WorkOrderOutput { output_rows: 0, memory_bytes: mem }
}

pub(super) fn execute_probe(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    keys: &[usize],
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    // Children: the BuildHash op (breaking edge) and the probe input. A
    // malformed plan (missing either child) degrades to an empty output
    // instead of crashing the worker thread.
    let children = child_ops(plan, op);
    let Some(build_child) = children
        .iter()
        .copied()
        .find(|&c| matches!(plan.op(c).kind, crate::plan::OpKind::BuildHash))
    else {
        return WorkOrderOutput { output_rows: 0, memory_bytes: 0 };
    };
    let Some(probe_child) = children.iter().copied().find(|&c| c != build_child) else {
        return WorkOrderOutput { output_rows: 0, memory_bytes: 0 };
    };

    let probe_block = match input {
        WorkOrderInput::ChildBlock { child, idx } => {
            debug_assert_eq!(*child, probe_child, "probe input must come from the probe child");
            states[child.0].output_block(*idx)
        }
        WorkOrderInput::BaseBlock { idx } => states[probe_child.0].output_block(*idx),
        // ProbeHash streams one block per work order; an AllInputs order
        // carries no probe block.
        WorkOrderInput::AllInputs => return WorkOrderOutput { output_rows: 0, memory_bytes: 0 },
    };

    let guard = states[build_child.0].hash_table.lock();
    let Some(table) = guard.as_ref() else {
        // The build side never materialized (scheduling bug or an empty
        // build input): an unbuilt table joins to zero rows.
        return WorkOrderOutput { output_rows: 0, memory_bytes: probe_block.byte_size() as u64 };
    };

    // Output schema: build columns ++ probe columns.
    let mut out: Option<Block> = None;
    for r in 0..probe_block.num_rows() {
        let k = key_of(&probe_block, r, keys);
        if let Some(matches) = table.get(&k) {
            for build_row in matches {
                let mut row = build_row.clone();
                row.extend(probe_block.row(r));
                match &mut out {
                    Some(b) => b.push_row(row),
                    None => {
                        let types: Vec<_> = row.iter().map(Value::column_type).collect();
                        let mut b = Block::empty(probe_block.header.block_index, &types);
                        b.push_row(row);
                        out = Some(b);
                    }
                }
            }
        }
    }
    // A probe work order with zero matches produces no output block —
    // downstream consumers simply see fewer input blocks.
    let (rows, out_bytes) = match out {
        Some(out) => {
            let rows = out.num_rows() as u64;
            let bytes = out.byte_size();
            states[op.0].output.lock().push(out);
            (rows, bytes)
        }
        None => (0, 0),
    };
    let mem = (table.byte_size() + probe_block.byte_size() + out_bytes) as u64;
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::plan::{OpKind, OpSpec, PlanBuilder};

    fn join_setup() -> (PhysicalPlan, Vec<OpExecState>) {
        let mut b = PlanBuilder::new("j");
        let l = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 4.0, 1, 0.1, 1.0);
        let r = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 4.0, 1, 0.1, 1.0);
        let bh = b.add_op(OpKind::BuildHash, OpSpec::Synthetic, vec![], vec![], 4.0, 1, 0.1, 1.0);
        let ph = b.add_op(OpKind::ProbeHash, OpSpec::Synthetic, vec![], vec![], 4.0, 1, 0.1, 1.0);
        b.connect(l, bh, true);
        b.connect(bh, ph, false);
        b.connect(r, ph, true);
        let plan = b.finish(ph);
        let states: Vec<OpExecState> = (0..4).map(|_| OpExecState::new()).collect();
        // Build side: (id, name)
        states[0].output.lock().push(Block::new(
            0,
            vec![
                Column::I64(vec![1, 2, 3]),
                Column::Str(vec!["a".into(), "b".into(), "c".into()]),
            ],
        ));
        // Probe side: (id, score)
        states[1].output.lock().push(Block::new(
            0,
            vec![Column::I64(vec![2, 3, 3, 9]), Column::F64(vec![0.2, 0.3, 0.33, 0.9])],
        ));
        (plan, states)
    }

    #[test]
    fn build_then_probe_joins_rows() {
        let (plan, states) = join_setup();
        execute_build(
            &plan,
            &states,
            OpId(2),
            &[0],
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        let out = execute_probe(
            &plan,
            &states,
            OpId(3),
            &[0],
            &WorkOrderInput::ChildBlock { child: OpId(1), idx: 0 },
        );
        // Matches: probe ids 2, 3, 3 -> 3 joined rows (9 misses).
        assert_eq!(out.output_rows, 3);
        let rows = states[3].collect_rows();
        assert_eq!(rows.len(), 3);
        // (build id, name, probe id, score)
        assert_eq!(rows[0][0], Value::Int64(2));
        assert_eq!(rows[0][1], Value::from("b"));
        assert_eq!(rows[0][3], Value::Float64(0.2));
        assert_eq!(rows[2][1], Value::from("c"));
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        let (plan, states) = join_setup();
        // Add a second build block with a duplicate key 2.
        states[0].output.lock().push(Block::new(
            1,
            vec![Column::I64(vec![2]), Column::Str(vec!["b2".into()])],
        ));
        execute_build(&plan, &states, OpId(2), &[0], &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 });
        execute_build(&plan, &states, OpId(2), &[0], &WorkOrderInput::ChildBlock { child: OpId(0), idx: 1 });
        let out = execute_probe(
            &plan,
            &states,
            OpId(3),
            &[0],
            &WorkOrderInput::ChildBlock { child: OpId(1), idx: 0 },
        );
        // Probe id 2 now matches two build rows: 2 + (3,3 match one each) = 4.
        assert_eq!(out.output_rows, 4);
    }

    #[test]
    fn hash_table_accounts_rows() {
        let mut t = JoinHashTable::new();
        assert!(t.is_empty());
        let b = Block::new(0, vec![Column::I64(vec![1, 1, 2])]);
        t.insert_block(&b, &[0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&[HashKeyPart::I(1)]).unwrap().len(), 2);
        assert!(t.byte_size() > 0);
    }
}
