//! Aggregate (per-block partial) and FinalizeAggregate (merge) work
//! orders — Quickstep's two-phase aggregation.

use std::collections::HashMap;

use crate::block::Block;
use crate::plan::{AggFunc, OpId, OpSpec, PhysicalPlan};
use crate::value::{ColumnType, Value};

use super::{child_ops, OpExecState, WorkOrderInput, WorkOrderOutput};

/// Group key: rendered values (stable, hashable).
pub type GroupKey = Vec<String>;

/// Partial aggregation state for one block: per group, per aggregate:
/// (sum, count, min, max) accumulators.
#[derive(Debug, Clone, Default)]
pub struct AggState {
    /// Group key → per-aggregate accumulators.
    pub groups: HashMap<GroupKey, Vec<Accumulator>>,
    /// The raw group-by values backing each key (for output).
    pub key_values: HashMap<GroupKey, Vec<Value>>,
}

/// One aggregate accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    /// Running sum.
    pub sum: f64,
    /// Running count.
    pub count: u64,
    /// Running minimum.
    pub min: f64,
    /// Running maximum.
    pub max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Accumulator {
    /// Folds one value in.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator in.
    pub fn merge(&mut self, o: &Accumulator) {
        self.sum += o.sum;
        self.count += o.count;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Finalizes to the requested aggregate function's value.
    pub fn finish(&self, f: AggFunc) -> Value {
        match f {
            AggFunc::Count => Value::Int64(self.count as i64),
            AggFunc::Sum => Value::Float64(self.sum),
            AggFunc::Min => Value::Float64(if self.count == 0 { 0.0 } else { self.min }),
            AggFunc::Max => Value::Float64(if self.count == 0 { 0.0 } else { self.max }),
            AggFunc::Avg => {
                Value::Float64(if self.count == 0 { 0.0 } else { self.sum / self.count as f64 })
            }
        }
    }
}

pub(super) fn execute_partial(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    group_by: &[usize],
    aggs: &[(AggFunc, crate::expr::ScalarExpr)],
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let block = match input {
        WorkOrderInput::ChildBlock { child, idx } => states[child.0].output_block(*idx),
        WorkOrderInput::BaseBlock { idx } => {
            let child = child_ops(plan, op)[0];
            states[child.0].output_block(*idx)
        }
        WorkOrderInput::AllInputs => panic!("Aggregate streams one block per work order"),
    };

    let mut state = AggState::default();
    for r in 0..block.num_rows() {
        let key_vals: Vec<Value> = group_by.iter().map(|&c| block.columns[c].get(r)).collect();
        let key: GroupKey = key_vals.iter().map(Value::to_string).collect();
        let accs = state
            .groups
            .entry(key.clone())
            .or_insert_with(|| vec![Accumulator::default(); aggs.len()]);
        for (ai, (_, expr)) in aggs.iter().enumerate() {
            let v = expr.eval_row(&block, r).as_f64().unwrap_or(0.0);
            accs[ai].add(v);
        }
        state.key_values.entry(key).or_insert(key_vals);
    }

    let groups = state.groups.len();
    let mem = (block.byte_size() + groups * (group_by.len() * 24 + aggs.len() * 32)) as u64;
    states[op.0].agg_partials.lock().push(state);
    WorkOrderOutput { output_rows: groups as u64, memory_bytes: mem }
}

pub(super) fn execute_finalize(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
) -> WorkOrderOutput {
    let agg_child = child_ops(plan, op)[0];
    // Recover the aggregate spec from the child operator.
    let (group_by, aggs) = match &plan.op(agg_child).spec {
        OpSpec::Aggregate { group_by, aggs } => (group_by.clone(), aggs.clone()),
        other => panic!("FinalizeAggregate child must be Aggregate, got {other:?}"),
    };

    let partials = states[agg_child.0].agg_partials.lock();
    let mut merged: HashMap<GroupKey, Vec<Accumulator>> = HashMap::new();
    let mut key_values: HashMap<GroupKey, Vec<Value>> = HashMap::new();
    for p in partials.iter() {
        for (k, accs) in &p.groups {
            let slot =
                merged.entry(k.clone()).or_insert_with(|| vec![Accumulator::default(); aggs.len()]);
            for (s, a) in slot.iter_mut().zip(accs) {
                s.merge(a);
            }
            if let Some(kv) = p.key_values.get(k) {
                key_values.entry(k.clone()).or_insert_with(|| kv.clone());
            }
        }
    }

    // Deterministic output: sort groups by key.
    let mut keys: Vec<&GroupKey> = merged.keys().collect();
    keys.sort();

    let mut types: Vec<ColumnType> = Vec::new();
    if let Some(first) = keys.first() {
        for v in &key_values[*first] {
            types.push(v.column_type());
        }
    } else {
        types.extend(std::iter::repeat_n(ColumnType::Int64, group_by.len()));
    }
    for (f, _) in &aggs {
        types.push(match f {
            AggFunc::Count => ColumnType::Int64,
            _ => ColumnType::Float64,
        });
    }

    let mut out = Block::empty(0, &types);
    for k in &keys {
        let mut row = key_values[*k].clone();
        for (acc, (f, _)) in merged[*k].iter().zip(&aggs) {
            row.push(acc.finish(*f));
        }
        out.push_row(row);
    }
    let rows = out.num_rows() as u64;
    let mem = (out.byte_size() + merged.len() * 64) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::expr::ScalarExpr;
    use crate::plan::{OpKind, PlanBuilder};

    fn agg_setup(group_by: Vec<usize>, aggs: Vec<(AggFunc, ScalarExpr)>) -> (PhysicalPlan, Vec<OpExecState>) {
        let mut b = PlanBuilder::new("a");
        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 8.0, 1, 0.1, 1.0);
        let agg = b.add_op(
            OpKind::Aggregate,
            OpSpec::Aggregate { group_by, aggs },
            vec![],
            vec![],
            8.0,
            1,
            0.1,
            1.0,
        );
        let fin = b.add_op(OpKind::FinalizeAggregate, OpSpec::FinalizeAggregate, vec![], vec![], 1.0, 1, 0.1, 1.0);
        b.connect(scan, agg, true);
        b.connect(agg, fin, false);
        let plan = b.finish(fin);
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        // Two child blocks: (group, value)
        states[0].output.lock().push(Block::new(
            0,
            vec![Column::I64(vec![1, 1, 2]), Column::F64(vec![10.0, 20.0, 5.0])],
        ));
        states[0].output.lock().push(Block::new(
            1,
            vec![Column::I64(vec![2, 3]), Column::F64(vec![15.0, 7.0])],
        ));
        (plan, states)
    }

    fn run_both_blocks(plan: &PhysicalPlan, states: &[OpExecState]) {
        let spec = match &plan.op(OpId(1)).spec {
            OpSpec::Aggregate { group_by, aggs } => (group_by.clone(), aggs.clone()),
            _ => unreachable!(),
        };
        for idx in 0..2 {
            execute_partial(
                plan,
                states,
                OpId(1),
                &spec.0,
                &spec.1,
                &WorkOrderInput::ChildBlock { child: OpId(0), idx },
            );
        }
        execute_finalize(plan, states, OpId(2));
    }

    #[test]
    fn grouped_sum_and_count() {
        let (plan, states) = agg_setup(
            vec![0],
            vec![(AggFunc::Sum, ScalarExpr::col(1)), (AggFunc::Count, ScalarExpr::col(1))],
        );
        run_both_blocks(&plan, &states);
        let rows = states[2].collect_rows();
        // Groups 1, 2, 3 sorted by key string: "1","2","3".
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int64(1), Value::Float64(30.0), Value::Int64(2)]);
        assert_eq!(rows[1], vec![Value::Int64(2), Value::Float64(20.0), Value::Int64(2)]);
        assert_eq!(rows[2], vec![Value::Int64(3), Value::Float64(7.0), Value::Int64(1)]);
    }

    #[test]
    fn scalar_min_max_avg() {
        let (plan, states) = agg_setup(
            vec![],
            vec![
                (AggFunc::Min, ScalarExpr::col(1)),
                (AggFunc::Max, ScalarExpr::col(1)),
                (AggFunc::Avg, ScalarExpr::col(1)),
            ],
        );
        run_both_blocks(&plan, &states);
        let rows = states[2].collect_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Float64(5.0));
        assert_eq!(rows[0][1], Value::Float64(20.0));
        assert_eq!(rows[0][2], Value::Float64(57.0 / 5.0));
    }

    #[test]
    fn partials_independent_of_block_split() {
        // Same data in 1 block vs 2 blocks must aggregate identically.
        let (plan, states) = agg_setup(vec![0], vec![(AggFunc::Sum, ScalarExpr::col(1))]);
        run_both_blocks(&plan, &states);
        let split = states[2].collect_rows();

        let (plan2, states2) = agg_setup(vec![0], vec![(AggFunc::Sum, ScalarExpr::col(1))]);
        {
            let mut out = states2[0].output.lock();
            out.clear();
            out.push(Block::new(
                0,
                vec![
                    Column::I64(vec![1, 1, 2, 2, 3]),
                    Column::F64(vec![10.0, 20.0, 5.0, 15.0, 7.0]),
                ],
            ));
        }
        let spec = match &plan2.op(OpId(1)).spec {
            OpSpec::Aggregate { group_by, aggs } => (group_by.clone(), aggs.clone()),
            _ => unreachable!(),
        };
        execute_partial(
            &plan2,
            &states2,
            OpId(1),
            &spec.0,
            &spec.1,
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        execute_finalize(&plan2, &states2, OpId(2));
        assert_eq!(split, states2[2].collect_rows());
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let mut a = Accumulator::default();
        let mut b = Accumulator::default();
        let mut whole = Accumulator::default();
        for v in [1.0, 5.0, -2.0] {
            a.add(v);
            whole.add(v);
        }
        for v in [10.0, 0.5] {
            b.add(v);
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.sum, whole.sum);
        assert_eq!(a.count, whole.count);
        assert_eq!(a.min, whole.min);
        assert_eq!(a.max, whole.max);
    }
}
