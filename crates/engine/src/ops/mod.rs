//! Executable work-order operator implementations for the real engine.
//!
//! Each operator processes *one work order at a time* — one input block
//! (or, for blocking operators, the full set of accumulated inputs) — and
//! appends its output blocks and state to a shared [`OpExecState`]. This
//! mirrors Quickstep's work-order decomposition (Section 2): a `Select`
//! over a 40-block relation yields 40 independent work orders that worker
//! threads can execute in any interleaving the scheduler decides.

mod aggregate;
mod filter;
mod hash_join;
mod join;
mod misc;
mod scan;
mod sort;

pub use aggregate::{AggState, GroupKey};
pub use hash_join::JoinHashTable;

use parking_lot::Mutex;

use crate::block::Block;
use crate::catalog::Catalog;
use crate::plan::{OpId, OpSpec, PhysicalPlan};

/// Shared, thread-safe execution state of one operator.
#[derive(Debug, Default)]
pub struct OpExecState {
    /// Output blocks produced so far (consumers stream from here).
    pub output: Mutex<Vec<Block>>,
    /// Hash table being built (BuildHash only).
    pub hash_table: Mutex<Option<JoinHashTable>>,
    /// Partial aggregation states (Aggregate only).
    pub agg_partials: Mutex<Vec<AggState>>,
    /// Sorted runs awaiting the merge (SortRunGeneration only).
    pub sorted_runs: Mutex<Vec<Block>>,
}

impl OpExecState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of output blocks currently available.
    pub fn output_len(&self) -> usize {
        self.output.lock().len()
    }

    /// Clones the output block at `idx` (consumers copy their input so
    /// producers can keep appending without aliasing).
    pub fn output_block(&self, idx: usize) -> Block {
        self.output.lock()[idx].clone()
    }

    /// Concatenated output rows (test/inspection helper).
    pub fn collect_rows(&self) -> Vec<Vec<crate::value::Value>> {
        let blocks = self.output.lock();
        blocks.iter().flat_map(|b| (0..b.num_rows()).map(|i| b.row(i))).collect()
    }
}

/// The input of one work order.
#[derive(Debug, Clone)]
pub enum WorkOrderInput {
    /// The `idx`-th block of a base table (TableScan).
    BaseBlock {
        /// Block index within the table.
        idx: usize,
    },
    /// The `idx`-th output block of a child operator.
    ChildBlock {
        /// Producing child.
        child: OpId,
        /// Block index within the child's output.
        idx: usize,
    },
    /// All accumulated inputs of the children (blocking operators).
    AllInputs,
}

/// The result of executing one work order.
#[derive(Debug, Clone)]
pub struct WorkOrderOutput {
    /// Rows produced by this work order.
    pub output_rows: u64,
    /// Approximate memory touched/held, in bytes.
    pub memory_bytes: u64,
}

/// Executes one work order of `op` against the shared execution states.
///
/// `states[i]` is the [`OpExecState`] of operator `i` in `plan`. Returns
/// the produced row/memory accounting.
///
/// # Panics
/// Panics on a [`OpSpec::Synthetic`] operator — synthetic plans only run
/// on the simulator — and on malformed plans (e.g. a ProbeHash whose
/// build side has not been built; the executor's dependency tracking must
/// prevent that).
pub fn execute_work_order(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let plan_op = plan.op(op);
    match &plan_op.spec {
        OpSpec::TableScan { table, predicate, project } => {
            scan::execute(catalog, states, op, *table, predicate, project.as_deref(), input)
        }
        OpSpec::IndexScan { table, col, lo, hi, project } => {
            scan::execute_index(catalog, states, op, *table, *col, *lo, *hi, project.as_deref(), input)
        }
        OpSpec::Select { predicate } => filter::execute_select(plan, states, op, predicate, input),
        OpSpec::Project { exprs } => filter::execute_project(plan, states, op, exprs, input),
        OpSpec::BuildHash { keys } => hash_join::execute_build(plan, states, op, keys, input),
        OpSpec::ProbeHash { keys } => hash_join::execute_probe(plan, states, op, keys, input),
        OpSpec::Aggregate { group_by, aggs } => {
            aggregate::execute_partial(plan, states, op, group_by, aggs, input)
        }
        OpSpec::FinalizeAggregate => aggregate::execute_finalize(plan, states, op),
        OpSpec::SortRunGeneration { cols, desc } => {
            sort::execute_run_generation(plan, states, op, cols, desc, input)
        }
        OpSpec::SortMergeRun { cols, desc } => sort::execute_merge(plan, states, op, cols, desc),
        OpSpec::TopK { k, col, desc } => sort::execute_topk(plan, states, op, *k, *col, *desc),
        OpSpec::NestedLoopsJoin { predicate } => {
            join::execute_nlj(plan, states, op, predicate, input)
        }
        OpSpec::UnionAll => misc::execute_union_all(plan, states, op),
        OpSpec::Materialize => misc::execute_materialize(plan, states, op),
        OpSpec::Synthetic => {
            panic!("synthetic operator {:?} in plan {:?} cannot execute on the real engine", op, plan.name)
        }
    }
}

/// The producer children of `op` in plan order (left, right).
pub(crate) fn child_ops(plan: &PhysicalPlan, op: OpId) -> Vec<OpId> {
    let mut c: Vec<OpId> = plan.children_of(op).into_iter().map(|(_, id)| id).collect();
    c.sort_unstable();
    c
}

/// Collects all output blocks of `child` (blocking-consumer helper).
pub(crate) fn all_child_blocks(states: &[OpExecState], child: OpId) -> Vec<Block> {
    states[child.0].output.lock().clone()
}
