//! UnionAll and Materialize work orders (blocking pass-throughs).

use crate::plan::{OpId, PhysicalPlan};

use super::{all_child_blocks, child_ops, OpExecState, WorkOrderOutput};

pub(super) fn execute_union_all(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
) -> WorkOrderOutput {
    let mut rows = 0u64;
    let mut mem = 0u64;
    let mut out = states[op.0].output.lock();
    for child in child_ops(plan, op) {
        for b in all_child_blocks(states, child) {
            rows += b.num_rows() as u64;
            mem += b.byte_size() as u64;
            out.push(b);
        }
    }
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

pub(super) fn execute_materialize(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
) -> WorkOrderOutput {
    let child = child_ops(plan, op)[0];
    let blocks = all_child_blocks(states, child);
    let mut rows = 0u64;
    let mut mem = 0u64;
    let mut out = states[op.0].output.lock();
    for b in blocks {
        rows += b.num_rows() as u64;
        mem += (2 * b.byte_size()) as u64;
        out.push(b);
    }
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Column};
    use crate::plan::{OpKind, OpSpec, PlanBuilder};

    #[test]
    fn union_all_concatenates_children() {
        let mut b = PlanBuilder::new("u");
        let l = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 2.0, 1, 0.1, 1.0);
        let r = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 2.0, 1, 0.1, 1.0);
        let u = b.add_op(OpKind::UnionAll, OpSpec::UnionAll, vec![], vec![], 4.0, 1, 0.1, 1.0);
        b.connect(l, u, false);
        b.connect(r, u, false);
        let plan = b.finish(u);
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        states[0].output.lock().push(Block::new(0, vec![Column::I64(vec![1, 2])]));
        states[1].output.lock().push(Block::new(0, vec![Column::I64(vec![3])]));
        let out = execute_union_all(&plan, &states, OpId(2));
        assert_eq!(out.output_rows, 3);
        assert_eq!(states[2].output_len(), 2);
    }

    #[test]
    fn materialize_passes_blocks_through() {
        let mut b = PlanBuilder::new("m");
        let c = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 2.0, 1, 0.1, 1.0);
        let m = b.add_op(OpKind::Materialize, OpSpec::Materialize, vec![], vec![], 2.0, 1, 0.1, 1.0);
        b.connect(c, m, false);
        let plan = b.finish(m);
        let states: Vec<OpExecState> = (0..2).map(|_| OpExecState::new()).collect();
        states[0].output.lock().push(Block::new(0, vec![Column::I64(vec![7, 8, 9])]));
        let out = execute_materialize(&plan, &states, OpId(1));
        assert_eq!(out.output_rows, 3);
        assert_eq!(states[1].collect_rows().len(), 3);
    }
}
