//! Nested-loops join work orders: one left block joined against the
//! right child's full output per work order.

use crate::block::Block;
use crate::expr::Predicate;
use crate::plan::{OpId, PhysicalPlan};
use crate::value::Value;

use super::{all_child_blocks, child_ops, OpExecState, WorkOrderInput, WorkOrderOutput};

pub(super) fn execute_nlj(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    predicate: &Predicate,
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let children = child_ops(plan, op);
    assert_eq!(children.len(), 2, "NestedLoopsJoin needs two children");
    let (left, right) = (children[0], children[1]);

    let left_block = match input {
        WorkOrderInput::ChildBlock { child, idx } => {
            debug_assert_eq!(*child, left, "NLJ streams the left child");
            states[child.0].output_block(*idx)
        }
        WorkOrderInput::BaseBlock { idx } => states[left.0].output_block(*idx),
        WorkOrderInput::AllInputs => panic!("NLJ streams one left block per work order"),
    };
    let right_blocks = all_child_blocks(states, right);

    let mut out: Option<Block> = None;
    let mut scanned = 0usize;
    for rb in &right_blocks {
        scanned += rb.byte_size();
        for lr in 0..left_block.num_rows() {
            for rr in 0..rb.num_rows() {
                // Evaluate the predicate over the concatenated row by
                // materializing it into a 1-row block.
                let mut row = left_block.row(lr);
                row.extend(rb.row(rr));
                let types: Vec<_> = row.iter().map(Value::column_type).collect();
                let mut probe = Block::empty(0, &types);
                probe.push_row(row.clone());
                if predicate.eval_row(&probe, 0) {
                    match &mut out {
                        Some(b) => b.push_row(row),
                        None => {
                            let mut b = Block::empty(left_block.header.block_index, &types);
                            b.push_row(row);
                            out = Some(b);
                        }
                    }
                }
            }
        }
    }
    // A work order with zero joined rows produces no output block.
    let (rows, out_bytes) = match out {
        Some(out) => {
            let rows = out.num_rows() as u64;
            let bytes = out.byte_size();
            states[op.0].output.lock().push(out);
            (rows, bytes)
        }
        None => (0, 0),
    };
    let mem = (left_block.byte_size() + scanned + out_bytes) as u64;
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::expr::CmpOp;
    use crate::expr::ScalarExpr;
    use crate::plan::{OpKind, OpSpec, PlanBuilder};

    #[test]
    fn theta_join_on_inequality() {
        let mut b = PlanBuilder::new("nlj");
        let l = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 3.0, 1, 0.1, 1.0);
        let r = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 3.0, 1, 0.1, 1.0);
        let j = b.add_op(
            OpKind::NestedLoopsJoin,
            OpSpec::NestedLoopsJoin {
                predicate: Predicate::Cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
            },
            vec![],
            vec![],
            9.0,
            1,
            0.1,
            1.0,
        );
        b.connect(l, j, true);
        b.connect(r, j, false);
        let plan = b.finish(j);
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        states[0].output.lock().push(Block::new(0, vec![Column::I64(vec![1, 5])]));
        states[1].output.lock().push(Block::new(0, vec![Column::I64(vec![2, 6])]));

        let out = execute_nlj(
            &plan,
            &states,
            OpId(2),
            &Predicate::Cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        // Pairs with l < r: (1,2), (1,6), (5,6) -> 3 rows.
        assert_eq!(out.output_rows, 3);
        let rows = states[2].collect_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Int64(1), Value::Int64(2)]);
        assert_eq!(rows[2], vec![Value::Int64(5), Value::Int64(6)]);
    }
}
