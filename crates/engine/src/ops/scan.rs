//! TableScan work orders: read one base block, filter, project.

use crate::block::Block;
use crate::catalog::{Catalog, TableId};
use crate::expr::Predicate;
use crate::plan::OpId;

use super::{OpExecState, WorkOrderInput, WorkOrderOutput};

pub(super) fn execute(
    catalog: &Catalog,
    states: &[OpExecState],
    op: OpId,
    table: TableId,
    predicate: &Predicate,
    project: Option<&[usize]>,
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let idx = match input {
        WorkOrderInput::BaseBlock { idx } => *idx,
        other => panic!("TableScan expects a base block input, got {other:?}"),
    };
    let block = &catalog.table(table).blocks[idx];
    let sel = predicate.selected_rows(block);
    let mut out = block.select_rows(&sel);
    if let Some(cols) = project {
        let columns = cols.iter().map(|&c| out.columns[c].clone()).collect();
        out = Block::new(out.header.block_index, columns);
    }
    let rows = out.num_rows() as u64;
    let mem = (block.byte_size() + out.byte_size()) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

/// Zone-map index scan work order: prune the block when its min/max on
/// the indexed column falls outside `[lo, hi]`, otherwise filter rows to
/// the range.
#[allow(clippy::too_many_arguments)]
pub(super) fn execute_index(
    catalog: &Catalog,
    states: &[OpExecState],
    op: OpId,
    table: TableId,
    col: usize,
    lo: i64,
    hi: i64,
    project: Option<&[usize]>,
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let idx = match input {
        WorkOrderInput::BaseBlock { idx } => *idx,
        other => panic!("IndexScan expects a base block input, got {other:?}"),
    };
    let block = &catalog.table(table).blocks[idx];
    let keys = match &block.columns[col] {
        crate::block::Column::I64(v) => v,
        other => panic!("IndexScan over non-integer column {:?}", other.column_type()),
    };
    // Zone-map check: min/max of this block's key column.
    let (bmin, bmax) = keys
        .iter()
        .fold((i64::MAX, i64::MIN), |(mn, mx), &k| (mn.min(k), mx.max(k)));
    if keys.is_empty() || bmax < lo || bmin > hi {
        // Pruned: only the header was touched.
        return WorkOrderOutput { output_rows: 0, memory_bytes: 128 };
    }
    let sel: Vec<usize> =
        (0..block.num_rows()).filter(|&r| (lo..=hi).contains(&keys[r])).collect();
    let mut out = block.select_rows(&sel);
    if let Some(cols) = project {
        let columns = cols.iter().map(|&c| out.columns[c].clone()).collect();
        out = Block::new(out.header.block_index, columns);
    }
    let rows = out.num_rows() as u64;
    let mem = (block.byte_size() / 4 + out.byte_size()) as u64;
    if rows > 0 {
        states[op.0].output.lock().push(out);
    }
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::catalog::{Schema, Table};
    use crate::expr::CmpOp;
    use crate::value::{ColumnType, Value};

    fn setup() -> (Catalog, TableId) {
        let mut cat = Catalog::new();
        let t = Table::from_columns(
            "nums",
            Schema::new(vec![("id", ColumnType::Int64), ("v", ColumnType::Float64)]),
            vec![
                Column::I64((0..20).collect()),
                Column::F64((0..20).map(|i| (i * 10) as f64).collect()),
            ],
            8,
        );
        let id = cat.add_table(t);
        (cat, id)
    }

    #[test]
    fn scan_block_filters_and_projects() {
        let (cat, tid) = setup();
        let states = vec![OpExecState::new()];
        let pred = Predicate::col_cmp(0, CmpOp::Ge, 4i64);
        let out = execute(
            &cat,
            &states,
            OpId(0),
            tid,
            &pred,
            Some(&[1]),
            &WorkOrderInput::BaseBlock { idx: 0 },
        );
        // Block 0 holds ids 0..8; ids >= 4 -> 4 rows, projected to column v.
        assert_eq!(out.output_rows, 4);
        let rows = states[0].collect_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![Value::Float64(40.0)]);
        assert_eq!(rows[3], vec![Value::Float64(70.0)]);
    }

    #[test]
    fn index_scan_prunes_and_filters() {
        let (cat, tid) = setup();
        let states = vec![OpExecState::new()];
        // ids 0..20 over 3 blocks of 8; range [10, 13] lives in block 1.
        let mut total = 0;
        let mut touched_blocks = 0;
        for idx in 0..cat.table(tid).num_blocks() {
            let out = execute_index(
                &cat,
                &states,
                OpId(0),
                tid,
                0,
                10,
                13,
                Some(&[0]),
                &WorkOrderInput::BaseBlock { idx },
            );
            total += out.output_rows;
            if out.output_rows > 0 {
                touched_blocks += 1;
            }
        }
        assert_eq!(total, 4); // ids 10, 11, 12, 13
        assert_eq!(touched_blocks, 1, "zone map must prune the other blocks");
        let rows = states[0].collect_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], vec![Value::Int64(10)]);
    }

    #[test]
    fn index_scan_empty_range_produces_nothing() {
        let (cat, tid) = setup();
        let states = vec![OpExecState::new()];
        for idx in 0..cat.table(tid).num_blocks() {
            let out = execute_index(
                &cat, &states, OpId(0), tid, 0, 100, 200, None,
                &WorkOrderInput::BaseBlock { idx },
            );
            assert_eq!(out.output_rows, 0);
        }
        assert_eq!(states[0].output_len(), 0);
    }

    #[test]
    fn scan_all_blocks_covers_table() {
        let (cat, tid) = setup();
        let states = vec![OpExecState::new()];
        let n_blocks = cat.table(tid).num_blocks();
        let mut total = 0;
        for idx in 0..n_blocks {
            total += execute(
                &cat,
                &states,
                OpId(0),
                tid,
                &Predicate::True,
                None,
                &WorkOrderInput::BaseBlock { idx },
            )
            .output_rows;
        }
        assert_eq!(total, 20);
        assert_eq!(states[0].output_len(), n_blocks);
    }
}
