//! Sort (run generation + merge) and TopK work orders.

use std::cmp::Ordering;

use crate::block::Block;
use crate::plan::{OpId, PhysicalPlan};
use crate::value::Value;

use super::{all_child_blocks, child_ops, OpExecState, WorkOrderInput, WorkOrderOutput};

fn cmp_rows(a: &[Value], b: &[Value], cols: &[usize], desc: &[bool]) -> Ordering {
    for (i, &c) in cols.iter().enumerate() {
        let ord = a[c].total_cmp(&b[c]);
        let ord = if desc.get(i).copied().unwrap_or(false) { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn sort_block(block: &Block, cols: &[usize], desc: &[bool]) -> Block {
    let mut idx: Vec<usize> = (0..block.num_rows()).collect();
    idx.sort_by(|&x, &y| {
        let rx = block.row(x);
        let ry = block.row(y);
        cmp_rows(&rx, &ry, cols, desc)
    });
    block.select_rows(&idx)
}

pub(super) fn execute_run_generation(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    cols: &[usize],
    desc: &[bool],
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let block = match input {
        WorkOrderInput::ChildBlock { child, idx } => states[child.0].output_block(*idx),
        WorkOrderInput::BaseBlock { idx } => {
            let child = child_ops(plan, op)[0];
            states[child.0].output_block(*idx)
        }
        WorkOrderInput::AllInputs => panic!("SortRunGeneration streams one block per work order"),
    };
    let run = sort_block(&block, cols, desc);
    let rows = run.num_rows() as u64;
    let mem = (2 * block.byte_size()) as u64;
    states[op.0].sorted_runs.lock().push(run);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

pub(super) fn execute_merge(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    cols: &[usize],
    desc: &[bool],
) -> WorkOrderOutput {
    let run_child = child_ops(plan, op)[0];
    let runs = states[run_child.0].sorted_runs.lock().clone();
    // k-way merge via repeated minimum over run cursors (runs are few).
    let mut cursors = vec![0usize; runs.len()];
    let total: usize = runs.iter().map(Block::num_rows).sum();
    let mut out: Option<Block> = None;
    for _ in 0..total {
        let mut best: Option<(usize, Vec<Value>)> = None;
        for (ri, run) in runs.iter().enumerate() {
            if cursors[ri] >= run.num_rows() {
                continue;
            }
            let row = run.row(cursors[ri]);
            let better = match &best {
                None => true,
                Some((_, brow)) => cmp_rows(&row, brow, cols, desc) == Ordering::Less,
            };
            if better {
                best = Some((ri, row));
            }
        }
        let (ri, row) = best.expect("total counted rows");
        cursors[ri] += 1;
        match &mut out {
            Some(b) => b.push_row(row),
            None => {
                let types: Vec<_> = row.iter().map(Value::column_type).collect();
                let mut b = Block::empty(0, &types);
                b.push_row(row);
                out = Some(b);
            }
        }
    }
    let out = out.unwrap_or_else(|| Block::new(0, Vec::new()));
    let rows = out.num_rows() as u64;
    let mem = (out.byte_size() * 2) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

pub(super) fn execute_topk(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    k: usize,
    col: usize,
    desc: bool,
) -> WorkOrderOutput {
    let child = child_ops(plan, op)[0];
    let blocks = all_child_blocks(states, child);
    let mut rows: Vec<Vec<Value>> =
        blocks.iter().flat_map(|b| (0..b.num_rows()).map(|i| b.row(i))).collect();
    rows.sort_by(|a, b| {
        let ord = a[col].total_cmp(&b[col]);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    rows.truncate(k);
    let mut out: Option<Block> = None;
    for row in rows {
        match &mut out {
            Some(b) => b.push_row(row),
            None => {
                let types: Vec<_> = row.iter().map(Value::column_type).collect();
                let mut b = Block::empty(0, &types);
                b.push_row(row);
                out = Some(b);
            }
        }
    }
    let out = out.unwrap_or_else(|| Block::new(0, Vec::new()));
    let nrows = out.num_rows() as u64;
    let mem = (blocks.iter().map(Block::byte_size).sum::<usize>() + out.byte_size()) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: nrows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::plan::{OpKind, OpSpec, PlanBuilder};

    fn sort_setup() -> (PhysicalPlan, Vec<OpExecState>) {
        let mut b = PlanBuilder::new("s");
        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 6.0, 1, 0.1, 1.0);
        let run = b.add_op(
            OpKind::SortRunGeneration,
            OpSpec::SortRunGeneration { cols: vec![0], desc: vec![false] },
            vec![],
            vec![],
            6.0,
            1,
            0.1,
            1.0,
        );
        let merge = b.add_op(
            OpKind::SortMergeRun,
            OpSpec::SortMergeRun { cols: vec![0], desc: vec![false] },
            vec![],
            vec![],
            6.0,
            1,
            0.1,
            1.0,
        );
        b.connect(scan, run, true);
        b.connect(run, merge, false);
        let plan = b.finish(merge);
        let states: Vec<OpExecState> = (0..3).map(|_| OpExecState::new()).collect();
        states[0].output.lock().push(Block::new(
            0,
            vec![Column::I64(vec![5, 1, 3]), Column::Str(vec!["e".into(), "a".into(), "c".into()])],
        ));
        states[0].output.lock().push(Block::new(
            1,
            vec![Column::I64(vec![4, 2]), Column::Str(vec!["d".into(), "b".into()])],
        ));
        (plan, states)
    }

    #[test]
    fn run_generation_sorts_each_block() {
        let (plan, states) = sort_setup();
        execute_run_generation(
            &plan,
            &states,
            OpId(1),
            &[0],
            &[false],
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        let runs = states[1].sorted_runs.lock();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].row(0)[0], Value::Int64(1));
        assert_eq!(runs[0].row(2)[0], Value::Int64(5));
    }

    #[test]
    fn merge_produces_global_order() {
        let (plan, states) = sort_setup();
        for idx in 0..2 {
            execute_run_generation(
                &plan,
                &states,
                OpId(1),
                &[0],
                &[false],
                &WorkOrderInput::ChildBlock { child: OpId(0), idx },
            );
        }
        let out = execute_merge(&plan, &states, OpId(2), &[0], &[false]);
        assert_eq!(out.output_rows, 5);
        let rows = states[2].collect_rows();
        let keys: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        let names: Vec<String> =
            rows.iter().map(|r| r[1].as_str().unwrap().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn descending_sort() {
        let (plan, states) = sort_setup();
        for idx in 0..2 {
            execute_run_generation(
                &plan,
                &states,
                OpId(1),
                &[0],
                &[true],
                &WorkOrderInput::ChildBlock { child: OpId(0), idx },
            );
        }
        execute_merge(&plan, &states, OpId(2), &[0], &[true]);
        let rows = states[2].collect_rows();
        let keys: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn topk_keeps_k_best() {
        let mut b = PlanBuilder::new("t");
        let scan = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 5.0, 1, 0.1, 1.0);
        let topk = b.add_op(
            OpKind::TopK,
            OpSpec::TopK { k: 2, col: 0, desc: true },
            vec![],
            vec![],
            5.0,
            1,
            0.1,
            1.0,
        );
        b.connect(scan, topk, false);
        let plan = b.finish(topk);
        let states: Vec<OpExecState> = (0..2).map(|_| OpExecState::new()).collect();
        states[0]
            .output
            .lock()
            .push(Block::new(0, vec![Column::I64(vec![3, 9, 1, 7, 5])]));
        let out = execute_topk(&plan, &states, OpId(1), 2, 0, true);
        assert_eq!(out.output_rows, 2);
        let rows = states[1].collect_rows();
        assert_eq!(rows[0][0], Value::Int64(9));
        assert_eq!(rows[1][0], Value::Int64(7));
    }
}
