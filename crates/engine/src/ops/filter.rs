//! Select and Project work orders over a child's output blocks.

use crate::block::Block;
use crate::expr::{Predicate, ScalarExpr};
use crate::plan::{OpId, PhysicalPlan};

use super::{child_ops, OpExecState, WorkOrderInput, WorkOrderOutput};

fn input_block(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    input: &WorkOrderInput,
) -> Block {
    match input {
        WorkOrderInput::ChildBlock { child, idx } => states[child.0].output_block(*idx),
        WorkOrderInput::BaseBlock { idx } => {
            // Tolerated alias: single-child ops addressed by bare index.
            let child = child_ops(plan, op)[0];
            states[child.0].output_block(*idx)
        }
        WorkOrderInput::AllInputs => panic!("streaming operator got AllInputs"),
    }
}

pub(super) fn execute_select(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    predicate: &Predicate,
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let block = input_block(plan, states, op, input);
    let sel = predicate.selected_rows(&block);
    let out = block.select_rows(&sel);
    let rows = out.num_rows() as u64;
    let mem = (block.byte_size() + out.byte_size()) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

pub(super) fn execute_project(
    plan: &PhysicalPlan,
    states: &[OpExecState],
    op: OpId,
    exprs: &[ScalarExpr],
    input: &WorkOrderInput,
) -> WorkOrderOutput {
    let block = input_block(plan, states, op, input);
    let columns = exprs.iter().map(|e| e.eval_block(&block)).collect();
    let out = Block::new(block.header.block_index, columns);
    let rows = out.num_rows() as u64;
    let mem = (block.byte_size() + out.byte_size()) as u64;
    states[op.0].output.lock().push(out);
    WorkOrderOutput { output_rows: rows, memory_bytes: mem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;
    use crate::expr::{ArithOp, CmpOp};
    use crate::plan::{OpKind, OpSpec, PlanBuilder};
    use crate::value::Value;

    fn plan_and_states() -> (PhysicalPlan, Vec<OpExecState>) {
        let mut b = PlanBuilder::new("t");
        let child = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![], vec![], 10.0, 1, 0.1, 1.0);
        let sel = b.add_op(OpKind::Select, OpSpec::Synthetic, vec![], vec![], 10.0, 1, 0.1, 1.0);
        b.connect(child, sel, true);
        let plan = b.finish(sel);
        let states = vec![OpExecState::new(), OpExecState::new()];
        states[0].output.lock().push(Block::new(
            0,
            vec![Column::I64(vec![1, 2, 3, 4]), Column::F64(vec![0.5, 1.5, 2.5, 3.5])],
        ));
        (plan, states)
    }

    #[test]
    fn select_filters_child_block() {
        let (plan, states) = plan_and_states();
        let pred = Predicate::col_cmp(0, CmpOp::Gt, 2i64);
        let out = execute_select(
            &plan,
            &states,
            OpId(1),
            &pred,
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        assert_eq!(out.output_rows, 2);
        let rows = states[1].collect_rows();
        assert_eq!(rows[0][0], Value::Int64(3));
        assert_eq!(rows[1][0], Value::Int64(4));
    }

    #[test]
    fn project_computes_expressions() {
        let (plan, states) = plan_and_states();
        let exprs = vec![
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(2i64)),
            ScalarExpr::col(1),
        ];
        let out = execute_project(
            &plan,
            &states,
            OpId(1),
            &exprs,
            &WorkOrderInput::ChildBlock { child: OpId(0), idx: 0 },
        );
        assert_eq!(out.output_rows, 4);
        let rows = states[1].collect_rows();
        assert_eq!(rows[3], vec![Value::Int64(8), Value::Float64(3.5)]);
    }
}
