//! The scheduling interface: runtime query state, scheduling events and
//! decisions, and the [`Scheduler`] trait every policy (heuristic or
//! learned) implements.
//!
//! Both the discrete-event simulator and the real threaded executor build
//! a [`SchedContext`] snapshot at every scheduling event (Section 5.2 of
//! the paper) and hand it to the active [`Scheduler`], which answers with
//! zero or more [`SchedDecision`]s: *which operator to start a pipeline
//! from, how deep the pipeline runs, and how many threads the query gets*
//! (Section 5.3).

use std::sync::Arc;

use crate::plan::{OpId, PhysicalPlan};
use crate::stats::{TrailingRegressor, WorkOrderStats};

/// Identifier of a query within one execution session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Lifecycle of an operator during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// Some blocking (pipeline-breaking) producer has not finished.
    Blocked,
    /// All blocking producers finished; the operator can root a pipeline.
    Schedulable,
    /// Currently part of a scheduled pipeline.
    Running,
    /// All work orders completed.
    Finished,
}

/// Window size of the per-operator trailing regressors (footnote 1 of the
/// paper: fit only on the work orders within the last time window).
pub const REGRESSOR_WINDOW: usize = 16;

/// Per-operator runtime state.
#[derive(Debug, Clone)]
pub struct OpRuntime {
    /// Current lifecycle status.
    pub status: OpStatus,
    /// Planned number of work orders.
    pub total_work_orders: u32,
    /// Completed work orders.
    pub completed_work_orders: u32,
    /// Dispatched (running or queued on a thread) but not yet completed.
    pub dispatched_work_orders: u32,
    /// Duration estimator over completed work orders (drives O-DUR).
    pub dur_estimator: TrailingRegressor,
    /// Memory estimator over completed work orders (drives O-MEM).
    pub mem_estimator: TrailingRegressor,
}

impl OpRuntime {
    /// Creates runtime state for an operator with optimizer estimates as
    /// regression fallbacks.
    pub fn new(total_work_orders: u32, est_duration: f64, est_memory: f64) -> Self {
        Self {
            status: OpStatus::Blocked,
            total_work_orders,
            completed_work_orders: 0,
            dispatched_work_orders: 0,
            dur_estimator: TrailingRegressor::new(REGRESSOR_WINDOW, est_duration),
            mem_estimator: TrailingRegressor::new(REGRESSOR_WINDOW, est_memory),
        }
    }

    /// Remaining (not completed) work orders — the O-WO feature.
    pub fn remaining_work_orders(&self) -> u32 {
        self.total_work_orders - self.completed_work_orders
    }

    /// Work orders not even dispatched yet.
    pub fn undispatched_work_orders(&self) -> u32 {
        self.total_work_orders - self.completed_work_orders - self.dispatched_work_orders
    }

    /// Estimated total duration of the remaining work orders — the O-DUR
    /// feature (per-WO regression prediction × remaining count).
    pub fn est_remaining_duration(&self) -> f64 {
        self.dur_estimator.predict_next() * self.remaining_work_orders() as f64
    }

    /// Estimated total memory of the remaining work orders — the O-MEM
    /// feature.
    pub fn est_remaining_memory(&self) -> f64 {
        self.mem_estimator.predict_next() * self.remaining_work_orders() as f64
    }

    /// Records a completed work order's stats.
    pub fn observe_completion(&mut self, stats: &WorkOrderStats) {
        debug_assert!(self.dispatched_work_orders > 0);
        self.dispatched_work_orders -= 1;
        self.completed_work_orders += 1;
        self.dur_estimator.observe(stats.duration);
        self.mem_estimator.observe(stats.memory);
        if self.completed_work_orders == self.total_work_orders {
            self.status = OpStatus::Finished;
        }
    }
}

/// Runtime state of one query.
#[derive(Debug, Clone)]
pub struct QueryRuntime {
    /// Query id.
    pub qid: QueryId,
    /// The physical plan being executed.
    pub plan: Arc<PhysicalPlan>,
    /// Per-operator runtime state, indexed by [`OpId`].
    pub ops: Vec<OpRuntime>,
    /// Arrival time (engine clock).
    pub arrival_time: f64,
    /// Completion time, once finished.
    pub finish_time: Option<f64>,
    /// Scheduling priority (higher = more important). Admission gates
    /// shed or defer the lowest-priority queued queries first; the
    /// default of 0 makes every query equal.
    pub priority: i32,
    /// Absolute deadline (engine clock), when the query carries an SLO.
    /// The executor cancels the query cooperatively when the clock
    /// passes this point; deadline-aware policies can also read it.
    pub deadline: Option<f64>,
    /// Threads currently granted to this query's pipelines.
    pub assigned_threads: usize,
    /// Which threads have executed work of this query before — the Q-LOC
    /// feature (1-hot locality status per thread).
    pub executed_on: Vec<bool>,
    /// Per-op count of unsatisfied producer edges. Maintained for every
    /// op regardless of its own status, so a Running op reverted by a
    /// fault can restore the correct Blocked/Schedulable status in O(1).
    pending: Vec<u32>,
    /// Sorted cache of the ops whose status is [`OpStatus::Schedulable`]
    /// — the scheduling frontier. Kept in sync incrementally by the
    /// transition methods and rebuilt wholesale by
    /// [`QueryRuntime::refresh_statuses`].
    frontier: Vec<OpId>,
}

/// Whether a producer edge is satisfied given the producer's status: a
/// non-pipeline-breaking producer only has to have *started* (Running or
/// Finished); a pipeline-breaking producer must have finished.
#[inline]
fn edge_satisfied(status: OpStatus, non_pipeline_breaking: bool) -> bool {
    if non_pipeline_breaking {
        matches!(status, OpStatus::Running | OpStatus::Finished)
    } else {
        status == OpStatus::Finished
    }
}

impl QueryRuntime {
    /// Creates runtime state for a newly arrived query.
    pub fn new(qid: QueryId, plan: Arc<PhysicalPlan>, arrival_time: f64, total_threads: usize) -> Self {
        let ops = plan
            .ops
            .iter()
            .map(|o| OpRuntime::new(o.num_work_orders, o.est_wo_duration, o.est_wo_memory))
            .collect();
        let n = plan.ops.len();
        let mut rt = Self {
            qid,
            plan,
            ops,
            arrival_time,
            finish_time: None,
            priority: 0,
            deadline: None,
            assigned_threads: 0,
            executed_on: vec![false; total_threads],
            pending: vec![0; n],
            frontier: Vec::with_capacity(n),
        };
        rt.refresh_statuses();
        rt
    }

    /// Recomputes Blocked/Schedulable statuses by full rescan, then
    /// rebuilds the pending counters and frontier cache from scratch.
    /// An operator is schedulable when every producer behind a
    /// *pipeline-breaking* edge has finished and every producer behind a
    /// non-breaking edge has at least started producing (Running or
    /// Finished). Leaves are always schedulable until started.
    ///
    /// This is the O(ops + edges) reference oracle; steady-state code
    /// paths use the O(degree) incremental transitions
    /// ([`QueryRuntime::mark_running`],
    /// [`QueryRuntime::observe_wo_completion`],
    /// [`QueryRuntime::revert_from_running`],
    /// [`QueryRuntime::force_finish`]) instead. `tests/frontier_props.rs`
    /// pins the two paths bit-identical.
    pub fn refresh_statuses(&mut self) {
        let plan = Arc::clone(&self.plan);
        for i in 0..self.ops.len() {
            if matches!(self.ops[i].status, OpStatus::Running | OpStatus::Finished) {
                continue;
            }
            let mut ok = true;
            for (edge, child) in plan.children_of(OpId(i)) {
                if !edge_satisfied(self.ops[child.0].status, edge.non_pipeline_breaking) {
                    ok = false;
                    break;
                }
            }
            self.ops[i].status = if ok { OpStatus::Schedulable } else { OpStatus::Blocked };
        }
        self.rebuild_frontier();
    }

    /// Recomputes `pending` and `frontier` wholesale from the current
    /// statuses. The frontier ends up sorted because ops are visited in
    /// id order.
    fn rebuild_frontier(&mut self) {
        self.frontier.clear();
        for i in 0..self.ops.len() {
            let mut pending = 0u32;
            for e in self.plan.children(OpId(i)) {
                if !edge_satisfied(self.ops[e.op.0].status, e.non_pipeline_breaking) {
                    pending += 1;
                }
            }
            self.pending[i] = pending;
            if self.ops[i].status == OpStatus::Schedulable {
                self.frontier.push(OpId(i));
            }
        }
    }

    fn frontier_insert(&mut self, op: OpId) {
        if let Err(i) = self.frontier.binary_search(&op) {
            self.frontier.insert(i, op);
        }
    }

    fn frontier_remove(&mut self, op: OpId) {
        if let Ok(i) = self.frontier.binary_search(&op) {
            self.frontier.remove(i);
        }
    }

    /// Applies a status transition of `op` to the incremental state:
    /// fixes `op`'s own frontier membership, then walks only `op`'s
    /// consumers, adjusting their pending counters for every producer
    /// edge whose satisfaction flipped. A consumer whose counter drops
    /// to zero while Blocked is promoted to Schedulable; one whose
    /// counter leaves zero while Schedulable is demoted to Blocked.
    /// Counters of Running/Finished consumers are kept current too (no
    /// status change), which is what makes fault reverts order-free.
    fn after_transition(&mut self, op: OpId, old: OpStatus, new: OpStatus) {
        if old == OpStatus::Schedulable {
            self.frontier_remove(op);
        }
        if new == OpStatus::Schedulable {
            self.frontier_insert(op);
        }
        let plan = Arc::clone(&self.plan);
        for e in plan.parents(op) {
            let before = edge_satisfied(old, e.non_pipeline_breaking);
            let after = edge_satisfied(new, e.non_pipeline_breaking);
            if before == after {
                continue;
            }
            let p = e.op.0;
            if after {
                self.pending[p] -= 1;
                if self.pending[p] == 0 && self.ops[p].status == OpStatus::Blocked {
                    self.ops[p].status = OpStatus::Schedulable;
                    self.frontier_insert(e.op);
                }
            } else {
                self.pending[p] += 1;
                if self.pending[p] == 1 && self.ops[p].status == OpStatus::Schedulable {
                    self.ops[p].status = OpStatus::Blocked;
                    self.frontier_remove(e.op);
                }
            }
        }
    }

    fn transition(&mut self, op: OpId, new: OpStatus) {
        let old = self.ops[op.0].status;
        if old == new {
            return;
        }
        self.ops[op.0].status = new;
        self.after_transition(op, old, new);
    }

    /// Marks `op` Running, incrementally satisfying the
    /// non-pipeline-breaking producer edges into its consumers. Safe to
    /// call on a Blocked op (pipeline chains start deeper members whose
    /// producer is the chain op below them, started in the same
    /// decision).
    pub fn mark_running(&mut self, op: OpId) {
        self.transition(op, OpStatus::Running);
    }

    /// Records a completed work order and, when it was the op's last,
    /// propagates the Finished transition to consumers (satisfying their
    /// pipeline-breaking producer edges).
    pub fn observe_wo_completion(&mut self, op: OpId, stats: &WorkOrderStats) {
        let old = self.ops[op.0].status;
        self.ops[op.0].observe_completion(stats);
        let new = self.ops[op.0].status;
        if old != new {
            self.after_transition(op, old, new);
        }
    }

    /// Forces `op` straight to Finished (exact-finish paths where the
    /// executor retires an operator without a final work-order
    /// completion).
    pub fn force_finish(&mut self, op: OpId) {
        self.transition(op, OpStatus::Finished);
    }

    /// Reverts a Running op whose pipeline was torn down by a fault
    /// (worker loss, cancellation of a sibling pipeline). The op goes
    /// back to Schedulable when its producers are still satisfied and to
    /// Blocked otherwise — its pending counter stayed current while it
    /// ran, so this is O(consumer degree) and independent of the order
    /// in which a torn-down chain is reverted.
    pub fn revert_from_running(&mut self, op: OpId) {
        let new = if self.pending[op.0] == 0 { OpStatus::Schedulable } else { OpStatus::Blocked };
        self.transition(op, new);
    }

    /// Operators currently schedulable (candidate execution roots), as a
    /// borrowed slice of the cached frontier — sorted ascending, no
    /// allocation.
    pub fn schedulable_ops(&self) -> &[OpId] {
        &self.frontier
    }

    /// Allocation-free emptiness test for the frontier.
    pub fn has_schedulable(&self) -> bool {
        !self.frontier.is_empty()
    }

    /// Legacy full-scan computation of the schedulable set, retained as
    /// the reference oracle: `SimConfig::reference_mode` baselines and
    /// `tests/frontier_props.rs` compare the cached frontier against it.
    pub fn schedulable_ops_scan(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.status == OpStatus::Schedulable)
            .map(|(i, _)| OpId(i))
            .collect()
    }

    /// Whether every operator has finished.
    pub fn is_finished(&self) -> bool {
        self.ops.iter().all(|o| o.status == OpStatus::Finished)
    }

    /// Total remaining estimated work across operators (seconds).
    pub fn est_remaining_work(&self) -> f64 {
        self.ops.iter().map(OpRuntime::est_remaining_duration).sum()
    }

    /// The query's latency, if finished.
    pub fn duration(&self) -> Option<f64> {
        self.finish_time.map(|f| f - self.arrival_time)
    }
}

/// Compact per-query lifecycle phase stored in [`QueryHot`]'s `status`
/// column.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// Arrived; no worker threads granted right now.
    Queued = 0,
    /// At least one pipeline holds granted threads.
    Running = 1,
    /// Every operator finished.
    Finished = 2,
}

/// Structure-of-arrays mirror of the per-query *hot* state: the handful
/// of scalars the event loop, the policies, and the encoder's
/// dynamic-tail snapshot read on every scheduling event. At mpl 1024+
/// the array-of-structs layout made those reads walk one cache line per
/// query (each [`QueryRuntime`] is hundreds of bytes); here each column
/// is contiguous, and the derived `n_schedulable` counter turns the
/// event loop's "is there any schedulable work?" guard from an O(n)
/// scan into O(1).
///
/// Columns are indexed in lockstep with the owning `Vec<QueryRuntime>`.
/// Executors maintain the mirror incrementally by calling
/// [`QueryHot::sync`] after mutating a query (O(ops), dominated by the
/// remaining-work sum) and [`QueryHot::push`]/[`QueryHot::remove`]
/// alongside the owning list's insertions/removals.
/// [`QueryHot::from_queries`] is the wholesale recompute used by
/// reference baselines and the SoA-vs-struct oracle proptest.
#[derive(Debug, Clone, Default)]
pub struct QueryHot {
    /// Lifecycle phase per query.
    pub status: Vec<QueryPhase>,
    /// Remaining (not completed) work orders summed over the query's ops.
    pub remaining_wos: Vec<u32>,
    /// Length of the schedulable frontier (0 = nothing can root a
    /// pipeline).
    pub frontier_len: Vec<u32>,
    /// Absolute deadline; `f64::INFINITY` when the query carries no SLO.
    pub deadline: Vec<f64>,
    /// Scheduling priority (same value as [`QueryRuntime::priority`]).
    pub priority: Vec<i32>,
    /// How many queries currently have a non-empty frontier.
    n_schedulable: usize,
}

impl QueryHot {
    /// An empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mirrored queries.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// True when no queries are mirrored.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Drops all rows (capacity kept).
    pub fn clear(&mut self) {
        self.status.clear();
        self.remaining_wos.clear();
        self.frontier_len.clear();
        self.deadline.clear();
        self.priority.clear();
        self.n_schedulable = 0;
    }

    fn row_of(q: &QueryRuntime) -> (QueryPhase, u32, u32, f64, i32) {
        let status = if q.finish_time.is_some() {
            QueryPhase::Finished
        } else if q.assigned_threads > 0 {
            QueryPhase::Running
        } else {
            QueryPhase::Queued
        };
        let remaining = q.ops.iter().map(OpRuntime::remaining_work_orders).sum();
        let frontier = q.schedulable_ops().len() as u32;
        (status, remaining, frontier, q.deadline.unwrap_or(f64::INFINITY), q.priority)
    }

    /// Appends a row mirroring `q` (call right after pushing `q` onto
    /// the owning query list).
    pub fn push(&mut self, q: &QueryRuntime) {
        let (status, remaining, frontier, deadline, priority) = Self::row_of(q);
        self.status.push(status);
        self.remaining_wos.push(remaining);
        self.frontier_len.push(frontier);
        self.deadline.push(deadline);
        self.priority.push(priority);
        self.n_schedulable += usize::from(frontier > 0);
    }

    /// Removes row `idx`, shifting later rows down (mirrors
    /// `Vec::remove` on the owning query list).
    pub fn remove(&mut self, idx: usize) {
        self.n_schedulable -= usize::from(self.frontier_len[idx] > 0);
        self.status.remove(idx);
        self.remaining_wos.remove(idx);
        self.frontier_len.remove(idx);
        self.deadline.remove(idx);
        self.priority.remove(idx);
    }

    /// Recomputes row `idx` from `q` after a mutation. O(ops) for the
    /// remaining-work sum; everything else is O(1).
    pub fn sync(&mut self, idx: usize, q: &QueryRuntime) {
        let (status, remaining, frontier, deadline, priority) = Self::row_of(q);
        let was = self.frontier_len[idx] > 0;
        let now = frontier > 0;
        if was != now {
            if now {
                self.n_schedulable += 1;
            } else {
                self.n_schedulable -= 1;
            }
        }
        self.status[idx] = status;
        self.remaining_wos[idx] = remaining;
        self.frontier_len[idx] = frontier;
        self.deadline[idx] = deadline;
        self.priority[idx] = priority;
    }

    /// Rebuilds every row wholesale (capacity kept). The reference
    /// oracle for the incremental maintenance above.
    pub fn rebuild(&mut self, queries: &[QueryRuntime]) {
        self.clear();
        for q in queries {
            self.push(q);
        }
    }

    /// Builds a fresh mirror of `queries` (test and baseline helper).
    pub fn from_queries(queries: &[QueryRuntime]) -> Self {
        let mut hot = Self::new();
        hot.rebuild(queries);
        hot
    }

    /// How many queries have a non-empty frontier — O(1).
    pub fn n_schedulable(&self) -> usize {
        self.n_schedulable
    }

    /// True when at least one query has schedulable work — O(1).
    pub fn any_schedulable(&self) -> bool {
        self.n_schedulable > 0
    }
}

/// The state snapshot handed to a scheduler at each scheduling event.
///
/// `queries` and `hot` describe the same query list in two layouts: the
/// full array-of-structs runtime state, and the structure-of-arrays hot
/// columns (indexed in lockstep). The split borrow exists so policies
/// and the encoder's dynamic tail can stream the columns they need
/// without pulling whole [`QueryRuntime`]s through the cache.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Engine clock (seconds since session start).
    pub time: f64,
    /// Current worker-pool size.
    pub total_threads: usize,
    /// Threads currently idle (assignable) — drives the Q-FTH feature.
    pub free_threads: usize,
    /// Which threads are currently idle (for Q-LOC).
    pub free_thread_ids: &'a [usize],
    /// Active (arrived, unfinished) queries.
    pub queries: &'a [QueryRuntime],
    /// Structure-of-arrays view of the per-query hot columns, in
    /// lockstep with `queries`.
    pub hot: &'a QueryHot,
    /// Memory (bytes) currently held by in-flight pipelines and work
    /// orders — the concurrent-mix signal admission gates weigh an
    /// arrival against.
    pub in_flight_mem: f64,
    /// Memory budget (bytes) before the execution cost model starts
    /// thrashing; `f64::INFINITY` when the host executor does not track
    /// a budget.
    pub mem_budget: f64,
}

impl<'a> SchedContext<'a> {
    /// Finds an active query by id.
    pub fn query(&self, qid: QueryId) -> Option<&QueryRuntime> {
        self.queries.iter().find(|q| q.qid == qid)
    }

    /// Memory pressure as a fraction of the budget (`0.0` = idle,
    /// `>= 1.0` = thrashing), clamped to `[0, 8]` so a corrupt budget
    /// cannot leak non-finite values into feature vectors. Returns `0.0`
    /// when no meaningful budget is known.
    pub fn mem_pressure(&self) -> f64 {
        if !self.mem_budget.is_finite() || self.mem_budget <= 0.0 || !self.in_flight_mem.is_finite()
        {
            return 0.0;
        }
        (self.in_flight_mem / self.mem_budget).clamp(0.0, 8.0)
    }

    /// True when at least one active query has a schedulable operator.
    /// O(1): reads the SoA mirror's schedulable counter.
    pub fn has_schedulable_work(&self) -> bool {
        debug_assert_eq!(self.hot.len(), self.queries.len(), "hot mirror out of lockstep");
        self.hot.any_schedulable()
    }
}

/// The events that trigger a scheduler invocation (Section 5.2), plus
/// the fault events of the robustness layer (worker churn and query
/// cancellation are first-class scheduling triggers, as in Decima's
/// executor-loss handling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedEvent {
    /// A new query arrived.
    QueryArrived(QueryId),
    /// A scheduled operator completed all its work orders.
    OperatorCompleted {
        /// The query the operator belongs to.
        query: QueryId,
        /// The completed operator.
        op: OpId,
    },
    /// Threads finished all assigned work orders and returned to the pool.
    ThreadsFreed(usize),
    /// The worker pool was resized.
    ThreadPoolResized(usize),
    /// A worker thread was lost (crash / preemption). Carries the lost
    /// thread's id; the pool has already shrunk when this is delivered.
    WorkerLost(usize),
    /// A previously lost worker rejoined the pool (carries the new
    /// thread id; the pool has already grown).
    WorkerJoined(usize),
    /// A query was cancelled mid-flight; its threads and memory are
    /// being reclaimed.
    QueryCancelled(QueryId),
    /// A query blew its deadline. Delivered as a notification *before*
    /// the cooperative cancellation ([`SchedEvent::QueryCancelled`] plus
    /// [`Scheduler::on_query_cancelled`]) tears the query down, so
    /// deadline-aware policies can account for the miss.
    DeadlineExceeded(QueryId),
}

/// One scheduling decision (Section 5.3): start a pipeline of
/// `pipeline_degree` operators rooted at `root` in `query`, granting the
/// query up to `threads` worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedDecision {
    /// Target query.
    pub query: QueryId,
    /// Execution root (must be schedulable).
    pub root: OpId,
    /// Number of operators in the pipeline, `>= 1` (1 = root only).
    pub pipeline_degree: usize,
    /// Worker threads to grant, `>= 1`.
    pub threads: usize,
}

/// Why a decision was rejected by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionError {
    /// The referenced query is not active.
    UnknownQuery(QueryId),
    /// The root operator is not schedulable.
    RootNotSchedulable(OpId),
    /// The pipeline degree is zero or exceeds the longest
    /// non-pipeline-breaking chain from the root.
    BadPipelineDegree {
        /// Requested degree.
        requested: usize,
        /// Maximum valid degree.
        max: usize,
    },
    /// Zero threads requested.
    ZeroThreads,
    /// No free threads are available to grant (the pool shrank between
    /// the snapshot the policy saw and dispatch).
    NoFreeThreads,
}

/// Validates a decision against the current context. Executors clamp the
/// thread grant to the free-thread count but reject structurally invalid
/// decisions outright.
pub fn validate_decision(ctx: &SchedContext<'_>, d: &SchedDecision) -> Result<(), DecisionError> {
    let q = ctx.query(d.query).ok_or(DecisionError::UnknownQuery(d.query))?;
    if q.ops[d.root.0].status != OpStatus::Schedulable {
        return Err(DecisionError::RootNotSchedulable(d.root));
    }
    let max = q.plan.longest_npb_chain(d.root);
    if d.pipeline_degree == 0 || d.pipeline_degree > max {
        return Err(DecisionError::BadPipelineDegree { requested: d.pipeline_degree, max });
    }
    if d.threads == 0 {
        return Err(DecisionError::ZeroThreads);
    }
    Ok(())
}

/// Validates a decision against the *current* context and clamps its
/// thread grant to the free-thread count. The worker pool can shrink
/// (resize, worker loss) between the event snapshot a policy saw and
/// dispatch, so a structurally valid decision may still carry a stale
/// over-grant; executors must apply the clamped copy, never the raw
/// decision. Returns [`DecisionError::NoFreeThreads`] when nothing can
/// be granted at all.
pub fn clamp_decision(
    ctx: &SchedContext<'_>,
    d: &SchedDecision,
) -> Result<SchedDecision, DecisionError> {
    validate_decision(ctx, d)?;
    if ctx.free_threads == 0 {
        return Err(DecisionError::NoFreeThreads);
    }
    Ok(SchedDecision { threads: d.threads.min(ctx.free_threads), ..*d })
}

/// What an admission gate decided to do with an arriving query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmitAction {
    /// Admit the arriving query.
    Admit,
    /// Reject (shed) the arriving query outright.
    Reject,
    /// Defer the arriving query: the executor re-submits it after
    /// `delay` seconds and consults the gate again with an incremented
    /// attempt counter.
    Defer {
        /// Seconds to wait before re-submitting.
        delay: f64,
    },
}

/// An admission gate's verdict for one arriving query: what happens to
/// the arrival itself, plus any already-queued victims to shed in its
/// place (priority-aware load shedding evicts the lowest-priority
/// waiting query, which is not necessarily the one that just arrived).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionResponse {
    /// Fate of the arriving query.
    pub action: AdmitAction,
    /// Already-queued queries to shed (cancelled through the same
    /// cooperative path as [`SchedEvent::QueryCancelled`]). Must not
    /// contain the arriving query — its fate is `action`.
    pub shed: Vec<QueryId>,
}

impl AdmissionResponse {
    /// The default verdict: admit, shed nobody.
    pub fn admit() -> Self {
        Self { action: AdmitAction::Admit, shed: Vec::new() }
    }
}

/// Self-reported health of a scheduling policy, polled by guarding
/// wrappers after each `on_event` call. A learned policy reports
/// [`PolicyHealth::Degraded`] when its last forward pass produced
/// non-finite values (NaN logits from a poisoned update), signalling
/// the guard to fall back to a heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyHealth {
    /// The policy's last output was well-formed.
    #[default]
    Healthy,
    /// The policy detected internal corruption; its decisions must not
    /// be trusted.
    Degraded,
}

/// A query-scheduling policy.
///
/// Implementations range from FIFO to the fully learned LSched agent; the
/// executor invokes [`Scheduler::on_event`] at every scheduling event and
/// executes the returned decisions in order (clamping thread grants to
/// availability and ignoring decisions that fail validation).
///
/// `Send` is a supertrait so schedulers can be handed to rollout worker
/// threads (parallel training) and roster entries can be evaluated
/// concurrently; policies are self-contained state machines, so this
/// costs implementors nothing.
pub trait Scheduler: Send {
    /// Human-readable policy name (used in benchmark output).
    fn name(&self) -> String;

    /// Produces scheduling decisions for the given event.
    fn on_event(&mut self, ctx: &SchedContext<'_>, event: &SchedEvent) -> Vec<SchedDecision>;

    /// Offers one simulator tick's worth of deferred scheduling events
    /// as a single batch. `ctx` is the post-tick state (every mutation
    /// of the tick has been applied); `events` lists the deferred
    /// triggers in their firing order and is never empty.
    ///
    /// Returning `Some(decisions)` *consumes* the batch: the executor
    /// applies the decisions in order and does not call
    /// [`Scheduler::on_event`] for these events. Returning `None` (the
    /// default) declines it: the executor falls back to delivering the
    /// events one at a time through `on_event`. Batch-aware policies
    /// (LSched's cross-event fused inference) accept; everything else
    /// keeps its exact per-event semantics for free.
    fn on_tick(
        &mut self,
        _ctx: &SchedContext<'_>,
        _events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        None
    }

    /// Admission gate, consulted once per query arrival *before*
    /// [`SchedEvent::QueryArrived`] is delivered. The arriving query is
    /// already present in `ctx.queries` so the gate can weigh it against
    /// the queued load; `attempt` counts prior deferrals of this query
    /// (0 on first submission). The default admits everything —
    /// overload-protecting wrappers (the sched crate's `Admission` gate
    /// via `GuardedScheduler`) override this. Implementations must be
    /// deterministic (no RNG) so fault-injection runs stay bit-identical.
    fn admit(&mut self, _ctx: &SchedContext<'_>, _arriving: QueryId, _attempt: u32) -> AdmissionResponse {
        AdmissionResponse::admit()
    }

    /// Notifies the policy that a previously returned decision finished
    /// executing (LSched uses this for online reward feedback).
    fn on_decision_executed(&mut self, _ctx: &SchedContext<'_>, _decision: &SchedDecision) {}

    /// Notifies the policy that a query completed.
    fn on_query_finished(&mut self, _time: f64, _query: QueryId) {}

    /// Notifies the policy that a query was cancelled or failed
    /// mid-flight (its state will never be referenced again).
    fn on_query_cancelled(&mut self, _time: f64, _query: QueryId) {}

    /// Self-reported health after the last `on_event` call. Guarding
    /// wrappers poll this to decide whether to trust the decisions.
    fn health(&self) -> PolicyHealth {
        PolicyHealth::Healthy
    }

    /// Resets per-episode state (called between workload runs).
    fn reset(&mut self) {}
}

/// Boxed policies forward transparently, so `Box<dyn Scheduler>` drops
/// into any generic wrapper (e.g. a guard) without monomorphising on the
/// concrete policy type.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_event(&mut self, ctx: &SchedContext<'_>, event: &SchedEvent) -> Vec<SchedDecision> {
        (**self).on_event(ctx, event)
    }
    fn on_tick(
        &mut self,
        ctx: &SchedContext<'_>,
        events: &[SchedEvent],
    ) -> Option<Vec<SchedDecision>> {
        (**self).on_tick(ctx, events)
    }
    fn admit(&mut self, ctx: &SchedContext<'_>, arriving: QueryId, attempt: u32) -> AdmissionResponse {
        (**self).admit(ctx, arriving, attempt)
    }
    fn on_decision_executed(&mut self, ctx: &SchedContext<'_>, decision: &SchedDecision) {
        (**self).on_decision_executed(ctx, decision)
    }
    fn on_query_finished(&mut self, time: f64, query: QueryId) {
        (**self).on_query_finished(time, query)
    }
    fn on_query_cancelled(&mut self, time: f64, query: QueryId) {
        (**self).on_query_cancelled(time, query)
    }
    fn health(&self) -> PolicyHealth {
        (**self).health()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OpKind, OpSpec, PlanBuilder};

    fn join_plan() -> Arc<PhysicalPlan> {
        let mut b = PlanBuilder::new("t");
        let sl = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![0], vec![], 10.0, 2, 0.1, 1.0);
        let sr = b.add_op(OpKind::TableScan, OpSpec::Synthetic, vec![1], vec![], 10.0, 2, 0.1, 1.0);
        let bh = b.add_op(OpKind::BuildHash, OpSpec::Synthetic, vec![0], vec![], 10.0, 2, 0.1, 1.0);
        let ph = b.add_op(OpKind::ProbeHash, OpSpec::Synthetic, vec![0, 1], vec![], 10.0, 2, 0.1, 1.0);
        b.connect(sl, bh, true);
        b.connect(sr, ph, true);
        b.connect(bh, ph, false);
        Arc::new(b.finish(ph))
    }

    #[test]
    fn initial_statuses() {
        let q = QueryRuntime::new(QueryId(1), join_plan(), 0.0, 4);
        // Scans schedulable; build blocked until scan starts; probe blocked.
        assert_eq!(q.ops[0].status, OpStatus::Schedulable);
        assert_eq!(q.ops[1].status, OpStatus::Schedulable);
        assert_eq!(q.ops[2].status, OpStatus::Blocked);
        assert_eq!(q.ops[3].status, OpStatus::Blocked);
        assert_eq!(q.schedulable_ops(), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn statuses_unblock_as_children_progress() {
        let mut q = QueryRuntime::new(QueryId(1), join_plan(), 0.0, 4);
        // Left scan starts running -> build (non-breaking child) unblocks.
        q.ops[0].status = OpStatus::Running;
        q.refresh_statuses();
        assert_eq!(q.ops[2].status, OpStatus::Schedulable);
        // Probe still blocked: build (breaking) unfinished.
        assert_eq!(q.ops[3].status, OpStatus::Blocked);
        // Build finishes, right scan running -> probe schedulable.
        q.ops[2].status = OpStatus::Finished;
        q.ops[1].status = OpStatus::Running;
        q.refresh_statuses();
        assert_eq!(q.ops[3].status, OpStatus::Schedulable);
    }

    #[test]
    fn op_runtime_counters() {
        let mut o = OpRuntime::new(3, 0.5, 100.0);
        assert_eq!(o.remaining_work_orders(), 3);
        assert_eq!(o.est_remaining_duration(), 1.5);
        o.dispatched_work_orders = 2;
        assert_eq!(o.undispatched_work_orders(), 1);
        o.observe_completion(&WorkOrderStats {
            duration: 0.4,
            memory: 80.0,
            output_rows: 10,
            completed_at: 1.0,
        });
        assert_eq!(o.completed_work_orders, 1);
        assert_eq!(o.dispatched_work_orders, 1);
        assert_ne!(o.status, OpStatus::Finished);
    }

    #[test]
    fn op_finishes_at_last_work_order() {
        let mut o = OpRuntime::new(1, 0.5, 100.0);
        o.dispatched_work_orders = 1;
        o.observe_completion(&WorkOrderStats {
            duration: 0.4,
            memory: 80.0,
            output_rows: 10,
            completed_at: 1.0,
        });
        assert_eq!(o.status, OpStatus::Finished);
        assert_eq!(o.remaining_work_orders(), 0);
        assert_eq!(o.est_remaining_duration(), 0.0);
    }

    #[test]
    fn validate_decision_errors() {
        let q = QueryRuntime::new(QueryId(1), join_plan(), 0.0, 4);
        let queries = vec![q];
        let hot = QueryHot::from_queries(&queries);
        let free = [0usize, 1, 2, 3];
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 4,
            free_threads: 4,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        // Unknown query.
        let d = SchedDecision { query: QueryId(9), root: OpId(0), pipeline_degree: 1, threads: 1 };
        assert!(matches!(validate_decision(&ctx, &d), Err(DecisionError::UnknownQuery(_))));
        // Blocked root.
        let d = SchedDecision { query: QueryId(1), root: OpId(3), pipeline_degree: 1, threads: 1 };
        assert!(matches!(validate_decision(&ctx, &d), Err(DecisionError::RootNotSchedulable(_))));
        // Degree too deep: left scan -> build is the only npb chain (2).
        let d = SchedDecision { query: QueryId(1), root: OpId(0), pipeline_degree: 5, threads: 1 };
        assert!(matches!(
            validate_decision(&ctx, &d),
            Err(DecisionError::BadPipelineDegree { max: 2, .. })
        ));
        // Valid.
        let d = SchedDecision { query: QueryId(1), root: OpId(0), pipeline_degree: 2, threads: 2 };
        assert!(validate_decision(&ctx, &d).is_ok());
        assert!(ctx.has_schedulable_work());
    }

    #[test]
    fn clamp_decision_reclamps_stale_thread_grants() {
        let q = QueryRuntime::new(QueryId(1), join_plan(), 0.0, 8);
        let queries = vec![q];
        let hot = QueryHot::from_queries(&queries);
        // The policy saw 8 free threads; the pool shrank to 2 by dispatch.
        let free = [0usize, 1];
        let ctx = SchedContext {
            time: 0.0,
            total_threads: 2,
            free_threads: 2,
            free_thread_ids: &free,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        let stale = SchedDecision { query: QueryId(1), root: OpId(0), pipeline_degree: 2, threads: 8 };
        let clamped = clamp_decision(&ctx, &stale).unwrap();
        assert_eq!(clamped.threads, 2);
        assert_eq!(clamped.pipeline_degree, 2);

        // With no free threads at all the decision is rejected, not
        // clamped to zero.
        let none: [usize; 0] = [];
        let ctx0 = SchedContext {
            time: 0.0,
            total_threads: 2,
            free_threads: 0,
            free_thread_ids: &none,
            queries: &queries,
            hot: &hot,
            in_flight_mem: 0.0,
            mem_budget: f64::INFINITY,
        };
        assert!(matches!(clamp_decision(&ctx0, &stale), Err(DecisionError::NoFreeThreads)));
    }
}
