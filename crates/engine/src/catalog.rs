//! Table catalog: schemas and block-resident table data.

use std::collections::HashMap;

use crate::block::{blocks_from_columns, Block, Column};
use crate::value::ColumnType;

/// Identifier of a table within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Schema of a relation: named, typed columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Column names, in position order.
    pub names: Vec<String>,
    /// Column types, aligned with `names`.
    pub types: Vec<ColumnType>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(cols: Vec<(&str, ColumnType)>) -> Self {
        let (names, types) = cols.into_iter().map(|(n, t)| (n.to_string(), t)).unzip();
        Self { names, types }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Resolves a column name to its position.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// An in-memory, block-resident table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// Storage blocks.
    pub blocks: Vec<Block>,
}

impl Table {
    /// Creates a table by chunking prebuilt columns into blocks.
    pub fn from_columns(
        name: &str,
        schema: Schema,
        columns: Vec<Column>,
        rows_per_block: usize,
    ) -> Self {
        assert_eq!(schema.arity(), columns.len(), "schema/column arity mismatch");
        for (t, c) in schema.types.iter().zip(&columns) {
            assert_eq!(*t, c.column_type(), "schema/column type mismatch");
        }
        Self { name: name.to_string(), schema, blocks: blocks_from_columns(columns, rows_per_block) }
    }

    /// Total number of rows across blocks.
    pub fn num_rows(&self) -> usize {
        self.blocks.iter().map(Block::num_rows).sum()
    }

    /// Number of storage blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// The engine's table catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table, returning its id.
    ///
    /// # Panics
    /// Panics on duplicate table names.
    pub fn add_table(&mut self, table: Table) -> TableId {
        assert!(
            !self.by_name.contains_key(&table.name),
            "duplicate table {:?}",
            table.name
        );
        let id = TableId(self.tables.len());
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        id
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    /// The table with the given name, if present.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.table_id(name).map(|id| self.table(id))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over all tables.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate().map(|(i, t)| (TableId(i), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::from_columns(
            "t",
            Schema::new(vec![("id", ColumnType::Int64), ("v", ColumnType::Float64)]),
            vec![Column::I64((0..100).collect()), Column::F64((0..100).map(|i| i as f64).collect())],
            32,
        )
    }

    #[test]
    fn table_blocks_and_rows() {
        let t = demo_table();
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.num_blocks(), 4); // 32+32+32+4
        assert_eq!(t.blocks[3].num_rows(), 4);
    }

    #[test]
    fn schema_lookup() {
        let t = demo_table();
        assert_eq!(t.schema.col("v"), Some(1));
        assert_eq!(t.schema.col("nope"), None);
        assert_eq!(t.schema.arity(), 2);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        let id = c.add_table(demo_table());
        assert_eq!(c.table_id("t"), Some(id));
        assert_eq!(c.table(id).num_rows(), 100);
        assert_eq!(c.len(), 1);
        assert!(c.table_by_name("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_table_panics() {
        let mut c = Catalog::new();
        c.add_table(demo_table());
        c.add_table(demo_table());
    }
}
