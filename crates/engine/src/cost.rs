//! The cost model shared by the query planner (a-priori work-order
//! estimates), the discrete-event simulator (sampled durations with
//! pipelining/locality/thrashing dynamics), and the heuristics.
//!
//! The per-operator per-tuple costs are calibrated against the real
//! threaded executor in this repository (see `tests/engine_sim_agreement`
//! and the `operators` Criterion bench); the *dynamics* — pipelined
//! work orders run faster thanks to cache locality, but deep pipelines
//! hold more buffer memory and overshooting the memory budget causes a
//! thrashing slowdown — reproduce the trade-off the paper's pipeline
//! degree predictor learns to balance (Section 5.3.2).

use rand::rngs::StdRng;
use rand::Rng;

use crate::plan::OpKind;

/// Cost/dynamics parameters of the execution environment.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Seconds of CPU work per input tuple, per operator kind.
    pub per_tuple_cost: [f64; OpKind::COUNT],
    /// Fixed per-work-order dispatch overhead (seconds).
    pub base_wo_overhead: f64,
    /// Bytes of working memory per input tuple, per operator kind.
    pub mem_per_tuple: [f64; OpKind::COUNT],
    /// Duration multiplier (< 1) applied to the work orders of non-root
    /// pipeline operators: their input is still cache-hot.
    pub pipeline_speedup: f64,
    /// Bytes of pipeline buffer held per pipeline stage per thread while
    /// the pipeline runs. Deeper pipelines and wider thread grants hold
    /// more memory — the paper's "consumes memory buffers at a high
    /// rate" effect.
    pub pipeline_buffer_bytes: f64,
    /// Duration multiplier (< 1) when the executing thread has run work
    /// of the same query before (warm caches; the Q-LOC effect).
    pub thread_locality_speedup: f64,
    /// Total memory budget (bytes) before thrashing sets in.
    pub memory_budget: f64,
    /// Thrashing slowdown slope: duration multiplier is
    /// `1 + thrash_slope * max(0, in_flight/budget - 1)`.
    pub thrash_slope: f64,
    /// Log-normal noise sigma on sampled work-order durations.
    pub noise_sigma: f64,
}

impl CostModel {
    /// The default calibrated model.
    pub fn default_model() -> Self {
        let mut per_tuple = [60e-9f64; OpKind::COUNT]; // generic 60ns/tuple
        let mut mem = [16.0f64; OpKind::COUNT];
        let set = |arr: &mut [f64; OpKind::COUNT], k: OpKind, v: f64| arr[k.index()] = v;
        // Scans and selects stream cheaply; joins, sorts and aggregates
        // are heavier (ratios follow measurements of the real engine's
        // operators on TPC-H-shaped data).
        set(&mut per_tuple, OpKind::TableScan, 25e-9);
        set(&mut per_tuple, OpKind::IndexScan, 15e-9);
        set(&mut per_tuple, OpKind::Select, 35e-9);
        set(&mut per_tuple, OpKind::Project, 30e-9);
        set(&mut per_tuple, OpKind::BuildHash, 120e-9);
        set(&mut per_tuple, OpKind::ProbeHash, 90e-9);
        set(&mut per_tuple, OpKind::DestroyHash, 5e-9);
        set(&mut per_tuple, OpKind::NestedLoopsJoin, 400e-9);
        set(&mut per_tuple, OpKind::IndexNestedLoopsJoin, 140e-9);
        set(&mut per_tuple, OpKind::MergeJoin, 110e-9);
        set(&mut per_tuple, OpKind::Aggregate, 100e-9);
        set(&mut per_tuple, OpKind::FinalizeAggregate, 80e-9);
        set(&mut per_tuple, OpKind::SortRunGeneration, 180e-9);
        set(&mut per_tuple, OpKind::SortMergeRun, 120e-9);
        set(&mut per_tuple, OpKind::TopK, 60e-9);
        set(&mut per_tuple, OpKind::HashDistinct, 110e-9);
        set(&mut per_tuple, OpKind::WindowAggregate, 150e-9);

        set(&mut mem, OpKind::BuildHash, 64.0);
        set(&mut mem, OpKind::ProbeHash, 32.0);
        set(&mut mem, OpKind::Aggregate, 48.0);
        set(&mut mem, OpKind::FinalizeAggregate, 48.0);
        set(&mut mem, OpKind::SortRunGeneration, 40.0);
        set(&mut mem, OpKind::SortMergeRun, 40.0);
        set(&mut mem, OpKind::HashDistinct, 48.0);

        Self {
            per_tuple_cost: per_tuple,
            base_wo_overhead: 40e-6,
            mem_per_tuple: mem,
            pipeline_speedup: 0.72,
            pipeline_buffer_bytes: 8.0 * 1024.0 * 1024.0,
            thread_locality_speedup: 0.92,
            memory_budget: 1.25 * 1024.0 * 1024.0 * 1024.0,
            thrash_slope: 3.0,
            noise_sigma: 0.08,
        }
    }

    /// Optimizer-time estimate of one work order's duration for an
    /// operator processing `rows_per_wo` tuples per work order.
    pub fn wo_duration_estimate(&self, kind: OpKind, rows_per_wo: f64) -> f64 {
        self.base_wo_overhead + self.per_tuple_cost[kind.index()] * rows_per_wo.max(0.0)
    }

    /// Optimizer-time estimate of one work order's memory footprint.
    pub fn wo_memory_estimate(&self, kind: OpKind, rows_per_wo: f64) -> f64 {
        1024.0 + self.mem_per_tuple[kind.index()] * rows_per_wo.max(0.0)
    }

    /// Samples an actual duration around `base` with log-normal noise.
    pub fn sample_duration(&self, rng: &mut StdRng, base: f64) -> f64 {
        if self.noise_sigma <= 0.0 {
            return base;
        }
        // Box–Muller standard normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        base * (self.noise_sigma * z).exp()
    }

    /// The thrashing duration multiplier for a given in-flight memory.
    pub fn thrash_multiplier(&self, in_flight_bytes: f64) -> f64 {
        let excess = (in_flight_bytes / self.memory_budget - 1.0).max(0.0);
        1.0 + self.thrash_slope * excess
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn estimates_scale_with_rows() {
        let m = CostModel::default_model();
        let d1 = m.wo_duration_estimate(OpKind::Select, 1_000.0);
        let d2 = m.wo_duration_estimate(OpKind::Select, 100_000.0);
        assert!(d2 > d1 * 10.0);
        assert!(m.wo_memory_estimate(OpKind::BuildHash, 1000.0) > 1024.0);
    }

    #[test]
    fn joins_cost_more_than_scans() {
        let m = CostModel::default_model();
        assert!(
            m.per_tuple_cost[OpKind::ProbeHash.index()]
                > m.per_tuple_cost[OpKind::TableScan.index()]
        );
        assert!(
            m.per_tuple_cost[OpKind::NestedLoopsJoin.index()]
                > m.per_tuple_cost[OpKind::ProbeHash.index()]
        );
    }

    #[test]
    fn thrash_multiplier_kicks_in_past_budget() {
        let m = CostModel::default_model();
        assert_eq!(m.thrash_multiplier(0.0), 1.0);
        assert_eq!(m.thrash_multiplier(m.memory_budget), 1.0);
        let over = m.thrash_multiplier(m.memory_budget * 2.0);
        assert!((over - (1.0 + m.thrash_slope)).abs() < 1e-9);
    }

    #[test]
    fn noise_is_multiplicative_and_centered() {
        let m = CostModel::default_model();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 4000;
        let mean: f64 =
            (0..n).map(|_| m.sample_duration(&mut rng, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut m = CostModel::default_model();
        m.noise_sigma = 0.0;
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample_duration(&mut rng, 2.0), 2.0);
    }
}
