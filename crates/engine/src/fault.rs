//! Deterministic fault injection for the simulated execution engine.
//!
//! Production schedulers must survive conditions the happy path never
//! exercises: worker threads crash and rejoin, work orders fail
//! transiently and need retrying, stragglers inflate tail latency, and
//! users cancel queries mid-flight. A [`FaultPlan`] declares those
//! conditions; the simulator materializes them as events and consults a
//! [`FaultInjector`] — driven by its own seeded RNG stream, independent
//! of the duration-noise stream — at each work-order dispatch.
//!
//! Determinism is preserved by construction: the injector's RNG is
//! consumed only at deterministic points of the event order, so the same
//! seed and the same plan produce bit-identical runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Declarative fault schedule for one simulation run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG stream.
    pub seed: u64,
    /// Worker losses as `(time, count)` — at `time`, `count` workers
    /// leave the pool (idle workers retire immediately, busy workers
    /// lose their in-flight work order, which is re-exposed for
    /// dispatch). The pool never shrinks below one worker.
    pub worker_loss: Vec<(f64, usize)>,
    /// Worker rejoins as `(time, count)` — fresh workers join the pool.
    pub worker_rejoin: Vec<(f64, usize)>,
    /// Per-attempt probability that a work order fails transiently and
    /// is retried after exponential backoff.
    pub wo_failure_prob: f64,
    /// Maximum retries before a work order fails permanently (which
    /// aborts its query).
    pub max_retries: u32,
    /// First backoff delay (seconds); doubles per retry.
    pub backoff_base: f64,
    /// Cap on a single backoff delay (seconds).
    pub backoff_cap: f64,
    /// Fraction of the sampled duration spent before a transient
    /// failure is detected (work lost to the failed attempt).
    pub failure_work_fraction: f64,
    /// Probability that a work order is a straggler.
    pub straggler_prob: f64,
    /// Duration multiplier applied to stragglers.
    pub straggler_factor: f64,
    /// Mid-flight cancellations as `(time, query arrival index)`; a
    /// cancellation targeting an already finished (or never arrived)
    /// query is a no-op.
    pub cancellations: Vec<(f64, u64)>,
    /// Whole-process crash at a virtual time: the run finalizes the
    /// instant the event loop would process anything at or after this
    /// time. Completed queries up to that point form the durable log
    /// ([`crate::sim::SimResult::outcomes`] / `aborted`); everything
    /// else is reported in [`crate::sim::SimResult::unfinished`]. The
    /// crash consumes no RNG, so the pre-crash prefix is bit-identical
    /// to the same plan without `crash_at`.
    pub crash_at: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            worker_loss: Vec::new(),
            worker_rejoin: Vec::new(),
            wo_failure_prob: 0.0,
            max_retries: 4,
            backoff_base: 0.002,
            backoff_cap: 0.05,
            failure_work_fraction: 0.5,
            straggler_prob: 0.0,
            straggler_factor: 4.0,
            cancellations: Vec::new(),
            crash_at: None,
        }
    }
}

impl FaultPlan {
    /// The standard fault matrix of the robustness acceptance criteria:
    /// staggered loss of up to 50% of the pool (rejoining later), 5%
    /// transient work-order failure, mild stragglers, and one
    /// cancellation per 10 queries. Times are expressed as fractions of
    /// `horizon`, an estimate of the fault-free makespan.
    pub fn standard_matrix(seed: u64, pool: usize, num_queries: usize, horizon: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA57_F00D);
        let losses = pool / 2;
        let mut worker_loss = Vec::new();
        let mut worker_rejoin = Vec::new();
        for _ in 0..losses {
            let t_loss = rng.gen_range(0.05..0.5) * horizon;
            worker_loss.push((t_loss, 1));
            // Most lost workers rejoin later in the run.
            if rng.gen_range(0.0..1.0) < 0.75 {
                worker_rejoin.push((t_loss + rng.gen_range(0.1..0.4) * horizon, 1));
            }
        }
        let mut cancellations = Vec::new();
        for i in 0..num_queries / 10 {
            // Spread targets across the arrival order; cancel times fall
            // inside the active window so the query is likely mid-flight.
            let target = rng.gen_range(0..num_queries.max(1)) as u64;
            let t = rng.gen_range(0.1..0.8) * horizon;
            let _ = i;
            cancellations.push((t, target));
        }
        Self {
            seed,
            worker_loss,
            worker_rejoin,
            wo_failure_prob: 0.05,
            straggler_prob: 0.02,
            cancellations,
            ..Self::default()
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.worker_loss.is_empty()
            && self.worker_rejoin.is_empty()
            && self.cancellations.is_empty()
            && self.wo_failure_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.crash_at.is_none()
    }
}

/// Outcome of perturbing one dispatched work order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WoPerturbation {
    /// Total wall time the work order occupies its thread, including
    /// straggler inflation, failed partial attempts and backoff waits.
    pub elapsed: f64,
    /// Transient failures absorbed by retries.
    pub retries: u32,
    /// True when retries were exhausted: the work order fails
    /// permanently at `elapsed` instead of completing.
    pub permanent_failure: bool,
}

/// Counters the simulator reports about an injected run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Workers removed from the pool.
    pub workers_lost: u64,
    /// Workers that (re)joined the pool.
    pub workers_joined: u64,
    /// Work orders lost with their worker (re-exposed for dispatch).
    pub wo_lost_with_worker: u64,
    /// Transient work-order failures absorbed by retries.
    pub wo_retries: u64,
    /// Work orders that exhausted their retries (each aborts a query).
    pub wo_permanent_failures: u64,
    /// Straggler work orders.
    pub stragglers: u64,
    /// Queries cancelled mid-flight.
    pub queries_cancelled: u64,
    /// Queries aborted by a permanently failed work order.
    pub queries_failed: u64,
}

impl FaultSummary {
    /// Folds another summary into this one. Every field is an event
    /// count, so a multi-shard aggregate is the plain sum; commutative
    /// and associative, independent of shard visit order.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.workers_lost += other.workers_lost;
        self.workers_joined += other.workers_joined;
        self.wo_lost_with_worker += other.wo_lost_with_worker;
        self.wo_retries += other.wo_retries;
        self.wo_permanent_failures += other.wo_permanent_failures;
        self.stragglers += other.stragglers;
        self.queries_cancelled += other.queries_cancelled;
        self.queries_failed += other.queries_failed;
    }
}

/// The runtime half of the fault subsystem: owns the fault RNG stream
/// and rolls per-work-order perturbations.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0x1A7E_C7ED);
        Self { plan, rng }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rolls straggler inflation and the transient-failure/retry
    /// sequence for one work order whose clean duration is `base`.
    /// Consumes RNG values in a fixed order so runs stay deterministic.
    pub fn perturb(&mut self, base: f64, summary: &mut FaultSummary) -> WoPerturbation {
        let mut duration = base;
        if self.plan.straggler_prob > 0.0
            && self.rng.gen_range(0.0..1.0) < self.plan.straggler_prob
        {
            duration *= self.plan.straggler_factor.max(1.0);
            summary.stragglers += 1;
        }
        if self.plan.wo_failure_prob <= 0.0 {
            return WoPerturbation { elapsed: duration, retries: 0, permanent_failure: false };
        }
        let mut elapsed = 0.0;
        let mut attempt: u32 = 0;
        loop {
            let failed = self.rng.gen_range(0.0..1.0) < self.plan.wo_failure_prob;
            if !failed {
                return WoPerturbation {
                    elapsed: elapsed + duration,
                    retries: attempt,
                    permanent_failure: false,
                };
            }
            // The failed attempt burns part of the duration, then the
            // retry waits out a capped exponential backoff.
            elapsed += duration * self.plan.failure_work_fraction.clamp(0.0, 1.0);
            if attempt >= self.plan.max_retries {
                summary.wo_permanent_failures += 1;
                return WoPerturbation { elapsed, retries: attempt, permanent_failure: true };
            }
            let backoff = (self.plan.backoff_base * f64::powi(2.0, attempt as i32))
                .min(self.plan.backoff_cap);
            elapsed += backoff;
            attempt += 1;
            summary.wo_retries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturb_is_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            wo_failure_prob: 0.3,
            straggler_prob: 0.2,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let (mut sa, mut sb) = (FaultSummary::default(), FaultSummary::default());
        for i in 0..500 {
            let base = 0.01 + (i as f64) * 1e-4;
            assert_eq!(a.perturb(base, &mut sa), b.perturb(base, &mut sb));
        }
        assert_eq!(sa, sb);
        assert!(sa.wo_retries > 0, "30% failure rate must produce retries");
        assert!(sa.stragglers > 0);
    }

    #[test]
    fn clean_plan_never_perturbs() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        let mut s = FaultSummary::default();
        for _ in 0..100 {
            let p = inj.perturb(0.02, &mut s);
            assert_eq!(p, WoPerturbation { elapsed: 0.02, retries: 0, permanent_failure: false });
        }
        assert_eq!(s, FaultSummary::default());
        assert!(FaultPlan::default().is_noop());
    }

    #[test]
    fn backoff_is_capped() {
        let plan = FaultPlan {
            seed: 1,
            wo_failure_prob: 1.0, // every attempt fails -> permanent
            max_retries: 10,
            backoff_base: 0.01,
            backoff_cap: 0.02,
            failure_work_fraction: 0.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let mut s = FaultSummary::default();
        let p = inj.perturb(1.0, &mut s);
        assert!(p.permanent_failure);
        assert_eq!(p.retries, 10);
        // 10 backoffs, each capped at 0.02: first is 0.01, rest 0.02.
        assert!((p.elapsed - (0.01 + 9.0 * 0.02)).abs() < 1e-12, "elapsed {}", p.elapsed);
        assert_eq!(s.wo_permanent_failures, 1);
    }

    #[test]
    fn standard_matrix_matches_spec() {
        let m = FaultPlan::standard_matrix(3, 16, 40, 10.0);
        assert_eq!(m.worker_loss.iter().map(|&(_, n)| n).sum::<usize>(), 8, "50% of pool");
        assert_eq!(m.cancellations.len(), 4, "1 per 10 queries");
        assert!((m.wo_failure_prob - 0.05).abs() < 1e-12);
        let same = FaultPlan::standard_matrix(3, 16, 40, 10.0);
        assert_eq!(format!("{m:?}"), format!("{same:?}"), "matrix generation is deterministic");
    }
}
