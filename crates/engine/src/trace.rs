//! Execution tracing: per-thread timelines of work-order executions (the
//! Gantt view of Figure 1's schedule rectangles).
//!
//! The simulator records one [`TraceEntry`] per executed work order when
//! given a [`TraceSink`]; [`ExecutionTrace`] then answers utilization and
//! schedule-shape questions and renders a textual Gantt chart.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::plan::OpId;
use crate::scheduler::QueryId;

/// One executed work order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Executing thread.
    pub thread: usize,
    /// Query the work order belongs to.
    pub query: QueryId,
    /// Operator the work order belongs to.
    pub op: OpId,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Whether the work order ran as a pipelined consumer (cache-hot
    /// input).
    pub pipelined: bool,
}

/// Shared sink the simulator writes entries into.
pub type TraceSink = Arc<Mutex<Vec<TraceEntry>>>;

/// Creates an empty sink.
pub fn trace_sink() -> TraceSink {
    Arc::new(Mutex::new(Vec::new()))
}

/// A completed execution trace.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
    num_threads: usize,
}

impl ExecutionTrace {
    /// Builds a trace from a sink's contents.
    pub fn from_sink(sink: &TraceSink, num_threads: usize) -> Self {
        let mut entries = sink.lock().clone();
        entries.sort_by(|a, b| a.start.total_cmp(&b.start));
        Self { entries, num_threads }
    }

    /// All entries, start-ordered.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of executed work orders.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The makespan covered by the trace.
    pub fn makespan(&self) -> f64 {
        self.entries.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Busy time of one thread.
    pub fn thread_busy(&self, thread: usize) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.thread == thread)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Mean utilization across threads over the makespan.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 || self.num_threads == 0 {
            return 0.0;
        }
        let busy: f64 = (0..self.num_threads).map(|t| self.thread_busy(t)).sum();
        busy / (span * self.num_threads as f64)
    }

    /// Fraction of work orders that ran pipelined.
    pub fn pipelined_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().filter(|e| e.pipelined).count() as f64 / self.entries.len() as f64
    }

    /// Verifies no thread ever runs two work orders at once.
    pub fn validate_no_overlap(&self) -> Result<(), String> {
        for t in 0..self.num_threads {
            let mut spans: Vec<(f64, f64)> = self
                .entries
                .iter()
                .filter(|e| e.thread == t)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 - 1e-9 {
                    return Err(format!(
                        "thread {t}: overlap between [{:.6},{:.6}] and [{:.6},{:.6}]",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Renders a textual Gantt chart with `width` columns, one row per
    /// thread; each cell shows the query id (mod 10) occupying it, `.`
    /// for idle.
    pub fn gantt(&self, width: usize) -> String {
        let span = self.makespan();
        if span <= 0.0 {
            return String::new();
        }
        let mut out = String::new();
        for t in 0..self.num_threads {
            let mut row = vec!['.'; width];
            for e in self.entries.iter().filter(|e| e.thread == t) {
                let a = ((e.start / span) * width as f64).floor() as usize;
                let b = (((e.end / span) * width as f64).ceil() as usize).min(width);
                let c = char::from_digit((e.query.0 % 10) as u32, 10).unwrap_or('?');
                for cell in row.iter_mut().take(b).skip(a.min(width.saturating_sub(1))) {
                    *cell = c;
                }
            }
            out.push_str(&format!("T{t:02} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(thread: usize, q: u64, start: f64, end: f64) -> TraceEntry {
        TraceEntry {
            thread,
            query: QueryId(q),
            op: OpId(0),
            start,
            end,
            pipelined: false,
        }
    }

    #[test]
    fn utilization_and_busy_time() {
        let sink = trace_sink();
        sink.lock().push(entry(0, 1, 0.0, 1.0));
        sink.lock().push(entry(1, 1, 0.0, 0.5));
        let t = ExecutionTrace::from_sink(&sink, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.makespan(), 1.0);
        assert_eq!(t.thread_busy(0), 1.0);
        assert_eq!(t.thread_busy(1), 0.5);
        assert!((t.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn overlap_detection() {
        let sink = trace_sink();
        sink.lock().push(entry(0, 1, 0.0, 1.0));
        sink.lock().push(entry(0, 2, 0.5, 1.5));
        let t = ExecutionTrace::from_sink(&sink, 1);
        assert!(t.validate_no_overlap().is_err());

        let sink2 = trace_sink();
        sink2.lock().push(entry(0, 1, 0.0, 1.0));
        sink2.lock().push(entry(0, 2, 1.0, 1.5));
        let t2 = ExecutionTrace::from_sink(&sink2, 1);
        assert!(t2.validate_no_overlap().is_ok());
    }

    #[test]
    fn gantt_renders_rows() {
        let sink = trace_sink();
        sink.lock().push(entry(0, 1, 0.0, 0.5));
        sink.lock().push(entry(1, 2, 0.5, 1.0));
        let t = ExecutionTrace::from_sink(&sink, 2);
        let g = t.gantt(10);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains('1'));
        assert!(rows[1].contains('2'));
        assert!(rows[0].starts_with("T00 |"));
    }

    #[test]
    fn pipelined_fraction_counts() {
        let sink = trace_sink();
        sink.lock().push(entry(0, 1, 0.0, 0.5));
        sink.lock().push(TraceEntry { pipelined: true, ..entry(0, 1, 0.5, 1.0) });
        let t = ExecutionTrace::from_sink(&sink, 1);
        assert!((t.pipelined_fraction() - 0.5).abs() < 1e-9);
    }
}
