//! Scalar expressions and predicates evaluated over storage blocks.

use crate::block::{Block, Column};
use crate::value::Value;

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Arithmetic operators for scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (floats; integer division for two ints).
    Div,
}

/// A scalar expression evaluated row-wise over a block.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to an input column by position.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Binary arithmetic on two sub-expressions.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Convenience constructor for column references.
    pub fn col(i: usize) -> Self {
        ScalarExpr::Col(i)
    }

    /// Convenience constructor for literals.
    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Lit(v.into())
    }

    /// Builds an arithmetic node.
    pub fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> Self {
        ScalarExpr::Arith(op, Box::new(l), Box::new(r))
    }

    /// Evaluates the expression for row `row` of `block`.
    pub fn eval_row(&self, block: &Block, row: usize) -> Value {
        match self {
            ScalarExpr::Col(i) => block.columns[*i].get(row),
            ScalarExpr::Lit(v) => v.clone(),
            ScalarExpr::Arith(op, l, r) => {
                let lv = l.eval_row(block, row);
                let rv = r.eval_row(block, row);
                eval_arith(*op, &lv, &rv)
            }
        }
    }

    /// Evaluates the expression for every row, producing a column.
    pub fn eval_block(&self, block: &Block) -> Column {
        // Fast path: bare column reference clones the column.
        if let ScalarExpr::Col(i) = self {
            return block.columns[*i].clone();
        }
        let n = block.num_rows();
        if n == 0 {
            // Derive the output type from a probe over an empty block:
            // default to Float64 for arithmetic, the literal's type
            // otherwise.
            return match self {
                ScalarExpr::Lit(v) => Column::empty(v.column_type()),
                _ => Column::F64(Vec::new()),
            };
        }
        let first = self.eval_row(block, 0);
        let mut col = Column::empty(first.column_type());
        col.push(first);
        for row in 1..n {
            col.push(self.eval_row(block, row));
        }
        col
    }

    /// All column positions referenced by the expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Arith(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
        }
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    if let (Value::Int64(a), Value::Int64(b)) = (l, r) {
        return Value::Int64(match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if *b == 0 {
                    0
                } else {
                    a / b
                }
            }
        });
    }
    let a = l.as_f64().unwrap_or(0.0);
    let b = r.as_f64().unwrap_or(0.0);
    Value::Float64(match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => {
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
    })
}

/// A boolean predicate over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Comparison between two scalar expressions.
    Cmp(CmpOp, ScalarExpr, ScalarExpr),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds a comparison between a column and a literal — the most
    /// common filter shape in the benchmarks.
    pub fn col_cmp(col: usize, op: CmpOp, v: impl Into<Value>) -> Self {
        Predicate::Cmp(op, ScalarExpr::Col(col), ScalarExpr::Lit(v.into()))
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates for a single row of a block.
    pub fn eval_row(&self, block: &Block, row: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(op, l, r) => {
                let lv = l.eval_row(block, row);
                let rv = r.eval_row(block, row);
                op.eval(lv.total_cmp(&rv))
            }
            Predicate::And(a, b) => a.eval_row(block, row) && b.eval_row(block, row),
            Predicate::Or(a, b) => a.eval_row(block, row) || b.eval_row(block, row),
            Predicate::Not(p) => !p.eval_row(block, row),
        }
    }

    /// Returns the indices of rows satisfying the predicate.
    pub fn selected_rows(&self, block: &Block) -> Vec<usize> {
        (0..block.num_rows()).filter(|&r| self.eval_row(block, r)).collect()
    }

    /// All column positions referenced by the predicate (for the O-COLS
    /// feature, Section 4.1).
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Predicate::Not(p) => p.referenced_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Column;

    fn block() -> Block {
        Block::new(
            0,
            vec![
                Column::I64(vec![1, 2, 3, 4, 5]),
                Column::F64(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
                Column::Str(vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()]),
            ],
        )
    }

    #[test]
    fn cmp_filters_rows() {
        let b = block();
        let p = Predicate::col_cmp(0, CmpOp::Gt, 3i64);
        assert_eq!(p.selected_rows(&b), vec![3, 4]);
    }

    #[test]
    fn and_or_not() {
        let b = block();
        let p = Predicate::col_cmp(0, CmpOp::Ge, 2i64)
            .and(Predicate::col_cmp(0, CmpOp::Le, 4i64));
        assert_eq!(p.selected_rows(&b), vec![1, 2, 3]);
        let q = Predicate::Not(Box::new(p.clone()));
        assert_eq!(q.selected_rows(&b), vec![0, 4]);
        let r = p.or(Predicate::col_cmp(0, CmpOp::Eq, 1i64));
        assert_eq!(r.selected_rows(&b), vec![0, 1, 2, 3]);
    }

    #[test]
    fn string_predicate() {
        let b = block();
        let p = Predicate::col_cmp(2, CmpOp::Lt, "c");
        assert_eq!(p.selected_rows(&b), vec![0, 1]);
    }

    #[test]
    fn arithmetic_expression() {
        let b = block();
        // col0 * 10 + col1
        let e = ScalarExpr::arith(
            ArithOp::Add,
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(10i64)),
            ScalarExpr::col(1),
        );
        assert_eq!(e.eval_row(&b, 2), Value::Float64(60.0));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let b = block();
        let e = ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(3i64));
        assert_eq!(e.eval_row(&b, 1), Value::Int64(6));
    }

    #[test]
    fn div_by_zero_is_zero() {
        let b = block();
        let e = ScalarExpr::arith(ArithOp::Div, ScalarExpr::col(0), ScalarExpr::lit(0i64));
        assert_eq!(e.eval_row(&b, 0), Value::Int64(0));
    }

    #[test]
    fn eval_block_matches_rowwise() {
        let b = block();
        let e = ScalarExpr::arith(ArithOp::Sub, ScalarExpr::col(1), ScalarExpr::lit(5.0));
        let col = e.eval_block(&b);
        assert_eq!(col.len(), 5);
        assert_eq!(col.get(0), Value::Float64(5.0));
        assert_eq!(col.get(4), Value::Float64(45.0));
    }

    #[test]
    fn referenced_columns_collects() {
        let p = Predicate::col_cmp(3, CmpOp::Eq, 1i64)
            .and(Predicate::col_cmp(1, CmpOp::Lt, 2i64));
        let mut cols = Vec::new();
        p.referenced_columns(&mut cols);
        assert_eq!(cols, vec![3, 1]);
    }
}
