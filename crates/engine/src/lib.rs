//! # lsched-engine
//!
//! A Quickstep-style block-based in-memory analytical query engine — the
//! substrate LSched schedules (Section 2 of the paper). It provides:
//!
//! * columnar storage [`block`]s grouped into catalog [`catalog`] tables;
//! * [`expr`] predicates/projections evaluated per block;
//! * [`plan`] physical DAGs of 29 work-order-based operator kinds with
//!   pipeline-breaking edge metadata;
//! * the [`scheduler`] interface every policy implements, including the
//!   per-operator trailing regressors behind the O-DUR/O-MEM features;
//! * a deterministic discrete-event [`sim`]ulator of work-order execution
//!   with pipelining, memory-pressure and locality dynamics;
//! * a real multi-threaded [`executor`] that runs plans on actual blocks
//!   through the [`ops`] operator implementations;
//! * the calibrated [`cost`] model connecting the two.

#![warn(missing_docs)]

pub mod block;
pub mod catalog;
pub mod cost;
pub mod executor;
pub mod expr;
pub mod fault;
pub mod ops;
pub mod plan;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod trace;
pub mod value;

pub use block::{Block, Column};
pub use catalog::{Catalog, Schema, Table, TableId};
pub use cost::CostModel;
pub use executor::Executor;
pub use expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
pub use fault::{FaultInjector, FaultPlan, FaultSummary, WoPerturbation};
pub use plan::{AggFunc, OpId, OpKind, OpSpec, PhysicalPlan, PlanBuilder, PlanEdge, PlanOp};
pub use scheduler::{
    clamp_decision, validate_decision, AdmissionResponse, AdmitAction, DecisionError, OpRuntime,
    OpStatus, PolicyHealth, QueryId, QueryRuntime, SchedContext, SchedDecision, SchedEvent,
    Scheduler,
};
pub use sim::{
    simulate, try_simulate, QueryOutcome, ResilienceSummary, RetryPolicy, SimConfig, SimError,
    SimResult, Simulator, WorkloadItem,
};
pub use trace::{trace_sink, ExecutionTrace, TraceEntry, TraceSink};
pub use stats::{TrailingRegressor, WorkOrderStats};
pub use value::{ColumnType, Value};
